"""E18 — Section 5's 'strength of the adversary', measured.

A content-aware scheduler (sees pending read/write intents — power the
oblivious model forbids) pushes Algorithm 2 below its 1-eps floor, while
Algorithm 1's uniform update/scan pattern gives it nothing to exploit.
This is the experimental form of the paper's remark that the sifting
protocol needs at least a content-oblivious adversary.
"""

from repro.analysis.paper import e18_adversary_strength


def test_e18_adversary_strength(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e18_adversary_strength(scale=bench_scale), rounds=1,
        iterations=1,
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    rates = {(row[0], row[1]): row[2] for row in table.rows}
    sifting_attacked = rates[("Alg 2 (sifting)",
                              "readers-first (content-aware)")]
    sifting_oblivious = rates[("Alg 2 (sifting)",
                               "random (oblivious-equivalent)")]
    assert sifting_attacked < sifting_oblivious
