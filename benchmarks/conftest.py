"""Benchmark harness configuration.

Each ``bench_*.py`` module reproduces one experiment from DESIGN.md's index
(E1-E12).  The pattern is:

- the experiment table (measured vs paper columns) is built inside
  ``benchmark.pedantic(..., rounds=1)`` so it runs under ``--benchmark-only``;
- the rendered table is written to ``benchmarks/results/<ID>.txt`` and key
  figures are attached to ``benchmark.extra_info``;
- the test asserts the experiment's *shape* verdict (who wins / decay rate /
  probability floor), never absolute timings.

Set ``REPRO_BENCH_SCALE`` (default 0.25) to trade trial counts for runtime;
EXPERIMENTS.md was generated at scale 1.0 via ``examples/reproduce_paper.py``.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture
def record_experiment():
    """Persist a rendered experiment table under benchmarks/results/."""

    def _record(table):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{table.experiment_id}.txt"
        path.write_text(table.render() + "\n")
        return path

    return _record


@pytest.fixture
def bench_scale():
    return SCALE
