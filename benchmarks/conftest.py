"""Benchmark harness configuration.

Each ``bench_*.py`` module reproduces one experiment from DESIGN.md's index
(E1-E12).  The pattern is:

- the experiment table (measured vs paper columns) is built inside
  ``benchmark.pedantic(..., rounds=1)`` so it runs under ``--benchmark-only``;
- the rendered table is written to ``benchmarks/results/<ID>.txt`` and key
  figures are attached to ``benchmark.extra_info``;
- the test asserts the experiment's *shape* verdict (who wins / decay rate /
  probability floor), never absolute timings.

Set ``REPRO_BENCH_SCALE`` (default 0.25) to trade trial counts for runtime;
EXPERIMENTS.md was generated at scale 1.0 via ``examples/reproduce_paper.py``.

Set ``REPRO_BENCH_WORKERS`` (default 1) to shard every trial sweep across
that many processes — e.g. ``REPRO_BENCH_WORKERS=0`` for all CPUs — and
optionally ``REPRO_BENCH_CHUNK_SIZE`` to pin the dispatch granularity.  The
sharded engine is bit-identical to the serial one (see
``tests/property/test_parallel_equivalence.py``), so parallel benchmark
tables match EXPERIMENTS.md exactly; only the wall clock changes.

Set ``REPRO_BENCH_METRICS=1`` to install a session metrics registry (see
``repro.obs.metrics.collecting``): every sweep the benchmarks run then
aggregates simulator counters/histograms into it, and the combined
snapshot is written to ``benchmarks/results/metrics.json`` at session end.
Metrics never touch the experiment tables — the registry records only
deterministic step/operation counts, so tables match with or without it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.obs.metrics import collecting
from repro.runtime.parallel import parallelism

RESULTS_DIR = Path(__file__).parent / "results"
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
_CHUNK = os.environ.get("REPRO_BENCH_CHUNK_SIZE", "")
CHUNK_SIZE = int(_CHUNK) if _CHUNK else None
METRICS = os.environ.get("REPRO_BENCH_METRICS", "") not in ("", "0")


@pytest.fixture(autouse=True)
def bench_parallelism():
    """Every benchmark inherits the sharding requested via the environment.

    The experiment builders call the trial runners without explicit
    ``workers``, so overriding the session default here parallelizes every
    ``bench_*.py`` entry point at once.
    """
    with parallelism(workers=WORKERS, chunk_size=CHUNK_SIZE) as config:
        yield config


@pytest.fixture(autouse=True, scope="session")
def bench_metrics():
    """Session metrics registry, enabled via ``REPRO_BENCH_METRICS=1``.

    The trial runners fall back to the session default registry, so simply
    installing one here makes every benchmark sweep feed it; the aggregate
    snapshot lands in ``benchmarks/results/metrics.json``.
    """
    if not METRICS:
        yield None
        return
    with collecting() as registry:
        yield registry
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "metrics.json"
    path.write_text(
        json.dumps(registry.to_json(), indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture
def record_experiment():
    """Persist a rendered experiment table under benchmarks/results/."""

    def _record(table):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{table.experiment_id}.txt"
        path.write_text(table.render() + "\n")
        return path

    return _record


@pytest.fixture
def bench_scale():
    return SCALE
