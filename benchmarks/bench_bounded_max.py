"""E16 — the [7] bounded max register behind footnote 1.

One switch bit per tree node: reads cost ceil(log2 k), writes at most
2 ceil(log2 k).  Live concurrent runs confirm semantics and bounds.
"""

from repro.analysis.paper import e16_bounded_max_register


def test_e16_bounded_max_register(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e16_bounded_max_register(scale=bench_scale), rounds=1,
        iterations=1,
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    assert all(row[5] for row in table.rows), "max-register semantics broken"


def test_e16_tree_op_wall_time(benchmark):
    """Micro-benchmark: a write+read pair on a 2^16-value tree."""
    from repro.memory.bounded_max_register import BoundedMaxRegister
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RoundRobinSchedule
    from repro.runtime.simulator import run_programs

    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        register = BoundedMaxRegister(2**16)

        def program(ctx):
            yield from register.write_program(ctx, 54_321)
            value = yield from register.read_program(ctx)
            return value

        return run_programs([program], RoundRobinSchedule(1), SeedTree(seed))

    result = benchmark(run_once)
    assert result.outputs[0] == 54_321
