"""E7 — Corollaries 2/3: register-model consensus cost in n and in m.

Three sweeps: steps vs n at fixed m (nearly flat — the log log n term),
steps vs m at fixed n (grows with the adopt-commit's log m term), and the
Corollary 3 linear-total-work variant (total/n flat).
"""

from repro.analysis.paper import e7_register_consensus


def test_e7_register_consensus_sweeps(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e7_register_consensus(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    # Shape detail: the m-sweep's mean steps must increase with m.
    m_rows = [row for row in table.rows if row[0] == "sweep-m"]
    means = [row[3] for row in m_rows]
    assert means == sorted(means)


def test_e7_consensus_run_wall_time(benchmark):
    """Micro-benchmark: one register-consensus execution at n=128, m=8."""
    from repro.core.consensus import register_consensus, run_consensus
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RandomSchedule

    n, m = 128, 8
    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        seeds = SeedTree(seed)
        protocol = register_consensus(n, value_domain=range(m))
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
        return run_consensus(
            protocol, [pid % m for pid in range(n)], schedule, seeds
        )

    result = benchmark(run_once)
    assert result.agreement
