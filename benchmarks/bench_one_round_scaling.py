"""E13 — survivors after one layer of computation (conclusions, §5).

The paper's open lower-bound question conjectures Omega(log n) survivors
after one snapshot layer and Omega(n^c) after one register layer.  From the
upper-bound side: one Algorithm 1 round leaves ~H_n survivors and one
Algorithm 2 round ~2 sqrt(n) — logarithmic vs power-law growth.
"""

from repro.analysis.paper import e13_one_round_scaling


def test_e13_one_round_survivor_scaling(benchmark, record_experiment,
                                        bench_scale):
    table = benchmark.pedantic(
        lambda: e13_one_round_scaling(scale=bench_scale), rounds=1,
        iterations=1,
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    # The qualitative gap: at n=1024 the register model retains far more
    # values after one layer than the snapshot model.
    last = table.rows[-1]
    assert last[3] > 4 * last[1]
