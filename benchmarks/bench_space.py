"""E17 — register-width accounting (footnote 2 and the Section 3 remark).

Exact widths in bits: footnote 2's indirection strips the value field from
Algorithm 1's snapshot components; omitting the analysis-only origin id
leaves Algorithm 2's round registers at O(log log n + log m) bits.
"""

from repro.analysis.paper import e17_register_width


def test_e17_register_widths(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e17_register_width(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    # The sifting register without ids barely grows over 2^8 -> 2^32.
    widths = [row[4] for row in table.rows]
    assert widths[-1] - widths[0] <= 4
