"""E11 — footnote 1: Algorithm 1 on max registers.

The paper observes that max registers suffice because only the maximum
priority in a view matters.  Both variants must show the same step count
and statistically indistinguishable agreement/decay behaviour.
"""

from repro.analysis.paper import e11_max_register_variant


def test_e11_max_register_parity(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e11_max_register_variant(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()


def test_e11_max_register_is_faster_wall_clock(benchmark):
    """Micro-benchmark: the max-register variant avoids O(n) scan copies, so
    its *wall-clock* cost per run is lower (charged steps are identical)."""
    from repro.core.conciliator import run_conciliator
    from repro.core.snapshot_conciliator import SnapshotConciliator
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RandomSchedule

    n = 512
    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        seeds = SeedTree(seed)
        conciliator = SnapshotConciliator(n, use_max_registers=True)
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
        return run_conciliator(conciliator, list(range(n)), schedule, seeds)

    result = benchmark(run_once)
    assert result.completed
