"""E3 — Lemmas 3/4 decay figure: sifting-conciliator survivor curve.

Regenerates the per-round mean excess-personae series for Algorithm 2 and
compares it against ``x_i = 2^(2-2^(1-i)) (n-1)^(2^-i)`` up to the switch
round and the geometric ``(3/4)^j`` tail afterwards.
"""

from repro.analysis.paper import e3_sifting_decay


def test_e3_sifting_decay_curve(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e3_sifting_decay(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    benchmark.extra_info["final_excess"] = table.rows[-1][1]
    assert table.shape_holds, table.render()


def test_e3_sifting_run_wall_time(benchmark):
    """Micro-benchmark: one full Algorithm 2 execution at n=1024."""
    from repro.core.conciliator import run_conciliator
    from repro.core.sifting_conciliator import SiftingConciliator
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RandomSchedule

    n = 1024
    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        seeds = SeedTree(seed)
        conciliator = SiftingConciliator(n)
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
        return run_conciliator(conciliator, list(range(n)), schedule, seeds)

    result = benchmark(run_once)
    assert result.completed
