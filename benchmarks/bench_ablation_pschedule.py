"""E10 — ablation: Algorithm 2's tuned write probabilities.

Compares four schedules: the self-consistent tuned ``p_i = 1/sqrt(x_{i-1})``
(what Lemma 3's proof uses), equation (3) exactly as printed in the paper
(off by a bounded factor — see repro.core.probabilities), fixed ``p = 1/2``
and fixed ``p = 1/sqrt(n)``.  The tuned schedules must crush the survivor
count within ``ceil(log log n)`` rounds; fixed ``1/2`` cannot.
"""

from repro.analysis.paper import e10_p_schedule_ablation


def test_e10_p_schedule_ablation(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e10_p_schedule_ablation(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    by_label = {row[0]: row for row in table.rows}
    # The tuned schedule's survivors at the switch sit far below fixed-1/2's.
    assert by_label["tuned (ours)"][1] < by_label["fixed 1/2"][1]
