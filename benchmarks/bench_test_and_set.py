"""E14 — sifting test-and-set (the conclusions' sibling problem).

Algorithm 2 shares its skeleton with the Alistarh-Aspnes test-and-set;
this bench runs that protocol: unique winner in every execution, an
O(log log n) filter, and O(1) expected survivors entering the backup.
"""

from repro.analysis.paper import e14_test_and_set


def test_e14_sifting_test_and_set(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e14_test_and_set(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    assert all(row[1] == 0 for row in table.rows), "unique winner violated"


def test_e14_tas_run_wall_time(benchmark):
    """Micro-benchmark: one full test-and-set execution at n=128."""
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RandomSchedule
    from repro.runtime.simulator import run_programs
    from repro.tas.sifting_tas import SiftingTestAndSet

    n = 128
    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        seeds = SeedTree(seed)
        tas = SiftingTestAndSet(n)
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
        return run_programs([tas.program] * n, schedule, seeds)

    result = benchmark(run_once)
    assert result.completed
