"""E15 — the price of the unit-cost snapshot assumption.

Algorithm 1 rerun on wait-free register-emulated snapshots (Afek et al.
construction): same agreement behaviour, Theta(n)-factor more steps,
growing with n — the gap the paper's "practically irrelevant but
theoretically significant" remark refers to.
"""

from repro.analysis.paper import e15_emulated_snapshot_cost


def test_e15_emulated_snapshot_cost(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e15_emulated_snapshot_cost(scale=bench_scale), rounds=1,
        iterations=1,
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    ratios = [row[3] for row in table.rows]
    assert ratios[-1] > 10 * 1  # at n=32 the emulation is >10x unit cost


def test_e15_emulated_scan_wall_time(benchmark):
    """Micro-benchmark: one emulated update+scan pair at n=16."""
    from repro.memory.emulated_snapshot import EmulatedSnapshot
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RoundRobinSchedule
    from repro.runtime.simulator import run_programs

    n = 16
    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        snapshot = EmulatedSnapshot(n)

        def program(ctx):
            yield from snapshot.update_program(ctx, ctx.pid)
            view = yield from snapshot.scan_program(ctx)
            return view

        return run_programs(
            [program] * n, RoundRobinSchedule(n), SeedTree(seed)
        )

    result = benchmark(run_once)
    assert result.completed
