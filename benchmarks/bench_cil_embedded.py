"""E5 — Theorem 3: the CIL-embedded conciliator's three guarantees.

Agreement probability >= 1/8, worst-case individual steps bounded by the
inner conciliator's O(log log n), and expected *total* steps O(n) — the
total/n column staying flat as n grows is the linear-total-work claim.
"""

from repro.analysis.paper import e5_cil_embedded


def test_e5_cil_embedded_guarantees(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e5_cil_embedded(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    benchmark.extra_info["total_per_n_at_max"] = table.rows[-1][6]
    assert table.shape_holds, table.render()


def test_e5_embedded_run_wall_time(benchmark):
    """Micro-benchmark: one Algorithm 3 execution at n=256."""
    from repro.core.cil_embedded import CILEmbeddedConciliator
    from repro.core.conciliator import run_conciliator
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RandomSchedule

    n = 256
    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        seeds = SeedTree(seed)
        conciliator = CILEmbeddedConciliator(n)
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
        return run_conciliator(conciliator, list(range(n)), schedule, seeds)

    result = benchmark(run_once)
    assert result.completed
