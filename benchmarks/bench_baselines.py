"""E8 — the introduction's comparison: log log n sifting vs log n baseline.

The DoublingCILConciliator reproduces the prior state of the art's O(log n)
individual step complexity; the sifting conciliator must win from the
crossover (~n=64, once its eps-tail constant is amortized) with a gap that
widens as n grows.
"""

from repro.analysis.paper import e8_baseline_comparison


def test_e8_sifting_vs_doubling_cil(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e8_baseline_comparison(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()


def test_e8_baseline_run_wall_time(benchmark):
    """Micro-benchmark: one doubling-CIL execution at n=512."""
    from repro.baselines.doubling_cil import DoublingCILConciliator
    from repro.core.conciliator import run_conciliator
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RandomSchedule

    n = 512
    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        seeds = SeedTree(seed)
        conciliator = DoublingCILConciliator(n)
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
        return run_conciliator(conciliator, list(range(n)), schedule, seeds)

    result = benchmark(run_once)
    assert result.completed
