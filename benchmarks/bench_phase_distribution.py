"""E20 — the consensus framework's geometric phase-count engine.

Section 1.2's cost argument: each (conciliator, adopt-commit) phase
succeeds with probability >= 1 - eps independently of the past, so phase
counts are dominated by a geometric distribution and the expected cost of
consensus is O(one phase).  This bench measures the phase-count tail
against the eps^k bound.
"""

from repro.analysis.paper import e20_phase_distribution


def test_e20_phase_distribution(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e20_phase_distribution(scale=bench_scale), rounds=1,
        iterations=1,
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    # The k=1 tail (more than one phase needed) must respect eps + slack.
    first = table.rows[0]
    assert first[1] <= first[2] + 0.08
