"""E1 — Lemma 1 decay figure: snapshot-conciliator survivor curve.

Regenerates the per-round mean excess-personae series for Algorithm 1 and
compares it against the analytic bound ``E[X_i] <= f^(i)(n-1)`` with
``f(x) = min(ln(x+1), x/2)``.
"""

from repro.analysis.paper import e1_snapshot_decay


def test_e1_snapshot_decay_curve(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e1_snapshot_decay(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    benchmark.extra_info["final_excess"] = table.rows[-1][1]
    assert table.shape_holds, table.render()


def test_e1_single_round_collapse_wall_time(benchmark):
    """Micro-benchmark: one full Algorithm 1 execution at n=64."""
    from repro.core.conciliator import run_conciliator
    from repro.core.snapshot_conciliator import SnapshotConciliator
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RandomSchedule

    n = 64
    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        seeds = SeedTree(seed)
        conciliator = SnapshotConciliator(n)
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
        return run_conciliator(conciliator, list(range(n)), schedule, seeds)

    result = benchmark(run_once)
    assert result.completed
