"""E19 — adversarial schedule search cannot break the oblivious floor.

The theorems hold for *every* fixed schedule, so a hill-climb that mutates
explicit schedules to minimize measured agreement must plateau at or above
1 - eps (up to sampling noise) — in contrast to E18, where one step beyond
obliviousness collapses the guarantee.
"""

from repro.analysis.paper import e19_worst_schedule_search


def test_e19_worst_schedule_search(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e19_worst_schedule_search(scale=bench_scale), rounds=1,
        iterations=1,
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    assert all(row[5] for row in table.rows)
