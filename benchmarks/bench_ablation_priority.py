"""E9 — ablation: Algorithm 1's priority range vs the duplicate event D.

Section 2 draws priorities from ``{1 .. ceil(R n^2/eps)}`` precisely so that
the probability of *any* duplicate priority across all rounds is at most
``eps/2``.  Shrinking the range must raise the duplicate rate toward 1 while
the paper's range keeps it under the budget.
"""

from repro.analysis.paper import e9_priority_range_ablation


def test_e9_priority_range_ablation(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e9_priority_range_ablation(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()
    # The paper-range row must respect the eps/2 duplicate budget.
    paper_row = [row for row in table.rows if row[0] == "paper"][0]
    assert paper_row[2] <= 0.25 + 0.1
