"""E12 — adopt-commit cost vs the number of possible values m.

Corollary 2's discussion: consensus cost is conciliator + adopt-commit, and
for large m the adopt-commit dominates.  The register-model flag object
grows ~3 log2 m steps (the paper's [9] would give O(log m / log log m));
the snapshot object is O(1) regardless of m.
"""

from repro.analysis.paper import e12_adopt_commit_cost


def test_e12_adopt_commit_cost_table(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e12_adopt_commit_cost(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()


def test_e12_flag_ac_run_wall_time(benchmark):
    """Micro-benchmark: a full n-process flag adopt-commit, n=16, m=4096."""
    from repro.adoptcommit.encoders import IntEncoder
    from repro.adoptcommit.flag_ac import FlagAdoptCommit
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RandomSchedule
    from repro.runtime.simulator import run_programs

    n, m = 16, 4096
    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        seeds = SeedTree(seed)
        ac = FlagAdoptCommit(n, IntEncoder(m))
        programs = [lambda ctx: ac.invoke(ctx, ctx.input_value)] * n
        return run_programs(
            programs,
            RandomSchedule(n, seeds.child("schedule").seed),
            seeds,
            inputs=[pid % m for pid in range(n)],
        )

    result = benchmark(run_once)
    assert result.completed
