"""E4 — Theorem 2: sifting conciliator over the (n, eps) grid.

Agreement probability must clear ``1 - eps`` and every process must take
exactly ``ceil(log2 log2 n) + ceil(log_{4/3}(8/eps))`` steps — the headline
``O(log log n + log(1/eps))`` result.
"""

from repro.analysis.paper import e4_sifting_conciliator


def test_e4_sifting_conciliator_grid(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e4_sifting_conciliator(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()


def test_e4_step_count_is_doubly_logarithmic(benchmark):
    """The measured step count's n-dependence: quadrupling the exponent of
    n adds O(1) rounds."""
    from repro.analysis.theory import sifting_step_count

    def build_series():
        return [sifting_step_count(n, 0.5) for n in (16, 256, 65536, 2**32)]

    series = benchmark(build_series)
    deltas = [series[i + 1] - series[i] for i in range(len(series) - 1)]
    assert deltas == [1, 1, 1]
