"""E2 — Theorem 1: snapshot conciliator over the (n, eps) grid.

Agreement probability must clear ``1 - eps`` and every process must take
exactly ``2(log* n + ceil(log2(1/eps)) + 1)`` steps.
"""

from repro.analysis.paper import e2_snapshot_conciliator


def test_e2_snapshot_conciliator_grid(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e2_snapshot_conciliator(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()


def test_e2_scan_cost_scaling(benchmark):
    """Micro-benchmark: wall time of a unit-cost scan grows with n (the
    simulator pays O(n) real time for the model's 1 charged step)."""
    from repro.memory.snapshot import SnapshotObject
    from repro.runtime.operations import Scan, Update

    n = 256
    snapshot = SnapshotObject(n)
    for pid in range(n):
        snapshot.apply(Update(snapshot, pid), pid=pid)

    benchmark(lambda: snapshot.apply(Scan(snapshot), pid=0))
