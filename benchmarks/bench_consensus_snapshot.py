"""E6 — Corollary 1: snapshot-model consensus in O(log* n) expected steps.

Alternates Algorithm 1 (eps = 1/2) with the O(1) snapshot adopt-commit; the
normalized cost (mean steps over single-phase cost) staying ~constant as n
grows is the O(log* n) shape, since the phase cost itself is 2 log* n + O(1).
"""

from repro.analysis.paper import e6_snapshot_consensus


def test_e6_snapshot_consensus_scaling(benchmark, record_experiment, bench_scale):
    table = benchmark.pedantic(
        lambda: e6_snapshot_consensus(scale=bench_scale), rounds=1, iterations=1
    )
    record_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    assert table.shape_holds, table.render()


def test_e6_consensus_run_wall_time(benchmark):
    """Micro-benchmark: one full snapshot-consensus execution at n=64."""
    from repro.core.consensus import run_consensus, snapshot_consensus
    from repro.runtime.rng import SeedTree
    from repro.runtime.scheduler import RandomSchedule

    n = 64
    counter = iter(range(10**9))

    def run_once():
        seed = next(counter)
        seeds = SeedTree(seed)
        protocol = snapshot_consensus(n)
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
        return run_consensus(protocol, list(range(n)), schedule, seeds)

    result = benchmark(run_once)
    assert result.agreement
