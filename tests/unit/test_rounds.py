"""Unit tests for the paper's round-count formulas."""

import math

import pytest

from repro.core.rounds import (
    ceil_log2,
    ceil_log_log,
    cil_write_probability,
    log_star,
    sifting_rounds,
    sifting_switch_round,
    snapshot_priority_range,
    snapshot_rounds,
)
from repro.errors import ConfigurationError


class TestLogStar:
    def test_base_cases(self):
        assert log_star(0) == 0
        assert log_star(1) == 0

    def test_small_values(self):
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_tower_boundary(self):
        # log*(2^16) = 4; just past the tower value it ticks to 5.
        assert log_star(65536) == 4
        assert log_star(65537) == 5
        assert log_star(2**64) == 5

    def test_monotone(self):
        values = [log_star(n) for n in range(1, 1000)]
        assert values == sorted(values)

    def test_grows_extremely_slowly(self):
        assert log_star(10**30) <= 5


class TestCeilHelpers:
    def test_ceil_log2_powers(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(1024) == 10

    def test_ceil_log2_non_powers(self):
        assert ceil_log2(3) == 2
        assert ceil_log2(1025) == 11

    def test_ceil_log2_floats(self):
        assert ceil_log2(2.0) == 1
        assert ceil_log2(0.5) == 0  # clamped at 0

    def test_ceil_log2_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ceil_log2(0)

    def test_ceil_log_log(self):
        assert ceil_log_log(2) == 0
        assert ceil_log_log(4) == 1
        assert ceil_log_log(16) == 2
        assert ceil_log_log(256) == 3
        assert ceil_log_log(65536) == 4

    def test_ceil_log_log_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            ceil_log_log(0)


class TestSnapshotRounds:
    def test_formula(self):
        # R = log* n + ceil(log2(1/eps)) + 1
        assert snapshot_rounds(16, 0.5) == 3 + 1 + 1
        assert snapshot_rounds(16, 0.25) == 3 + 2 + 1

    def test_epsilon_dependence_is_logarithmic(self):
        base = snapshot_rounds(64, 0.5)
        assert snapshot_rounds(64, 0.5 ** 10) == base + 9

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            snapshot_rounds(4, 0.0)
        with pytest.raises(ConfigurationError):
            snapshot_rounds(4, 1.0)

    def test_priority_range_formula(self):
        # ceil(R n^2 / eps)
        assert snapshot_priority_range(10, 0.5, 4) == math.ceil(4 * 100 / 0.5)

    def test_priority_range_rejects_bad_rounds(self):
        with pytest.raises(ConfigurationError):
            snapshot_priority_range(10, 0.5, 0)


class TestSiftingRounds:
    def test_switch_round(self):
        assert sifting_switch_round(2) == 0
        assert sifting_switch_round(16) == 2
        assert sifting_switch_round(256) == 3

    def test_formula(self):
        tail = math.ceil(math.log(8 / 0.5) / math.log(4 / 3))
        assert sifting_rounds(16, 0.5) == 2 + tail

    def test_tail_scales_with_epsilon(self):
        # Each factor-of-(4/3) reduction in eps costs one more round.
        few = sifting_rounds(16, 0.5)
        many = sifting_rounds(16, 0.5 * (3 / 4) ** 8)
        assert many == few + 8

    def test_doubly_logarithmic_in_n(self):
        # Growing n from 2^4 to 2^256 adds only a handful of rounds.
        assert sifting_rounds(2**256, 0.5) - sifting_rounds(16, 0.5) == 6

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            sifting_rounds(0, 0.5)


class TestCILWriteProbability:
    def test_quarter_n(self):
        assert cil_write_probability(10) == pytest.approx(1 / 40)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            cil_write_probability(0)
