"""Unit tests for the growth-curve experiment's pure machinery."""

import pytest

from repro.analysis.growth import (
    GROWTH_ALGORITHMS,
    GROWTH_SCHEMA_VERSION,
    compare_growth,
    decades,
    deterministic_view,
    growth_filename,
    load_growth_json,
    sparse_round_probe,
    trials_for,
    write_growth_json,
)
from repro.errors import ConfigurationError


class TestSweepShape:
    def test_decades_are_powers_of_ten(self):
        assert decades(10**6) == [10, 100, 1000, 10**4, 10**5, 10**6]
        assert decades(10) == [10]
        assert decades(99_999) == [10, 100, 1000, 10**4]

    def test_decades_rejects_tiny_max(self):
        with pytest.raises(ConfigurationError, match="max_n"):
            decades(5)

    def test_trials_shrink_with_n(self):
        assert trials_for(10) == 512
        assert trials_for(10**6) == 4
        sizes = decades(10**6)
        counts = [trials_for(n) for n in sizes]
        assert counts == sorted(counts, reverse=True)
        assert all(count >= 4 for count in counts)

    def test_algorithm_order_is_fast_classes_first(self):
        assert GROWTH_ALGORITHMS == ("snapshot", "sifting", "doubling-cil")


class TestSafePriorityRange:
    def test_cap_respects_vectorized_packing_guard(self):
        # The cap must satisfy the kernel's `range * mult + n < 2**63`
        # packing bound and stay above n^2 (the duplicate-priority bound).
        from repro.analysis.growth import _max_safe_priority_range

        for n in (10**5, 10**6):
            mult = 1 << (n - 1).bit_length()
            safe = _max_safe_priority_range(n)
            assert safe * mult + n < 2**63
            assert (safe + 2) * mult + n >= 2**63
            assert safe >= n * n

    def test_default_range_needs_no_cap_at_small_n(self):
        from repro.analysis.growth import _ensemble_factory

        _, capped = _ensemble_factory("snapshot", 1000, 0.5)
        assert not capped

    def test_unknown_algorithm_rejected(self):
        from repro.analysis.growth import _ensemble_factory

        with pytest.raises(ConfigurationError, match="growth algorithm"):
            _ensemble_factory("banana", 10, 0.5)


class TestSoloLadder:
    def test_solo_work_grows_with_n_and_respects_bound(self):
        from repro.analysis.growth import _solo_ladder_point

        small = _solo_ladder_point(16, seed=7)
        large = _solo_ladder_point(4096, seed=7)
        assert small["within_envelope"] and large["within_envelope"]
        assert large["observed_mean_steps"] > small["observed_mean_steps"]
        assert small["observed_max_steps"] <= small["predicted_steps"]

    def test_deterministic_given_seed(self):
        from repro.analysis.growth import _solo_ladder_point

        assert _solo_ladder_point(64, seed=3) == _solo_ladder_point(64, seed=3)
        assert (_solo_ladder_point(64, seed=3)
                != _solo_ladder_point(64, seed=4))


class TestSparseRoundProbe:
    def test_deterministic_and_touches_one_register(self):
        probe = sparse_round_probe(50_000, seed=9, slots=10_000)
        again = sparse_round_probe(50_000, seed=9, slots=10_000)
        assert probe == again
        assert probe["registers_allocated"] == 1
        assert probe["writes"] + probe["reads"] == 10_000
        assert probe["snapshot_sparse"] is True
        assert probe["scan_view_touched"] == probe["snapshot_components_touched"]

    def test_small_n_uses_dense_snapshot(self):
        probe = sparse_round_probe(100, seed=9)
        assert probe["snapshot_sparse"] is False
        assert probe["slots"] == 100


class TestSerialization:
    def _report(self, label="x"):
        return {
            "v": GROWTH_SCHEMA_VERSION,
            "label": label,
            "seed": 1,
            "curves": {"snapshot": []},
            "checks": {"ok": True},
        }

    def test_filename_and_directory_write(self, tmp_path):
        assert growth_filename("baseline") == "GROWTH_baseline.json"
        path = write_growth_json(self._report("quicktest"), tmp_path)
        assert path.name == "GROWTH_quicktest.json"
        assert load_growth_json(path)["label"] == "quicktest"

    def test_load_rejects_foreign_version(self, tmp_path):
        report = self._report()
        report["v"] = 99
        path = write_growth_json(report, tmp_path / "bad.json")
        with pytest.raises(ConfigurationError, match="version"):
            load_growth_json(path)

    def test_load_rejects_missing_and_invalid(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot be read"):
            load_growth_json(tmp_path / "absent.json")
        broken = tmp_path / "broken.json"
        broken.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_growth_json(broken)

    def test_deterministic_view_strips_only_label(self):
        report = self._report("anything")
        view = deterministic_view(report)
        assert "label" not in view
        assert view["seed"] == 1 and view["curves"] == {"snapshot": []}

    def test_compare_ignores_label_and_names_divergent_key(self):
        ok, message = compare_growth(self._report("a"), self._report("b"))
        assert ok and "byte for byte" in message
        changed = self._report("b")
        changed["checks"] = {"ok": False}
        ok, message = compare_growth(self._report("a"), changed)
        assert not ok and "'checks'" in message


class TestNumpyGate:
    def test_experiment_refuses_without_numpy(self, monkeypatch):
        import repro.runtime.vectorized as vectorized
        from repro.analysis.growth import run_growth_experiment

        monkeypatch.setattr(vectorized, "numpy_available", lambda: False)
        with pytest.raises(ConfigurationError, match="NumPy"):
            run_growth_experiment(max_n=10)
