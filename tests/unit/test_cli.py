"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_consensus_defaults(self):
        args = build_parser().parse_args(["consensus"])
        assert args.model == "register"
        assert args.n == 16

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["conciliator", "--algorithm", "magic"])


class TestConsensusCommand:
    def test_register_model(self, capsys):
        code = main(["consensus", "--n", "6", "--seed", "7"])
        output = capsys.readouterr().out
        assert code == 0
        assert "agreement: True" in output
        assert "validity: True" in output

    def test_snapshot_model(self, capsys):
        code = main(["consensus", "--model", "snapshot", "--n", "5"])
        assert code == 0
        assert "agreement: True" in capsys.readouterr().out

    def test_linear_model(self, capsys):
        code = main(["consensus", "--model", "linear", "--n", "5",
                     "--workload", "binary"])
        assert code == 0
        assert "agreement: True" in capsys.readouterr().out

    def test_crash_adversary(self, capsys):
        code = main(["consensus", "--n", "6", "--schedule", "crash-half"])
        assert code == 0
        assert "agreement: True" in capsys.readouterr().out

    def test_unanimous_workload_decides_it(self, capsys):
        main(["consensus", "--n", "4", "--workload", "unanimous"])
        assert "decided: [0]" in capsys.readouterr().out


class TestConciliatorCommand:
    def test_reports_rate_and_interval(self, capsys):
        code = main(["conciliator", "--algorithm", "sifting", "--n", "8",
                     "--trials", "20", "--seed", "3"])
        output = capsys.readouterr().out
        assert code == 0
        assert "agreement rate:" in output
        assert "95% CI" in output

    @pytest.mark.parametrize("algorithm", ["snapshot", "snapshot-maxreg",
                                           "cil-embedded", "doubling-cil"])
    def test_all_algorithms_run(self, algorithm, capsys):
        code = main(["conciliator", "--algorithm", algorithm, "--n", "6",
                     "--trials", "5"])
        assert code == 0
        assert "validity failures: 0" in capsys.readouterr().out


class TestDecayCommand:
    def test_prints_table_with_bounds(self, capsys):
        code = main(["decay", "--algorithm", "snapshot", "--n", "16",
                     "--trials", "5"])
        output = capsys.readouterr().out
        assert code == 0
        assert "paper bound" in output
        assert "round" in output


class TestDecayPlot:
    def test_plot_flag_renders_chart(self, capsys):
        code = main(["decay", "--algorithm", "sifting", "--n", "8",
                     "--trials", "4", "--plot"])
        output = capsys.readouterr().out
        assert code == 0
        assert "measured" in output
        assert "┤" in output  # the chart axis


class TestSearchCommand:
    def test_reports_worst_found_rate(self, capsys):
        code = main(["search", "--n", "4", "--generations", "2",
                     "--trials", "4"])
        output = capsys.readouterr().out
        assert code == 0
        assert "worst-found agreement" in output
        assert "schedules evaluated" in output

    def test_snapshot_algorithm(self, capsys):
        code = main(["search", "--algorithm", "snapshot", "--n", "4",
                     "--generations", "2", "--trials", "4"])
        assert code == 0


class TestTasCommand:
    def test_reports_unique_winner(self, capsys):
        code = main(["tas", "--n", "8", "--trials", "10"])
        output = capsys.readouterr().out
        assert code == 0
        assert "unique-winner violations: 0" in output


class TestExperimentsCommand:
    def test_single_experiment_filter(self, capsys):
        code = main(["experiments", "--scale", "0.05", "--only", "E12"])
        output = capsys.readouterr().out
        assert code == 0
        assert "[E12]" in output
        assert "[E1]" not in output


class TestParallelFlags:
    def test_defaults_are_serial(self):
        for command in ("conciliator", "decay", "experiments"):
            args = build_parser().parse_args([command])
            assert args.workers == 1
            assert args.chunk_size is None

    def test_conciliator_with_workers_matches_serial(self, capsys):
        command = ["conciliator", "--algorithm", "sifting", "--n", "6",
                   "--trials", "12", "--seed", "9"]
        assert main(command) == 0
        serial_output = capsys.readouterr().out
        assert main(command + ["--workers", "2", "--chunk-size", "3"]) == 0
        parallel_output = capsys.readouterr().out
        assert parallel_output == serial_output

    def test_decay_accepts_workers(self, capsys):
        code = main(["decay", "--algorithm", "sifting", "--n", "8",
                     "--trials", "4", "--workers", "2"])
        assert code == 0
        assert "paper bound" in capsys.readouterr().out

    def test_negative_workers_is_a_configuration_error(self, capsys):
        code = main(["conciliator", "--n", "4", "--trials", "4",
                     "--workers", "-2"])
        assert code == 2
        assert "workers" in capsys.readouterr().err


class TestFuzzCommand:
    def test_list_stacks(self, capsys):
        code = main(["fuzz", "--list-stacks"])
        output = capsys.readouterr().out
        assert code == 0
        assert "sifting" in output
        assert "planted-validity" in output

    def test_requires_a_sizing_mode(self, capsys):
        code = main(["fuzz"])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_rejects_both_sizing_modes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--trials", "5",
                                       "--time-budget", "1"])

    def test_honest_campaign_exits_zero(self, capsys):
        code = main(["fuzz", "--trials", "8", "--seed", "5",
                     "--stacks", "sifting,flag-ac"])
        output = capsys.readouterr().out
        assert code == 0
        assert "ok" in output
        assert "trials=8" in output

    def test_planted_campaign_exits_one_and_writes_corpus(self, tmp_path,
                                                          capsys):
        code = main(["fuzz", "--trials", "6", "--seed", "2",
                     "--stacks", "planted-validity", "--no-shrink",
                     "--corpus", str(tmp_path / "corpus")])
        output = capsys.readouterr().out
        assert code == 1
        assert "VIOLATIONS FOUND" in output
        assert list((tmp_path / "corpus").glob("case-*.json"))

    def test_json_report(self, capsys):
        import json

        code = main(["fuzz", "--trials", "4", "--seed", "5",
                     "--stacks", "sifting", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["trials"] == 4
        assert report["ok"] is True

    def test_unknown_stack_is_a_configuration_error(self, capsys):
        code = main(["fuzz", "--trials", "2", "--stacks", "nope"])
        assert code == 2
        assert "unknown stack" in capsys.readouterr().err


class TestBenchCommand:
    @staticmethod
    def _write_report(path, cases):
        import json

        from repro.obs.bench import BENCH_SCHEMA_VERSION

        report = {
            "v": BENCH_SCHEMA_VERSION,
            "label": "test", "quick": True, "seed": 1,
            "created_unix": 0.0, "git_sha": "deadbeef", "env": {},
            "elapsed_seconds": 0.0,
            "cases": {
                name: {
                    "trials": 1, "n": 2, "total_steps": 10,
                    "elapsed_seconds": 0.1, "steps_per_sec": sps,
                    "latency_p50_s": 0.1, "latency_p95_s": 0.1,
                    "metrics": None,
                }
                for name, sps in cases.items()
            },
        }
        path.write_text(json.dumps(report))
        return path

    def test_parser_defaults(self):
        from repro.obs.bench import DEFAULT_THRESHOLD

        args = build_parser().parse_args(["bench"])
        assert args.label == "local"
        assert args.seed == 2012
        assert not args.quick
        compare = build_parser().parse_args(["bench", "compare", "a", "b"])
        assert compare.threshold == DEFAULT_THRESHOLD

    def test_quick_single_suite_run(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_unit.json"
        code = main(["bench", "--quick", "--suite", "consensus",
                     "--label", "unit", "--seed", "3", "--json",
                     "--out", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        report = json.loads(captured.out)
        assert report["label"] == "unit"
        assert list(report["cases"]) == ["consensus"]
        # Progress and the written-path note stay on stderr so stdout is
        # pure JSON for piping.
        assert "wrote" in captured.err
        assert out.exists()

    def test_unknown_suite_exits_two(self, capsys):
        code = main(["bench", "--quick", "--suite", "nope"])
        assert code == 2
        assert "unknown bench case" in capsys.readouterr().err

    def test_compare_ok_exits_zero(self, tmp_path, capsys):
        old = self._write_report(tmp_path / "old.json", {"alpha": 1000.0})
        new = self._write_report(tmp_path / "new.json", {"alpha": 950.0})
        code = main(["bench", "compare", str(old), str(new)])
        output = capsys.readouterr().out
        assert code == 0
        assert "all cases within bounds" in output

    def test_compare_regression_exits_one(self, tmp_path, capsys):
        import json

        old = self._write_report(tmp_path / "old.json", {"alpha": 1000.0})
        new = self._write_report(tmp_path / "new.json", {"alpha": 100.0})
        code = main(["bench", "compare", str(old), str(new),
                     "--threshold", "0.4", "--json"])
        assert code == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is False
        assert verdict["cases"][0]["regressed"] is True

    def test_compare_missing_file_exits_two(self, tmp_path, capsys):
        old = self._write_report(tmp_path / "old.json", {"alpha": 1000.0})
        code = main(["bench", "compare", str(old),
                     str(tmp_path / "absent.json")])
        assert code == 2
        assert "cannot be read" in capsys.readouterr().err

    def test_compare_bad_threshold_exits_two(self, tmp_path, capsys):
        old = self._write_report(tmp_path / "old.json", {"alpha": 1000.0})
        code = main(["bench", "compare", str(old), str(old),
                     "--threshold", "1.5"])
        assert code == 2
        assert "threshold" in capsys.readouterr().err


class TestReplayCommand:
    def test_empty_corpus_is_ok(self, tmp_path, capsys):
        code = main(["replay", "--corpus", str(tmp_path)])
        assert code == 0
        assert "no corpus cases" in capsys.readouterr().out

    def test_replays_written_corpus(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--trials", "6", "--seed", "2",
                     "--stacks", "planted-validity", "--no-shrink",
                     "--corpus", str(corpus)]) == 1
        capsys.readouterr()
        code = main(["replay", "--corpus", str(corpus)])
        output = capsys.readouterr().out
        assert code == 0
        assert "0 failed to reproduce" in output

    def test_fabricated_case_that_cannot_reproduce_fails(self, tmp_path,
                                                         capsys):
        from repro.fuzz import CorpusCase, Scenario, save_case
        from repro.workloads.schedules import ScheduleSpec

        save_case(
            CorpusCase(
                scenario=Scenario(
                    stack="sifting", n=2, workload="binary", seed=1,
                    schedule=ScheduleSpec("round-robin", 2),
                ),
                oracles=("validity",),
            ),
            tmp_path,
        )
        code = main(["replay", "--corpus", str(tmp_path)])
        output = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in output


class TestExplainCommand:
    @staticmethod
    def _write_agreement_case(tmp_path):
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--trials", "40", "--seed", "2012",
                     "--stacks", "planted-agreement", "--max-n", "4",
                     "--no-shrink", "--corpus", str(corpus)]) == 1
        cases = list(corpus.glob("case-*.json"))
        assert cases
        return cases[0]

    def test_renders_disagreement_and_attribution(self, tmp_path, capsys):
        case = self._write_agreement_case(tmp_path)
        capsys.readouterr()
        code = main(["explain", str(case)])
        output = capsys.readouterr().out
        assert code == 0
        assert "DISAGREEMENT" in output
        assert "divergence round" in output
        assert "step attribution" in output

    def test_json_and_out_write_versioned_explanation(self, tmp_path, capsys):
        import json

        from repro.fuzz.explain import EXPLAIN_SCHEMA_VERSION

        case = self._write_agreement_case(tmp_path)
        capsys.readouterr()
        out = tmp_path / "case.explain.json"
        trace = tmp_path / "case.trace.jsonl"
        code = main(["explain", str(case), "--json",
                     "--out", str(out), "--trace", str(trace)])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["v"] == EXPLAIN_SCHEMA_VERSION
        assert payload["disagreement"]["diverged"] is True
        assert out.exists() and trace.exists()
        # The written file is the same canonical JSON as stdout.
        assert json.loads(out.read_text()) == payload

    def test_missing_case_exits_two(self, tmp_path, capsys):
        code = main(["explain", str(tmp_path / "absent.json")])
        assert code == 2
        assert capsys.readouterr().err


class TestTimelineCommand:
    def test_from_case_renders_chart_and_html(self, tmp_path, capsys):
        case = TestExplainCommand._write_agreement_case(tmp_path)
        capsys.readouterr()
        html = tmp_path / "t.html"
        code = main(["timeline", "--case", str(case), "--html", str(html)])
        captured = capsys.readouterr()
        assert code == 0
        assert "legend:" in captured.out
        assert "p0" in captured.out
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_from_trace_file(self, tmp_path, capsys):
        case = TestExplainCommand._write_agreement_case(tmp_path)
        trace = tmp_path / "t.jsonl"
        assert main(["explain", str(case), "--trace", str(trace)]) == 0
        capsys.readouterr()
        code = main(["timeline", "--trace", str(trace), "--width", "80"])
        output = capsys.readouterr().out
        assert code == 0
        for line in output.splitlines():
            assert len(line) <= 80

    def test_requires_case_or_trace(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timeline"])

    def test_narrow_width_exits_two(self, tmp_path, capsys):
        case = TestExplainCommand._write_agreement_case(tmp_path)
        capsys.readouterr()
        code = main(["timeline", "--case", str(case), "--width", "10"])
        assert code == 2
        assert "width" in capsys.readouterr().err


class TestReplayExplain:
    def test_explain_dir_requires_explain_flag(self, tmp_path, capsys):
        code = main(["replay", "--corpus", str(tmp_path),
                     "--explain-dir", str(tmp_path / "out")])
        assert code == 2
        assert "--explain" in capsys.readouterr().err

    def test_explain_writes_reports_and_traces(self, tmp_path, capsys):
        case = TestExplainCommand._write_agreement_case(tmp_path)
        capsys.readouterr()
        out = tmp_path / "explanations"
        code = main(["replay", "--corpus", str(case.parent),
                     "--explain", "--explain-dir", str(out)])
        output = capsys.readouterr().out
        assert code == 0
        assert "disagreement: diverged at round" in output
        assert list(out.glob("*.explain.json"))
        assert list(out.glob("*.trace.jsonl"))


class TestFuzzExplain:
    def test_explain_requires_corpus(self, capsys):
        code = main(["fuzz", "--trials", "2", "--explain"])
        assert code == 2
        assert "--corpus" in capsys.readouterr().err

    def test_explain_writes_explanations_next_to_cases(self, tmp_path,
                                                       capsys):
        corpus = tmp_path / "corpus"
        code = main(["fuzz", "--trials", "40", "--seed", "2012",
                     "--stacks", "planted-agreement", "--max-n", "4",
                     "--no-shrink", "--corpus", str(corpus), "--explain"])
        capsys.readouterr()
        assert code == 1
        explanations = list(corpus.glob("case-*.explain.json"))
        cases = [path for path in corpus.glob("case-*.json")
                 if path not in explanations]
        assert cases and len(explanations) == len(cases)
        # The explanation files must not confuse corpus loading: replay
        # sees only the cases.
        assert main(["replay", "--corpus", str(corpus)]) == 0


class TestBenchTrendCommand:
    @staticmethod
    def _seed_history(path, values):
        from repro.obs.trend import append_history

        for index, value in enumerate(values):
            append_history({
                "label": "t", "quick": True, "seed": 1,
                "git_sha": f"sha{index}", "created_unix": index,
                "cases": {"alpha": {"steps_per_sec": value}},
            }, path)

    def test_parser_history_flag_default_and_const(self):
        assert build_parser().parse_args(["bench"]).history is None
        args = build_parser().parse_args(["bench", "--history"])
        assert args.history == "benchmarks/BENCH_history.jsonl"
        args = build_parser().parse_args(["bench", "--history", "x.jsonl"])
        assert args.history == "x.jsonl"

    def test_trend_renders_table(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        self._seed_history(history, [100.0, 150.0])
        code = main(["bench", "trend", "--history", str(history)])
        output = capsys.readouterr().out
        assert code == 0
        assert "alpha" in output
        assert "+50.0%" in output

    def test_trend_json(self, tmp_path, capsys):
        import json

        history = tmp_path / "h.jsonl"
        self._seed_history(history, [100.0, 150.0, 75.0])
        code = main(["bench", "trend", "--history", str(history),
                     "--last", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 3
        case = payload["cases"][0]
        assert case["name"] == "alpha"
        assert case["latest_change"] == pytest.approx(-0.5)

    def test_trend_empty_history_hints(self, tmp_path, capsys):
        code = main(["bench", "trend",
                     "--history", str(tmp_path / "none.jsonl")])
        assert code == 0
        assert "repro bench --history" in capsys.readouterr().out

    def test_bench_run_appends_history(self, tmp_path, capsys):
        from repro.obs.trend import load_history

        history = tmp_path / "h.jsonl"
        code = main(["bench", "--quick", "--suite", "consensus",
                     "--label", "unit", "--seed", "3",
                     "--out", str(tmp_path / "BENCH_unit.json"),
                     "--history", str(history)])
        captured = capsys.readouterr()
        assert code == 0
        assert "history" in captured.err
        entries = load_history(history)
        assert len(entries) == 1
        assert "consensus" in entries[0]["cases"]

    def test_compare_json_carries_percent_deltas(self, tmp_path, capsys):
        import json

        old = TestBenchCommand._write_report(
            tmp_path / "old.json", {"alpha": 1000.0}
        )
        new = TestBenchCommand._write_report(
            tmp_path / "new.json", {"alpha": 900.0}
        )
        code = main(["bench", "compare", str(old), str(new), "--json"])
        assert code == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["cases"][0]["change_pct"] == pytest.approx(-10.0)

    def test_compare_help_states_exit_contract(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "compare", "--help"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        assert "Exit codes" in text
        assert "2 = usage or configuration error" in text


class TestBackendFlags:
    def test_backend_defaults_to_generator(self):
        assert build_parser().parse_args(["conciliator"]).backend == "generator"
        assert build_parser().parse_args(["decay"]).backend == "generator"

    def test_backend_choices_cover_all_backends(self):
        from repro.runtime.vectorized import BACKENDS

        for backend in BACKENDS:
            args = build_parser().parse_args(
                ["conciliator", "--backend", backend]
            )
            assert args.backend == backend

    def test_conciliator_vectorized_run(self, capsys):
        pytest.importorskip("numpy")
        code = main(["conciliator", "--algorithm", "sifting", "--n", "8",
                     "--trials", "200", "--seed", "3", "--schedule",
                     "permuted", "--backend", "vectorized"])
        output = capsys.readouterr().out
        assert code == 0
        assert "backend=vectorized" in output
        assert "agreement rate:" in output

    def test_conciliator_oracle_backend_matches_generator(self, capsys):
        pytest.importorskip("numpy")
        command = ["conciliator", "--algorithm", "snapshot", "--n", "5",
                   "--trials", "10", "--seed", "7", "--schedule", "permuted"]
        assert main(command) == 0
        generator_output = capsys.readouterr().out
        assert main(command + ["--backend", "vectorized-oracle"]) == 0
        oracle_output = capsys.readouterr().out
        # Identical stats; only the backend= note differs.
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("algorithm=")]
        assert strip(oracle_output) == strip(generator_output)

    def test_decay_vectorized_run(self, capsys):
        pytest.importorskip("numpy")
        code = main(["decay", "--algorithm", "sifting", "--n", "8",
                     "--trials", "64", "--schedule", "permuted",
                     "--backend", "vectorized"])
        output = capsys.readouterr().out
        assert code == 0
        assert "paper bound" in output

    def test_vectorized_rejects_non_lockstep_schedule(self, capsys):
        pytest.importorskip("numpy")
        code = main(["conciliator", "--n", "4", "--trials", "4",
                     "--schedule", "random", "--backend", "vectorized"])
        assert code == 2
        assert "not lockstep" in capsys.readouterr().err

    def test_new_schedules_work_on_generator_backend(self, capsys):
        for family in ("permuted", "interleaved"):
            code = main(["conciliator", "--algorithm", "snapshot", "--n", "4",
                         "--trials", "4", "--schedule", family])
            assert code == 0
            assert "agreement rate:" in capsys.readouterr().out


class TestGrowthCommand:
    def test_growth_runs_and_writes_report(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        code = main(["growth", "--max-n", "10", "--label", "t",
                     "--out", str(tmp_path)])
        captured = capsys.readouterr()
        # Separation needs several decades; a single-decade run reports
        # its curves but fails the self-checks — exit 1, file still written.
        assert code == 1
        assert "checks=FAILED" in captured.out
        assert (tmp_path / "GROWTH_t.json").exists()

    def test_growth_baseline_gate_matches_itself(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        main(["growth", "--max-n", "100", "--label", "a",
              "--out", str(tmp_path)])
        capsys.readouterr()
        code = main(["growth", "--max-n", "100", "--label", "b",
                     "--baseline", str(tmp_path / "GROWTH_a.json")])
        captured = capsys.readouterr()
        assert "byte for byte" in captured.err
        # Both runs fail only the separation self-check (two decades); the
        # byte gate itself passed, proving label-independent determinism.
        assert "diverges" not in captured.err

    def test_growth_baseline_gate_catches_divergence(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        main(["growth", "--max-n", "100", "--label", "a",
              "--out", str(tmp_path)])
        capsys.readouterr()
        code = main(["growth", "--max-n", "100", "--seed", "999",
                     "--baseline", str(tmp_path / "GROWTH_a.json")])
        captured = capsys.readouterr()
        assert code == 1
        assert "diverges" in captured.err
