"""Unit tests for the crash-safe checkpoint journal (repro.runtime.checkpoint)."""

import json

import pytest

from repro.errors import CheckpointError
from repro.runtime.checkpoint import CheckpointJournal


def open_journal(path, **overrides):
    options = dict(run_key="sweep|seed=1", trials=10, chunk_size=3)
    options.update(overrides)
    return CheckpointJournal.open(str(path), **options)


class TestCreation:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = open_journal(path)
        assert journal.completed_trials == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["run_key"] == "sweep|seed=1"
        assert header["trials"] == 10
        assert header["chunk_size"] == 3

    def test_empty_file_is_treated_as_fresh(self, tmp_path):
        path = tmp_path / "sweep.journal"
        path.write_text("")
        journal = open_journal(path)
        assert journal.completed_trials == 0

    def test_header_only_torn_file_restarts(self, tmp_path):
        # The kill happened mid-write of the very first line: nothing is
        # durable, so the journal must start over rather than refuse.
        path = tmp_path / "sweep.journal"
        path.write_text('{"kind": "head')
        journal = open_journal(path)
        assert journal.completed_trials == 0
        assert json.loads(path.read_text().splitlines()[0])["kind"] == "header"


class TestRecordAndReplay:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = open_journal(path)
        journal.record_chunk(0, 3, ["a", "b", "c"])
        journal.record_chunk(3, 6, ["d", "e", "f"])
        assert journal.completed_trials == 6

        reopened = open_journal(path)
        assert reopened.chunk_size == 3
        assert reopened.outcomes_for(0, 3) == ["a", "b", "c"]
        assert reopened.outcomes_for(3, 6) == ["d", "e", "f"]
        assert reopened.outcomes_for(6, 9) is None

    def test_outcomes_preserve_types(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = open_journal(path)
        payload = [(1, 2.5), {"k": frozenset({3})}, None]
        journal.record_chunk(0, 3, payload)
        assert open_journal(path).outcomes_for(0, 3) == payload

    def test_recording_a_chunk_twice_is_idempotent(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = open_journal(path)
        journal.record_chunk(0, 3, ["a", "b", "c"])
        journal.record_chunk(0, 3, ["a", "b", "c"])
        assert len(path.read_text().splitlines()) == 2  # header + one chunk

    def test_completed_chunks_view(self, tmp_path):
        journal = open_journal(tmp_path / "sweep.journal")
        journal.record_chunk(3, 6, ["d", "e", "f"])
        assert journal.completed_chunks == {(3, 6): ["d", "e", "f"]}


class TestConfigurationBinding:
    def test_mismatched_run_key_rejected(self, tmp_path):
        path = tmp_path / "sweep.journal"
        open_journal(path).record_chunk(0, 3, [1, 2, 3])
        with pytest.raises(CheckpointError, match="run_key"):
            open_journal(path, run_key="different|seed=2")

    def test_mismatched_trials_rejected(self, tmp_path):
        path = tmp_path / "sweep.journal"
        open_journal(path).record_chunk(0, 3, [1, 2, 3])
        with pytest.raises(CheckpointError, match="trials"):
            open_journal(path, trials=99)

    def test_journal_chunk_size_wins_on_reopen(self, tmp_path):
        path = tmp_path / "sweep.journal"
        open_journal(path, chunk_size=3)
        reopened = open_journal(path, chunk_size=7)
        assert reopened.chunk_size == 3


class TestIntegrity:
    def test_torn_tail_is_truncated_and_rerunnable(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = open_journal(path)
        journal.record_chunk(0, 3, ["a", "b", "c"])
        with open(path, "a") as handle:
            handle.write('{"kind": "chunk", "start": 3')  # no newline: torn
        reopened = open_journal(path)
        assert reopened.outcomes_for(0, 3) == ["a", "b", "c"]
        assert reopened.outcomes_for(3, 6) is None
        # The torn bytes were removed, so appending again keeps a clean file.
        reopened.record_chunk(3, 6, ["d", "e", "f"])
        assert open_journal(path).completed_trials == 6

    def test_edited_record_detected(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = open_journal(path)
        journal.record_chunk(0, 3, ["a", "b", "c"])
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["stop"] = 4  # tamper without re-hashing
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="integrity hash"):
            open_journal(path)

    def test_edited_header_detected(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = open_journal(path)
        journal.record_chunk(0, 3, ["a", "b", "c"])
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["trials"] = 10_000
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="header hash"):
            open_journal(path)

    def test_mid_file_corruption_is_not_mistaken_for_a_torn_tail(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = open_journal(path)
        journal.record_chunk(0, 3, ["a", "b", "c"])
        journal.record_chunk(3, 6, ["d", "e", "f"])
        lines = path.read_text().splitlines()
        lines[1] = "garbage-not-json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt, not merely torn"):
            open_journal(path)

    def test_deleted_middle_record_breaks_the_chain(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = open_journal(path)
        journal.record_chunk(0, 3, ["a", "b", "c"])
        journal.record_chunk(3, 6, ["d", "e", "f"])
        lines = path.read_text().splitlines()
        del lines[1]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="integrity hash"):
            open_journal(path)
