"""Unit tests for the Wing-Gong linearizability checker itself."""

import pytest

from repro.analysis.linearizability import (
    HistoryOp,
    MaxRegisterSpec,
    RegisterSpec,
    SnapshotSpec,
    is_linearizable,
)
from repro.errors import ConfigurationError


def op(pid, kind, value=None, result=None, start=0, end=0):
    return HistoryOp(pid=pid, kind=kind, value=value, result=result,
                     start=start, end=end)


class TestHistoryOp:
    def test_precedes(self):
        first = op(0, "write", value=1, start=0, end=2)
        second = op(1, "read", result=1, start=3, end=4)
        assert first.precedes(second)
        assert not second.precedes(first)

    def test_concurrent_ops_do_not_precede(self):
        a = op(0, "write", value=1, start=0, end=5)
        b = op(1, "read", result=None, start=3, end=4)
        assert not a.precedes(b)
        assert not b.precedes(a)

    def test_inverted_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            op(0, "read", start=5, end=2)


class TestRegisterSpec:
    def test_sequential_read_after_write(self):
        history = [
            op(0, "write", value=7, start=0, end=0),
            op(1, "read", result=7, start=1, end=1),
        ]
        assert is_linearizable(history, RegisterSpec())

    def test_stale_sequential_read_rejected(self):
        history = [
            op(0, "write", value=7, start=0, end=0),
            op(1, "read", result=None, start=1, end=1),
        ]
        assert not is_linearizable(history, RegisterSpec())

    def test_concurrent_read_may_see_either(self):
        for observed in (None, 7):
            history = [
                op(0, "write", value=7, start=0, end=4),
                op(1, "read", result=observed, start=1, end=2),
            ]
            assert is_linearizable(history, RegisterSpec()), observed

    def test_new_old_inversion_rejected(self):
        # read1 finishes before read2 starts but sees a NEWER value: illegal.
        history = [
            op(0, "write", value=1, start=0, end=0),
            op(0, "write", value=2, start=5, end=5),
            op(1, "read", result=2, start=1, end=2),
            op(2, "read", result=1, start=6, end=7),
        ]
        assert not is_linearizable(history, RegisterSpec())


class TestMaxRegisterSpec:
    def test_monotone_reads(self):
        history = [
            op(0, "write", value=3, start=0, end=1),
            op(1, "write", value=1, start=2, end=3),
            op(2, "read", result=3, start=4, end=5),
        ]
        assert is_linearizable(history, MaxRegisterSpec())

    def test_forgotten_max_rejected(self):
        history = [
            op(0, "write", value=3, start=0, end=1),
            op(2, "read", result=0, start=4, end=5),
        ]
        assert not is_linearizable(history, MaxRegisterSpec())

    def test_concurrent_write_read_flexible(self):
        history = [
            op(0, "write", value=9, start=0, end=10),
            op(1, "read", result=0, start=2, end=3),
            op(2, "read", result=9, start=4, end=5),
        ]
        # read1 linearizes before the write, read2 after — but read1
        # precedes read2 in real time and 0 <= 9, so this is legal.
        assert is_linearizable(history, MaxRegisterSpec())

    def test_decreasing_sequential_reads_rejected(self):
        history = [
            op(0, "write", value=9, start=0, end=10),
            op(1, "read", result=9, start=2, end=3),
            op(2, "read", result=0, start=4, end=5),
        ]
        assert not is_linearizable(history, MaxRegisterSpec())

    def test_initial_none_convention(self):
        history = [op(0, "read", result=None, start=0, end=0)]
        assert is_linearizable(history, MaxRegisterSpec(initial=None))
        assert not is_linearizable(history, MaxRegisterSpec(initial=0))


class TestSnapshotSpec:
    def test_update_then_scan(self):
        history = [
            op(0, "update", value="x", start=0, end=2),
            op(1, "scan", result=("x", None), start=3, end=5),
        ]
        assert is_linearizable(history, SnapshotSpec(2))

    def test_scan_missing_completed_update_rejected(self):
        history = [
            op(0, "update", value="x", start=0, end=2),
            op(1, "scan", result=(None, None), start=3, end=5),
        ]
        assert not is_linearizable(history, SnapshotSpec(2))

    def test_concurrent_scans_must_nest(self):
        # Two scans concurrent with two updates can split them, but their
        # views must be consistent with a single interleaving.
        history = [
            op(0, "update", value="a", start=0, end=9),
            op(1, "update", value="b", start=0, end=9),
            op(2, "scan", result=("a", None), start=1, end=2),
            op(3, "scan", result=(None, "b"), start=3, end=4),
        ]
        # scan2 precedes scan3 in real time; ("a", None) then (None, "b")
        # cannot both occur: component 0 cannot be cleared.
        assert not is_linearizable(history, SnapshotSpec(4))

    def test_nested_views_accepted(self):
        history = [
            op(0, "update", value="a", start=0, end=9),
            op(1, "update", value="b", start=0, end=9),
            op(2, "scan", result=("a", None, None, None), start=1, end=2),
            op(3, "scan", result=("a", "b", None, None), start=3, end=4),
        ]
        assert is_linearizable(history, SnapshotSpec(4))


class TestSearchBehaviour:
    def test_empty_history(self):
        assert is_linearizable([], RegisterSpec())

    def test_memoization_handles_many_concurrent_ops(self):
        # 8 fully concurrent writes + a read; would be 9! orders naively.
        history = [
            op(pid, "write", value=pid, start=0, end=100)
            for pid in range(8)
        ]
        history.append(op(9, "read", result=7, start=0, end=100))
        assert is_linearizable(history, MaxRegisterSpec())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            is_linearizable([op(0, "mystery", start=0, end=0)],
                            RegisterSpec())
