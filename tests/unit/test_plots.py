"""Unit tests for the ASCII chart helpers."""

import pytest

from repro.analysis.plots import bar_chart, series_plot, sparkline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_uses_increasing_levels(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestBarChart:
    def test_basic_render(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0])
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith(" a |")
        assert lines[1].startswith("bb |")

    def test_largest_value_gets_longest_bar(self):
        chart = bar_chart(["x", "y"], [1.0, 10.0], width=20)
        bars = [line.split("|")[1] for line in chart.splitlines()]
        assert bars[1].count("█") > bars[0].count("█")

    def test_log_scale_compresses(self):
        linear = bar_chart(["a", "b"], [1.0, 1000.0], width=30)
        logscale = bar_chart(["a", "b"], [1.0, 1000.0], width=30,
                             log_scale=True)
        small_linear = linear.splitlines()[0].count("█")
        small_log = logscale.splitlines()[0].count("█")
        assert small_log > small_linear

    def test_zero_value_gets_sliver(self):
        chart = bar_chart(["z"], [0.0])
        assert "▏" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [-1.0])

    def test_unit_suffix(self):
        assert "3 steps" in bar_chart(["a"], [3.0], unit=" steps")


class TestSeriesPlot:
    def test_dimensions(self):
        plot = series_plot([("m", [1, 2, 3, 4])], height=5)
        lines = plot.splitlines()
        # height rows + axis + legend
        assert len(lines) == 7

    def test_two_series_get_distinct_markers(self):
        plot = series_plot(
            [("measured", [1, 2, 3]), ("bound", [3, 2, 1])], height=4
        )
        assert "*" in plot
        assert "o" in plot
        assert "measured" in plot
        assert "bound" in plot

    def test_axis_labels_show_extremes(self):
        plot = series_plot([("s", [0.0, 10.0])], height=4)
        assert "10.00" in plot
        assert "0.00" in plot

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            series_plot([])
