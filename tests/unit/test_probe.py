"""Unit tests for the robustness probe report and its invariants."""

import pytest

from repro.analysis.probe import PROBE_ALGORITHMS, ProbeReport, run_probe
from repro.errors import ConfigurationError
from repro.runtime.adversary import ADVERSARY_LADDER


def _rung_row(rung, rate, validity_failures=0):
    return {
        "rung": rung,
        "adversary": rung,
        "agreement_rate": rate,
        "agreement_interval": [rate - 0.05, rate + 0.05],
        "validity_failures": validity_failures,
        "mean_total_steps": 100.0,
    }


def _report(rates, validity_failures=0):
    return ProbeReport(
        seed=1, n=4, trials=10, inner="pending-reads", noise=0.8, delay=1,
        ladder={"sifting": [
            _rung_row(rung, rate, validity_failures)
            for rung, rate in zip(ADVERSARY_LADDER, rates)
        ]},
        register_models=[{
            "algorithm": "sifting", "model": "regular",
            "agreement_rate": 0.8, "validity_failures": validity_failures,
            "mean_total_steps": 100.0,
        }],
    )


class TestProbeReport:
    def test_monotone_accepts_weak_decrease(self):
        assert _report([0.9, 0.9, 0.8, 0.6]).monotone == {"sifting": True}

    def test_monotone_rejects_increase(self):
        assert _report([0.9, 0.95, 0.8, 0.6]).monotone == {"sifting": False}

    def test_hard_oracles_hold(self):
        assert _report([0.9, 0.8, 0.7, 0.6]).hard_oracles_hold
        assert not _report([0.9, 0.8, 0.7, 0.6],
                           validity_failures=1).hard_oracles_hold

    def test_ok_needs_both(self):
        assert _report([0.9, 0.8, 0.7, 0.6]).ok
        assert not _report([0.9, 0.95, 0.8, 0.6]).ok
        assert not _report([0.9, 0.8, 0.7, 0.6], validity_failures=1).ok

    def test_json_round_trip(self):
        report = _report([0.9, 0.8, 0.7, 0.6])
        loaded = ProbeReport.from_json(report.to_json())
        assert loaded.ladder == report.ladder
        assert loaded.register_models == report.register_models
        assert loaded.ok == report.ok

    def test_json_version_rejected(self):
        data = _report([0.9, 0.8, 0.7, 0.6]).to_json()
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            ProbeReport.from_json(data)

    def test_render_tabulates_every_rung(self):
        rendered = _report([0.9, 0.8, 0.7, 0.6]).render()
        for rung in ADVERSARY_LADDER:
            assert rung in rendered
        assert "register model" in rendered


class TestRunProbe:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            run_probe(algorithms=("raft",), trials=1)

    def test_rejects_unknown_inner(self):
        with pytest.raises(ConfigurationError):
            run_probe(inner="nope", trials=1)

    def test_algorithms_cover_both_papers_algorithms(self):
        assert set(PROBE_ALGORITHMS) == {"sifting", "snapshot"}

    def test_small_probe_is_deterministic(self):
        kwargs = dict(n=3, trials=4, seed=5, algorithms=("sifting",))
        first = run_probe(**kwargs)
        second = run_probe(**kwargs)
        assert first.to_json() == second.to_json()
        # Every rung and every register model actually ran.
        rungs = [row["rung"] for row in first.ladder["sifting"]]
        assert rungs == list(ADVERSARY_LADDER)
        assert len(first.register_models) == 2 * 3  # both algos x 3 models
