"""Unit tests for the Process lifecycle wrapper."""

import random

import pytest

from repro.errors import SimulationError
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Read, Write
from repro.runtime.process import Process, ProcessContext


def make_context(pid=0, n=1, input_value=None):
    return ProcessContext(pid=pid, n=n, rng=random.Random(0), input_value=input_value)


class TestProcessLifecycle:
    def test_start_primes_first_operation(self):
        register = AtomicRegister("r")

        def program(ctx):
            yield Write(register, ctx.pid)
            return "done"

        process = Process(make_context(pid=3), program)
        assert not process.started
        process.start()
        assert process.started
        assert isinstance(process.pending_operation, Write)
        assert not process.finished

    def test_complete_step_advances_to_next_operation(self):
        register = AtomicRegister("r")

        def program(ctx):
            yield Write(register, 1)
            value = yield Read(register)
            return value

        process = Process(make_context(), program)
        process.start()
        process.complete_step(None)
        assert isinstance(process.pending_operation, Read)
        process.complete_step(42)
        assert process.finished
        assert process.output == 42

    def test_zero_step_program_finishes_at_start(self):
        def program(ctx):
            return ctx.input_value
            yield  # pragma: no cover - makes this a generator function

        process = Process(make_context(input_value="instant"), program)
        process.start()
        assert process.finished
        assert process.output == "instant"
        assert process.pending_operation is None

    def test_double_start_rejected(self):
        def program(ctx):
            yield Read(AtomicRegister("r"))
            return None

        process = Process(make_context(), program)
        process.start()
        with pytest.raises(SimulationError, match="started twice"):
            process.start()

    def test_step_on_finished_process_rejected(self):
        def program(ctx):
            return 1
            yield  # pragma: no cover

        process = Process(make_context(), program)
        process.start()
        with pytest.raises(SimulationError, match="not running"):
            process.complete_step(None)

    def test_yielding_non_operation_rejected(self):
        def program(ctx):
            yield "not an operation"

        process = Process(make_context(), program)
        with pytest.raises(SimulationError, match="not an\n?.*Operation|Operation"):
            process.start()

    def test_context_rng_is_private(self):
        def program(ctx):
            return ctx.rng.random()
            yield  # pragma: no cover

        one = Process(make_context(), program)
        one.start()
        two = Process(
            ProcessContext(pid=0, n=1, rng=random.Random(1)), program
        )
        two.start()
        assert one.output != two.output

    def test_input_value_reaches_program(self):
        def program(ctx):
            return ctx.input_value * 2
            yield  # pragma: no cover

        process = Process(make_context(input_value=21), program)
        process.start()
        assert process.output == 42
