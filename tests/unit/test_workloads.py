"""Unit tests for workload generators (inputs and schedule families)."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.rng import SeedTree
from repro.workloads.inputs import (
    all_distinct_inputs,
    binary_inputs,
    k_valued_inputs,
    skewed_inputs,
    standard_input_gallery,
    unanimous_inputs,
)
from repro.workloads.schedules import (
    ALL_SCHEDULE_FAMILIES,
    LOCKSTEP_FAMILIES,
    SCHEDULE_FAMILIES,
    make_schedule,
    schedule_gallery,
)


class TestInputGenerators:
    def test_all_distinct(self):
        inputs = all_distinct_inputs(5)
        assert len(set(inputs)) == 5

    def test_binary_values(self):
        inputs = binary_inputs(100, split=0.5, seed=1)
        assert set(inputs) <= {0, 1}
        assert 20 < sum(inputs) < 80

    def test_binary_extreme_splits(self):
        assert sum(binary_inputs(50, split=0.0)) == 0
        assert sum(binary_inputs(50, split=1.0)) == 50

    def test_binary_rejects_bad_split(self):
        with pytest.raises(ConfigurationError):
            binary_inputs(5, split=1.5)

    def test_k_valued_range(self):
        inputs = k_valued_inputs(200, 7, seed=2)
        assert set(inputs) <= set(range(7))

    def test_k_valued_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            k_valued_inputs(5, 0)

    def test_skewed_minority(self):
        inputs = skewed_inputs(10, majority_value="m", minority_count=3)
        assert inputs.count("m") == 7
        assert len(set(inputs)) == 4

    def test_skewed_rejects_oversized_minority(self):
        with pytest.raises(ConfigurationError):
            skewed_inputs(3, minority_count=4)

    def test_unanimous(self):
        assert set(unanimous_inputs(6, "v")) == {"v"}

    def test_gallery_shapes(self):
        gallery = standard_input_gallery(8, seed=3)
        assert set(gallery) == {
            "distinct", "binary", "four-valued", "skewed", "unanimous"
        }
        assert all(len(inputs) == 8 for inputs in gallery.values())

    def test_deterministic_given_seed(self):
        assert binary_inputs(50, seed=9) == binary_inputs(50, seed=9)

    def test_rejects_zero_processes(self):
        with pytest.raises(ConfigurationError):
            all_distinct_inputs(0)


class TestScheduleFamilies:
    def test_every_family_constructs(self):
        seeds = SeedTree(1)
        for family in SCHEDULE_FAMILIES:
            schedule = make_schedule(family, 4, seeds.child(family))
            assert schedule.n == 4
            assert all(0 <= pid < 4 for pid in schedule.take(40))

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown schedule family"):
            make_schedule("nonsense", 4, SeedTree(0))

    def test_gallery_excludes_crash_for_n1(self):
        gallery = schedule_gallery(1, SeedTree(0))
        assert "crash-half" not in gallery
        assert "round-robin" in gallery

    def test_gallery_is_reproducible(self):
        one = schedule_gallery(4, SeedTree(5))["random"].take(30)
        two = schedule_gallery(4, SeedTree(5))["random"].take(30)
        assert one == two

    def test_different_trial_seeds_differ(self):
        one = make_schedule("random", 4, SeedTree(1)).take(30)
        two = make_schedule("random", 4, SeedTree(2)).take(30)
        assert one != two


class TestScheduleSpec:
    def test_family_spec_builds_the_same_schedule(self):
        from repro.workloads.schedules import ScheduleSpec

        spec = ScheduleSpec("random", 4, seed=9)
        assert spec.build().take(30) == spec.build().take(30)
        assert spec.build().take(30) == ScheduleSpec("random", 4, seed=9).build().take(30)

    def test_explicit_spec_round_trips(self):
        from repro.workloads.schedules import ScheduleSpec

        spec = ScheduleSpec("explicit", 3, slots=(0, 1, 2, 2, 0))
        restored = ScheduleSpec.from_json(spec.to_json())
        assert restored == spec
        assert hash(restored) == hash(spec)
        assert restored.build().take(10) == [0, 1, 2, 2, 0]

    def test_validation(self):
        from repro.workloads.schedules import ScheduleSpec

        with pytest.raises(ConfigurationError, match="slots"):
            ScheduleSpec("explicit", 3)
        with pytest.raises(ConfigurationError, match="slots"):
            ScheduleSpec("random", 3, slots=(0, 1))
        with pytest.raises(ConfigurationError, match="unknown schedule family"):
            ScheduleSpec("nonsense", 3)
        with pytest.raises(ConfigurationError):
            ScheduleSpec("explicit", 2, slots=(0, 5))

    def test_unknown_version_rejected(self):
        from repro.workloads.schedules import ScheduleSpec

        data = ScheduleSpec("random", 3, seed=1).to_json()
        data["version"] = 0
        with pytest.raises(ConfigurationError, match="version"):
            ScheduleSpec.from_json(data)

    def test_is_finite_flags_partial_run_families(self):
        from repro.workloads.schedules import ScheduleSpec

        assert ScheduleSpec("explicit", 2, slots=(0, 1)).is_finite
        assert ScheduleSpec("crash-half", 4).is_finite
        assert not ScheduleSpec("round-robin", 4).is_finite
        assert not ScheduleSpec("random", 4).is_finite


class TestLockstepFamilies:
    """The vectorized-backend families ride alongside the fuzz-stable ones."""

    def test_family_lists_are_consistent(self):
        # SCHEDULE_FAMILIES is frozen (fuzz corpus determinism); the new
        # lockstep families extend it without reordering.
        from repro.workloads.schedules import STREAMING_FAMILIES

        assert ALL_SCHEDULE_FAMILIES[: len(SCHEDULE_FAMILIES)] == SCHEDULE_FAMILIES
        assert set(ALL_SCHEDULE_FAMILIES) - set(SCHEDULE_FAMILIES) == {
            "permuted",
            "interleaved",
            *STREAMING_FAMILIES,
        }
        assert set(LOCKSTEP_FAMILIES) <= set(ALL_SCHEDULE_FAMILIES)
        assert LOCKSTEP_FAMILIES == (
            "round-robin",
            "reversed",
            "permuted",
            "interleaved",
        )

    def test_new_families_construct_and_cover_processes(self):
        seeds = SeedTree(3)
        for family in ("permuted", "interleaved"):
            schedule = make_schedule(family, 4, seeds.child(family))
            assert schedule.n == 4
            slots = schedule.take(80)
            assert set(slots) == set(range(4))

    def test_new_families_are_seed_deterministic(self):
        for family in ("permuted", "interleaved"):
            one = make_schedule(family, 5, SeedTree(7)).take(60)
            two = make_schedule(family, 5, SeedTree(7)).take(60)
            three = make_schedule(family, 5, SeedTree(8)).take(60)
            assert one == two
            assert one != three

    def test_new_families_draw_from_schedule_branch(self):
        # Same contract as the other randomized families: the schedule's
        # randomness comes from its own child branch of the trial seed tree,
        # never from the algorithm's coin streams.
        seeds = SeedTree(11)
        direct = make_schedule("permuted", 4, seeds.child("schedule"))
        again = make_schedule("permuted", 4, seeds.child("schedule"))
        assert direct.take(40) == again.take(40)
