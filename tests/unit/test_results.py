"""Unit tests for RunResult metrics."""

from repro.runtime.results import RunResult


def make_result(outputs, steps, n=None, completed=True):
    n = n if n is not None else len(outputs)
    return RunResult(n=n, outputs=outputs, steps_by_pid=steps, completed=completed)


class TestRunResult:
    def test_total_and_max_steps(self):
        result = make_result({0: "a", 1: "a"}, {0: 3, 1: 7})
        assert result.total_steps == 10
        assert result.max_individual_steps == 7

    def test_agreement_true_when_all_equal(self):
        assert make_result({0: "v", 1: "v"}, {0: 1, 1: 1}).agreement

    def test_agreement_false_on_two_values(self):
        assert not make_result({0: "v", 1: "w"}, {0: 1, 1: 1}).agreement

    def test_empty_outputs_vacuously_agree(self):
        result = make_result({}, {}, n=2, completed=False)
        assert result.agreement

    def test_decided_values(self):
        result = make_result({0: 1, 1: 2, 2: 1}, {0: 1, 1: 1, 2: 1})
        assert result.decided_values == {1, 2}

    def test_validity_holds(self):
        result = make_result({0: "x", 1: "x"}, {0: 1, 1: 1})
        assert result.validity_holds({0: "x", 1: "y"})
        assert not result.validity_holds({0: "y", 1: "z"})

    def test_output_list_ordered_by_pid(self):
        result = make_result({1: "b", 0: "a"}, {0: 1, 1: 1})
        assert result.output_list() == ["a", "b"]

    def test_summary_mentions_key_metrics(self):
        summary = make_result({0: "v"}, {0: 5}).summary()
        assert "total_steps=5" in summary
        assert "completed=True" in summary

    def test_zero_process_edge(self):
        result = make_result({}, {}, n=0)
        assert result.total_steps == 0
        assert result.max_individual_steps == 0
