"""Unit tests for the register-model semantics layer.

Covers the RegisterModel value object, the SemanticsResolver's
read-resolution policy (contention windows, read-your-writes, the
observer escape hatch for idempotent max-register writes), the
SemanticsInjector hook, the stale-read fault's delegation to
``stale_value``, and the RegisterSemanticsMonitor's calibration under a
declared weakening.
"""

import pytest

from repro.errors import ConfigurationError
from repro.memory.max_register import MaxRegister
from repro.memory.register import AtomicRegister
from repro.memory.semantics import (
    REGISTER_MODEL_KINDS,
    RegisterModel,
    SemanticsInjector,
    stale_value,
)
from repro.runtime.faults import FaultPlan, RegisterFault
from repro.runtime.monitors import RegisterSemanticsMonitor
from repro.runtime.operations import MaxRead, MaxWrite, Read, Write
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import ExplicitSchedule
from repro.runtime.simulator import run_programs


class TestRegisterModel:
    def test_kinds_ordering(self):
        assert REGISTER_MODEL_KINDS == ("atomic", "regular", "safe")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            RegisterModel("linearizable")

    def test_rejects_bad_p_old(self):
        with pytest.raises(ConfigurationError):
            RegisterModel("regular", p_old=1.5)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            RegisterModel("regular", window=0)

    def test_is_atomic(self):
        assert RegisterModel("atomic").is_atomic
        assert not RegisterModel("regular").is_atomic
        assert not RegisterModel("safe").is_atomic

    def test_json_round_trip(self):
        model = RegisterModel("safe", seed=9, p_old=0.25, window=3)
        assert RegisterModel.from_json(model.to_json()) == model

    def test_json_version_rejected(self):
        data = RegisterModel("regular").to_json()
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            RegisterModel.from_json(data)

    def test_hashable_value_object(self):
        assert RegisterModel("regular", seed=1) == RegisterModel("regular", seed=1)
        assert hash(RegisterModel("regular", seed=1)) == hash(
            RegisterModel("regular", seed=1)
        )
        assert RegisterModel("regular") != RegisterModel("safe")


class TestStaleValue:
    def test_needs_two_writes(self):
        assert stale_value([]) is None
        assert stale_value(["a"]) is None

    def test_serves_previous_value(self):
        assert stale_value(["a", "b"]) == "a"
        assert stale_value(["a", "b", "c"]) == "b"


class TestSemanticsResolver:
    def test_atomic_never_weakens(self):
        resolver = RegisterModel("atomic").resolver()
        resolver.note_write("r", 0, None, "a")
        assert resolver.resolve_read("r", 1, "a") == "a"
        assert resolver.weak_reads == []

    def test_regular_serves_old_value_in_window(self):
        resolver = RegisterModel("regular", p_old=1.0).resolver()
        resolver.note_write("r", 0, None, "a")
        resolver.note_write("r", 0, "a", "b")
        assert resolver.resolve_read("r", 1, "b") == "a"
        assert resolver.weak_reads == [("r", 1, "a")]

    def test_read_your_writes(self):
        resolver = RegisterModel("regular", p_old=1.0).resolver()
        resolver.note_write("r", 0, None, "a")
        resolver.note_write("r", 3, "a", "b")
        assert resolver.resolve_read("r", 3, "b") == "b"

    def test_window_expires(self):
        resolver = RegisterModel("regular", p_old=1.0, window=1).resolver()
        resolver.note_write("r", 0, None, "a")
        resolver.note_write("r", 0, "a", "b")
        assert resolver.resolve_read("r", 1, "b") == "a"   # in window
        assert resolver.resolve_read("r", 1, "b") == "b"   # window spent

    def test_note_observed_protects_reader(self):
        resolver = RegisterModel("regular", p_old=1.0).resolver()
        resolver.note_write("r", 0, None, "a")
        resolver.note_observed("r", 1)
        assert resolver.resolve_read("r", 1, "a") == "a"

    def test_unwritten_cell_reads_current(self):
        resolver = RegisterModel("regular", p_old=1.0).resolver()
        assert resolver.resolve_read("r", 1, "init") == "init"

    def test_safe_serves_from_history_domain(self):
        resolver = RegisterModel("safe", p_old=1.0, seed=5).resolver()
        resolver.note_write("r", 0, "init", "a")
        resolver.note_write("r", 0, "a", "b")
        served = resolver.resolve_read("r", 1, "b", initial="init")
        assert served in ("init", "a", "b")

    def test_deterministic_for_seed(self):
        def run(seed):
            resolver = RegisterModel("safe", p_old=0.5, seed=seed).resolver()
            out = []
            for index in range(20):
                resolver.note_write("r", 0, index - 1, index)
                out.append(resolver.resolve_read("r", 1, index, initial=-1))
            return out

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestBoundObjects:
    def test_register_weak_read(self):
        register = AtomicRegister(name="r")
        register.bind_semantics(RegisterModel("regular", p_old=1.0).resolver())
        register.apply(Write(register, "a"), pid=0)
        register.apply(Write(register, "b"), pid=0)
        assert register.apply(Read(register), pid=1) == "a"
        assert register.value == "b"  # the weakening never corrupts state

    def test_max_register_noop_write_keeps_read_your_writes(self):
        """A no-op MaxWrite proves its writer saw the current maximum, so
        that writer's read must not be served anything older (in
        particular never the pre-first-write None)."""
        register = MaxRegister(name="m")
        register.bind_semantics(RegisterModel("regular", p_old=1.0).resolver())
        register.apply(MaxWrite(register, 5), pid=0)
        register.apply(MaxWrite(register, 3), pid=1)  # no-op: 3 < 5
        assert register.apply(MaxRead(register), pid=1) == 5

    def test_max_register_raising_write_opens_window(self):
        register = MaxRegister(name="m")
        register.bind_semantics(RegisterModel("regular", p_old=1.0).resolver())
        register.apply(MaxWrite(register, 1), pid=0)
        register.apply(MaxWrite(register, 2), pid=1)
        # pid 0's completed write of 1 predates pid 1's raise to 2: the
        # in-window weak read serves the pre-raise maximum, never None.
        assert register.apply(MaxRead(register), pid=0) == 1


def _write_read_programs(register):
    """Two-process program set: pid writes its input, then reads."""

    def program(ctx):
        yield Write(register, ("v", ctx.pid))
        return (yield Read(register))

    return [program, program]


class TestSemanticsInjector:
    def test_injector_binds_and_weakens(self):
        register = AtomicRegister(name="shared")
        injector = SemanticsInjector(RegisterModel("regular", p_old=1.0))
        # P0 writes, P1 writes, P0 reads (in P1's window -> weak), P1 reads.
        schedule = ExplicitSchedule([0, 1, 0, 1], n=2)
        result = run_programs(
            _write_read_programs(register), schedule, SeedTree(0),
            inputs=[0, 1], hooks=[injector],
        )
        assert result.outputs[0] == ("v", 0)  # served the pre-write value
        assert result.outputs[1] == ("v", 1)  # read-your-writes
        assert injector.resolver.weak_reads == [("shared", 0, ("v", 0))]


class TestStaleReadDelegation:
    """PR 2's stale-read fault must keep its historical behaviour, now
    routed through ``stale_value``."""

    def _run_with_fault(self):
        register = AtomicRegister(name="shared")
        plan = FaultPlan(
            register_faults=(
                RegisterFault("stale-read", obj_name="shared", op_index=0),
            ),
            allow_out_of_model=True,
        )
        schedule = ExplicitSchedule([0, 1, 1, 0], n=2)
        return run_programs(
            _write_read_programs(register), schedule, SeedTree(0),
            inputs=[0, 1], hooks=[plan.injector()],
        )

    def test_fault_serves_stale_value_rule(self):
        result = self._run_with_fault()
        # Writes land in order P0, P1; the faulted read (P1's, the first
        # read) serves history[-2] exactly as stale_value defines it.
        assert result.outputs[1] == stale_value([("v", 0), ("v", 1)])
        assert result.outputs[0] == ("v", 1)  # unfaulted read is atomic

    def test_fault_outcome_is_reproducible(self):
        first = self._run_with_fault()
        second = self._run_with_fault()
        assert first.outputs == second.outputs


class TestMonitorCalibration:
    """RegisterSemanticsMonitor under a declared weakening: silent on
    model-permitted reads, loud on undeclared violations."""

    def _run(self, monitor, injector_model=None):
        register = AtomicRegister(name="shared")
        hooks = []
        if injector_model is not None:
            hooks.append(SemanticsInjector(injector_model))
        hooks.append(monitor)
        schedule = ExplicitSchedule([0, 1, 0, 1], n=2)
        return run_programs(
            _write_read_programs(register), schedule, SeedTree(0),
            inputs=[0, 1], hooks=hooks,
        )

    def test_silent_under_declared_regular(self):
        model = RegisterModel("regular", p_old=1.0)
        monitor = RegisterSemanticsMonitor(strict=True, model=model)
        self._run(monitor, injector_model=model)
        assert monitor.ok

    def test_silent_under_declared_safe(self):
        model = RegisterModel("safe", p_old=1.0)
        monitor = RegisterSemanticsMonitor(strict=True, model=model)
        self._run(monitor, injector_model=model)
        assert monitor.ok

    def test_fires_on_undeclared_weakening(self):
        monitor = RegisterSemanticsMonitor(strict=False)
        self._run(monitor, injector_model=RegisterModel("regular", p_old=1.0))
        assert not monitor.ok
        assert "atomic" in monitor.violations[0].message

    def test_declared_atomic_is_undeclared(self):
        """Declaring atomic is the default contract, not a license."""
        monitor = RegisterSemanticsMonitor(
            strict=False, model=RegisterModel("atomic")
        )
        self._run(monitor, injector_model=RegisterModel("regular", p_old=1.0))
        assert not monitor.ok

    def test_declared_regular_still_catches_out_of_window_staleness(self):
        """A declared model licenses only in-window weakness; staleness
        past the window is a real violation."""
        model = RegisterModel("regular", p_old=1.0, window=1)
        monitor = RegisterSemanticsMonitor(strict=False, model=model)
        register = AtomicRegister(name="shared")

        def reader(ctx):
            yield Write(register, ("v", ctx.pid))
            first = yield Read(register)
            second = yield Read(register)
            return (first, second)

        plan = FaultPlan(
            register_faults=(
                RegisterFault("stale-read", obj_name="shared",
                              op_index=1, count=1),
            ),
            allow_out_of_model=True,
        )
        # P0 w, P1 w, P1 r (in window, licensed), P1 r (out of window,
        # faulted stale -> violation), P0 r, P0 r.
        schedule = ExplicitSchedule([0, 1, 1, 1, 0, 0], n=2)
        run_programs(
            [reader, reader], schedule, SeedTree(0), inputs=[0, 1],
            hooks=[plan.injector(), monitor],
        )
        assert not monitor.ok
