"""Unit tests for the discrete-event simulator."""

import random

import pytest

from repro.errors import (
    ScheduleExhaustedError,
    SimulationError,
    StepLimitExceededError,
)
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Read, Write
from repro.runtime.process import Process, ProcessContext
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import (
    ExplicitSchedule,
    LimitedSchedule,
    RandomSchedule,
    RoundRobinSchedule,
)
from repro.runtime.simulator import Simulator, run_programs


def write_then_read(register):
    def program(ctx):
        yield Write(register, ctx.pid)
        value = yield Read(register)
        return value

    return program


def make_processes(programs):
    return [
        Process(ProcessContext(pid=pid, n=len(programs), rng=random.Random(pid)), prog)
        for pid, prog in enumerate(programs)
    ]


class TestBasicExecution:
    def test_single_process_runs_to_completion(self):
        register = AtomicRegister("r")
        result = run_programs(
            [write_then_read(register)], RoundRobinSchedule(1), SeedTree(0)
        )
        assert result.completed
        assert result.outputs[0] == 0
        assert result.steps_by_pid[0] == 2

    def test_schedule_orders_operations(self):
        register = AtomicRegister("r")
        # 0 writes, 1 writes, then both read: both see 1's value.
        schedule = ExplicitSchedule([0, 1, 0, 1])
        result = run_programs(
            [write_then_read(register)] * 2, schedule, SeedTree(0)
        )
        assert result.outputs == {0: 1, 1: 1}

    def test_interleaving_changes_outcome(self):
        register = AtomicRegister("r")
        # 0 writes and reads before 1 moves: 0 sees itself.
        schedule = ExplicitSchedule([0, 0, 1, 1])
        result = run_programs(
            [write_then_read(register)] * 2, schedule, SeedTree(0)
        )
        assert result.outputs == {0: 0, 1: 1}

    def test_each_operation_costs_one_step(self):
        register = AtomicRegister("r")
        result = run_programs(
            [write_then_read(register)] * 3, RoundRobinSchedule(3), SeedTree(0)
        )
        assert result.steps_by_pid == {0: 2, 1: 2, 2: 2}
        assert result.total_steps == 6

    def test_finished_process_slots_are_free(self):
        register = AtomicRegister("r")
        # Process 0 finishes after 2 slots; the schedule keeps naming it,
        # but those slots are free no-ops not charged to anyone.
        schedule = ExplicitSchedule([0, 0, 0, 0, 0, 1, 1])
        result = run_programs(
            [write_then_read(register)] * 2, schedule, SeedTree(0)
        )
        assert result.completed
        assert result.steps_by_pid[0] == 2

    def test_run_stops_as_soon_as_all_finish(self):
        register = AtomicRegister("r")
        # Infinite schedule must not hang once everyone is done.
        result = run_programs(
            [write_then_read(register)] * 2, RoundRobinSchedule(2), SeedTree(0)
        )
        assert result.completed


class TestFailureModes:
    def test_exhausted_schedule_raises(self):
        register = AtomicRegister("r")
        with pytest.raises(ScheduleExhaustedError):
            run_programs(
                [write_then_read(register)] * 2,
                ExplicitSchedule([0], n=2),
                SeedTree(0),
            )

    def test_allow_partial_returns_partial_result(self):
        register = AtomicRegister("r")
        result = run_programs(
            [write_then_read(register)] * 2,
            ExplicitSchedule([0, 0], n=2),
            SeedTree(0),
            allow_partial=True,
        )
        assert not result.completed
        assert result.outputs == {0: 0}
        assert result.steps_by_pid[1] == 0

    def test_step_limit_trips(self):
        register = AtomicRegister("r")

        def forever(ctx):
            while True:
                yield Read(register)

        with pytest.raises(StepLimitExceededError):
            run_programs(
                [forever], RoundRobinSchedule(1), SeedTree(0), step_limit=100
            )

    def test_starvation_guard_with_allow_partial(self):
        register = AtomicRegister("r")

        def forever(ctx):
            while True:
                yield Read(register)

        def quick(ctx):
            yield Read(register)
            return "done"

        # pid 1 never appears in the schedule; pid 0 finishes, and the
        # infinite schedule then only names finished processes.
        from repro.runtime.scheduler import Schedule

        class OnlyZero(Schedule):
            n = 2

            def __iter__(self):
                while True:
                    yield 0

        result = run_programs(
            [quick, forever], OnlyZero(), SeedTree(0), allow_partial=True
        )
        assert not result.completed
        assert result.outputs == {0: "done"}

    def test_starvation_guard_raises_without_allow_partial(self):
        register = AtomicRegister("r")

        def forever(ctx):
            while True:
                yield Read(register)

        def quick(ctx):
            yield Read(register)
            return "done"

        from repro.runtime.scheduler import Schedule

        class OnlyZero(Schedule):
            n = 2

            def __iter__(self):
                while True:
                    yield 0

        with pytest.raises(ScheduleExhaustedError, match="starved"):
            run_programs([quick, forever], OnlyZero(), SeedTree(0))

    def test_mismatched_inputs_rejected(self):
        register = AtomicRegister("r")
        with pytest.raises(SimulationError):
            run_programs(
                [write_then_read(register)] * 2,
                RoundRobinSchedule(2),
                SeedTree(0),
                inputs=[1],
            )

    def test_bad_pids_rejected(self):
        register = AtomicRegister("r")
        processes = make_processes([write_then_read(register)] * 2)
        processes[1].context.pid = 5
        # Rebuild Process objects with a duplicate pid.
        bad = [
            Process(
                ProcessContext(pid=0, n=2, rng=random.Random(0)),
                write_then_read(register),
            ),
            Process(
                ProcessContext(pid=0, n=2, rng=random.Random(0)),
                write_then_read(register),
            ),
        ]
        with pytest.raises(SimulationError, match="pids"):
            Simulator(bad, RoundRobinSchedule(2))

    def test_schedule_too_small_rejected(self):
        register = AtomicRegister("r")
        processes = make_processes([write_then_read(register)] * 3)
        with pytest.raises(SimulationError, match="schedule covers"):
            Simulator(processes, RoundRobinSchedule(2))


class TestDeterminism:
    def test_same_seed_same_run(self):
        def randomized(ctx):
            register = shared
            if ctx.rng.random() < 0.5:
                yield Write(register, ctx.pid)
            value = yield Read(register)
            return value

        outcomes = []
        for _ in range(2):
            global shared
            shared = AtomicRegister("r")
            result = run_programs(
                [randomized] * 4, RandomSchedule(4, 77), SeedTree(5)
            )
            outcomes.append(result.outputs)
        assert outcomes[0] == outcomes[1]

    def test_trace_recording_optional(self):
        register = AtomicRegister("r")
        untraced = run_programs(
            [write_then_read(register)], RoundRobinSchedule(1), SeedTree(0)
        )
        assert untraced.trace is None
        register2 = AtomicRegister("r2")
        traced = run_programs(
            [write_then_read(register2)],
            RoundRobinSchedule(1),
            SeedTree(0),
            record_trace=True,
        )
        assert traced.trace is not None
        assert len(traced.trace) == 2


class TestHookFailureNotes:
    """A hook that raises gets pid/step/class context attached via add_note."""

    def run_with_hook(self, hook, n=2):
        register = AtomicRegister("r")
        return run_programs(
            [write_then_read(register)] * n,
            RoundRobinSchedule(n),
            SeedTree(0),
            hooks=[hook],
        )

    def test_before_step_failure_is_annotated(self):
        from repro.runtime.faults import StepHook

        class Exploding(StepHook):
            def before_step(self, pid, process_steps, global_steps, operation):
                if global_steps == 3:
                    raise RuntimeError("boom")
                return None

        with pytest.raises(RuntimeError, match="boom") as excinfo:
            self.run_with_hook(Exploding())
        notes = "".join(getattr(excinfo.value, "__notes__", []))
        assert "Exploding" in notes
        assert "before_step" in notes
        assert "pid=1" in notes
        assert "global step=3" in notes

    def test_after_step_failure_is_annotated(self):
        from repro.runtime.faults import StepHook

        class Exploding(StepHook):
            def after_step(self, pid, global_steps, operation, result):
                raise ValueError("observer crashed")

        with pytest.raises(ValueError, match="observer crashed") as excinfo:
            self.run_with_hook(Exploding())
        notes = "".join(getattr(excinfo.value, "__notes__", []))
        assert "Exploding.after_step" in notes
        assert "pid=0" in notes

    def test_on_finish_failure_is_annotated(self):
        from repro.runtime.faults import StepHook

        class Exploding(StepHook):
            def on_finish(self, pid, output):
                raise RuntimeError("finish hook died")

        with pytest.raises(RuntimeError, match="finish hook died") as excinfo:
            self.run_with_hook(Exploding())
        notes = "".join(getattr(excinfo.value, "__notes__", []))
        assert "Exploding.on_finish" in notes

    def test_intercept_failure_is_annotated(self):
        from repro.runtime.faults import StepHook

        class Exploding(StepHook):
            def intercept(self, pid, operation):
                raise RuntimeError("intercept died")

        with pytest.raises(RuntimeError, match="intercept died") as excinfo:
            self.run_with_hook(Exploding())
        notes = "".join(getattr(excinfo.value, "__notes__", []))
        assert "Exploding.intercept" in notes
        assert "pid=0" in notes

    def test_well_behaved_hooks_gain_no_notes(self):
        from repro.runtime.monitors import ValidityMonitor

        monitor = ValidityMonitor([0, 1], strict=False)
        result = self.run_with_hook(monitor)
        assert result.completed
        assert monitor.violations == []
