"""Unit tests for the tree-based bounded max register ([7], footnote 1)."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.bounded_max_register import BoundedMaxRegister
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import (
    ExplicitSchedule,
    RandomSchedule,
    RoundRobinSchedule,
)
from repro.runtime.simulator import run_programs


def run_solo(script):
    """Run a single-process program over a fresh register."""

    def program(ctx):
        result = yield from script(ctx)
        return result

    return run_programs([program], RoundRobinSchedule(1), SeedTree(0))


class TestSequentialSemantics:
    def test_initially_zero(self):
        register = BoundedMaxRegister(8)

        def script(ctx):
            value = yield from register.read_program(ctx)
            return value

        assert run_solo(script).outputs[0] == 0

    def test_write_then_read(self):
        register = BoundedMaxRegister(8)

        def script(ctx):
            yield from register.write_program(ctx, 5)
            value = yield from register.read_program(ctx)
            return value

        assert run_solo(script).outputs[0] == 5

    def test_smaller_write_ignored(self):
        register = BoundedMaxRegister(8)

        def script(ctx):
            yield from register.write_program(ctx, 6)
            yield from register.write_program(ctx, 2)
            value = yield from register.read_program(ctx)
            return value

        assert run_solo(script).outputs[0] == 6

    @pytest.mark.parametrize("capacity", [1, 2, 3, 7, 8, 16, 33])
    def test_every_value_representable(self, capacity):
        for value in range(capacity):
            register = BoundedMaxRegister(capacity)

            def script(ctx, value=value):
                yield from register.write_program(ctx, value)
                result = yield from register.read_program(ctx)
                return result

            assert run_solo(script).outputs[0] == value

    def test_sequence_of_writes_tracks_running_max(self):
        register = BoundedMaxRegister(32)
        writes = [3, 17, 4, 30, 12, 31, 0]

        def script(ctx):
            observed = []
            for value in writes:
                yield from register.write_program(ctx, value)
                current = yield from register.read_program(ctx)
                observed.append(current)
            return observed

        expected = []
        best = 0
        for value in writes:
            best = max(best, value)
            expected.append(best)
        assert run_solo(script).outputs[0] == expected

    def test_rejects_out_of_range(self):
        register = BoundedMaxRegister(4)

        def script(ctx):
            yield from register.write_program(ctx, 4)

        with pytest.raises(ConfigurationError):
            run_solo(script)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            BoundedMaxRegister(0)


class TestCostBounds:
    @pytest.mark.parametrize("capacity,depth", [(1, 0), (2, 1), (8, 3),
                                                (9, 4), (1024, 10)])
    def test_depth(self, capacity, depth):
        assert BoundedMaxRegister(capacity).depth == depth

    def test_step_bounds_hold_in_execution(self):
        register = BoundedMaxRegister(64)

        def writer(ctx):
            yield from register.write_program(ctx, 63)
            return "ok"

        def reader(ctx):
            value = yield from register.read_program(ctx)
            return value

        result = run_programs(
            [writer, reader], RoundRobinSchedule(2), SeedTree(1)
        )
        assert result.steps_by_pid[0] <= register.write_step_bound()
        assert result.steps_by_pid[1] <= register.read_step_bound()

    def test_logarithmic_growth(self):
        costs = [BoundedMaxRegister(2**k).write_step_bound()
                 for k in (2, 4, 8, 16)]
        # 2*depth: doubling the exponent doubles the cost — log k growth.
        assert costs == [4, 8, 16, 32]


class TestConcurrentSemantics:
    def test_concurrent_writers_reader_sees_plausible_max(self):
        for seed in range(20):
            register = BoundedMaxRegister(16)
            values = [3, 11, 7, 14]

            def writer(ctx):
                yield from register.write_program(ctx, values[ctx.pid])
                result = yield from register.read_program(ctx)
                return result

            result = run_programs(
                [writer] * 4, RandomSchedule(4, seed), SeedTree(seed)
            )
            for pid in range(4):
                observed = result.outputs[pid]
                # Own write completed before own read: observed >= own value;
                # and never exceeds the global max.
                assert values[pid] <= observed <= max(values), (seed, pid)

    def test_sequential_processes_monotone_reads(self):
        register = BoundedMaxRegister(16)

        def program(ctx):
            yield from register.write_program(ctx, 5 * ctx.pid + 1)
            value = yield from register.read_program(ctx)
            return value

        # Strictly sequential: each process's read happens after the
        # previous process's write, so reads are non-decreasing in pid.
        slots = [pid for pid in range(3) for _ in range(12)]
        result = run_programs(
            [program] * 3, ExplicitSchedule(slots, n=3), SeedTree(2)
        )
        reads = [result.outputs[pid] for pid in range(3)]
        assert reads == sorted(reads)
        assert reads[2] == 11

    def test_abandoned_low_write_is_safe(self):
        # Writer of a small value racing a large value must not resurrect
        # the small one.
        register = BoundedMaxRegister(8)

        def big(ctx):
            yield from register.write_program(ctx, 7)
            return "done"

        def small(ctx):
            yield from register.write_program(ctx, 1)
            value = yield from register.read_program(ctx)
            return value

        # big completes fully, then small runs: small's write must abandon
        # at the root switch and its read must return 7.
        slots = [0] * 10 + [1] * 10
        result = run_programs(
            [big, small], ExplicitSchedule(slots, n=2), SeedTree(3)
        )
        assert result.outputs[1] == 7
