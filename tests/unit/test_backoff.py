"""Unit tests for the shared retry backoff policy.

The policy is used by two layers (chunk retries in the parallel sweep
engine, per-session worker retries in the service), so its contract is
pinned here once: capped exponential ceilings, full-jitter draws inside
``[0, cap]``, deterministic seeded jitter streams, and loud validation.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.runtime.backoff import BackoffPolicy


class TestCaps:
    def test_ceiling_grows_geometrically_until_the_cap(self):
        policy = BackoffPolicy(base=0.25, multiplier=2.0, max_delay=30.0)
        assert policy.cap(0) == pytest.approx(0.25)
        assert policy.cap(1) == pytest.approx(0.5)
        assert policy.cap(4) == pytest.approx(4.0)
        assert policy.cap(7) == 30.0
        assert policy.cap(50) == 30.0

    def test_cap_smaller_than_base_wins_immediately(self):
        policy = BackoffPolicy(base=10.0, max_delay=1.0)
        assert policy.cap(0) == 1.0

    def test_negative_attempt_is_rejected(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy().cap(-1)


class TestJitter:
    def test_full_jitter_draws_inside_the_ceiling(self):
        policy = BackoffPolicy(base=0.5, max_delay=8.0)
        rng = random.Random(7)
        for attempt in range(10):
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert 0.0 <= delay <= policy.cap(attempt)

    def test_jitter_none_sleeps_exactly_the_ceiling(self):
        policy = BackoffPolicy(base=0.5, max_delay=8.0, jitter="none")
        rng = random.Random(7)
        assert [policy.delay(k, rng) for k in range(5)] == [
            policy.cap(k) for k in range(5)
        ]

    def test_missing_rng_falls_back_to_the_ceiling_not_global_random(self):
        policy = BackoffPolicy(base=0.5, max_delay=8.0)
        assert policy.delay(2) == policy.cap(2)

    def test_jitter_stream_is_deterministic_per_label(self):
        policy = BackoffPolicy(base=0.5, max_delay=8.0)
        draws = [
            policy.delay(k, BackoffPolicy.rng(3, "ctx", "a"))
            for k in range(4)
        ]
        again = [
            policy.delay(k, BackoffPolicy.rng(3, "ctx", "a"))
            for k in range(4)
        ]
        other = [
            policy.delay(k, BackoffPolicy.rng(3, "ctx", "b"))
            for k in range(4)
        ]
        assert draws == again
        assert draws != other

    def test_zero_base_never_sleeps(self):
        policy = BackoffPolicy(base=0.0)
        rng = random.Random(1)
        assert policy.delay(0, rng) == 0.0
        assert policy.delay(9, rng) == 0.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"base": -0.1},
        {"multiplier": 0.5},
        {"max_delay": -1.0},
        {"jitter": "equal"},
    ])
    def test_bad_parameters_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(**kwargs)

    def test_policy_is_hashable_and_frozen(self):
        policy = BackoffPolicy()
        assert policy == BackoffPolicy()
        assert hash(policy) == hash(BackoffPolicy())
        with pytest.raises(AttributeError):
            policy.base = 1.0
