"""Unit tests for Algorithm 3 (CIL conciliator with embedded sifter)."""

import pytest

import helpers
from repro.core.cil_embedded import CILEmbeddedConciliator, INNER_EPSILON
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.runtime.scheduler import RoundRobinSchedule


class TestConfiguration:
    def test_inner_defaults_to_quarter_epsilon_sifter(self):
        conciliator = CILEmbeddedConciliator(16)
        assert isinstance(conciliator.inner, SiftingConciliator)
        assert conciliator.inner.epsilon == INNER_EPSILON

    def test_inner_factory_override(self):
        conciliator = CILEmbeddedConciliator(
            8, inner_factory=lambda n: SnapshotConciliator(n, epsilon=0.25)
        )
        assert isinstance(conciliator.inner, SnapshotConciliator)

    def test_inner_n_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            CILEmbeddedConciliator(8, inner_factory=lambda n: SiftingConciliator(4))

    def test_default_write_probability(self):
        conciliator = CILEmbeddedConciliator(10)
        assert conciliator.write_probability == pytest.approx(1 / 40)


class TestExecution:
    def test_terminates_and_valid(self):
        n = 8
        for seed in range(8):
            conciliator = CILEmbeddedConciliator(n)
            result = helpers.run_conciliator_once(
                conciliator, list(range(n)), seed=seed
            )
            assert result.completed
            assert result.validity_holds({pid: pid for pid in range(n)})

    def test_worst_case_individual_steps(self):
        """Main loop runs at most inner_steps + 1 iterations of <= 2 ops,
        plus combine: 1 write + binary AC (<= 5) + 1 read."""
        n = 16
        for seed in range(10):
            conciliator = CILEmbeddedConciliator(n)
            bound = 2 * (conciliator.inner.step_bound() + 1) + 7
            result = helpers.run_conciliator_once(
                conciliator, list(range(n)), seed=seed
            )
            assert result.max_individual_steps <= bound

    def test_combine_fallback_never_fires(self):
        # Theorem 3's initialization argument: the out register a process is
        # directed to is always written before it reads.
        n = 8
        for seed in range(20):
            conciliator = CILEmbeddedConciliator(n)
            helpers.run_conciliator_once(conciliator, list(range(n)), seed=seed)
            assert conciliator.fallback_count == 0

    def test_exit_side_accounting(self):
        n = 8
        conciliator = CILEmbeddedConciliator(n)
        helpers.run_conciliator_once(conciliator, list(range(n)), seed=3)
        assert conciliator.proposal_exits + conciliator.inner_completions == n

    def test_write_probability_one_behaves_like_pure_cil(self):
        # Every process writes proposal at its first opportunity; the first
        # scheduled process's value is read by all later ones.
        n = 4
        conciliator = CILEmbeddedConciliator(n, write_probability=1.0)
        result = helpers.run_conciliator_once(
            conciliator, list(range(n)), schedule=RoundRobinSchedule(n), seed=4
        )
        assert result.completed
        assert conciliator.inner_completions == 0

    def test_write_probability_zero_reduces_to_inner_sifter(self):
        # Nobody ever writes proposal, so everyone finishes the sifter and
        # combine sees a single side.
        n = 8
        conciliator = CILEmbeddedConciliator(n, write_probability=0.0)
        result = helpers.run_conciliator_once(conciliator, list(range(n)), seed=5)
        assert conciliator.inner_completions == n
        assert conciliator.proposal_exits == 0
        assert result.completed

    def test_unanimous_inputs_always_agree(self):
        n = 6
        for seed in range(10):
            conciliator = CILEmbeddedConciliator(n)
            result = helpers.run_conciliator_once(conciliator, ["v"] * n, seed=seed)
            # Validity forces the unique input value everywhere.
            assert result.decided_values == {"v"}

    def test_agreement_rate_exceeds_theorem_floor(self):
        n = 8
        rate = helpers.agreement_rate(
            lambda: CILEmbeddedConciliator(n), list(range(n)), trials=80, seed=6
        )
        assert rate >= 1 / 8

    def test_snapshot_inner_variant_runs(self):
        # End of Section 4: the same embedding works for Algorithm 1.
        n = 8
        conciliator = CILEmbeddedConciliator(
            n, inner_factory=lambda count: SnapshotConciliator(count, epsilon=0.25)
        )
        result = helpers.run_conciliator_once(conciliator, list(range(n)), seed=7)
        assert result.completed
        assert result.validity_holds({pid: pid for pid in range(n)})

    def test_solo_process(self):
        conciliator = CILEmbeddedConciliator(1)
        result = helpers.run_conciliator_once(conciliator, ["only"], seed=8)
        assert result.outputs[0] == "only"
