"""Unit tests for the service-level fault vocabulary and chaos registry."""

import pytest

from repro.errors import ConfigurationError
from repro.fuzz.stacks import (
    SERVICE_CHAOS_STACKS,
    get_service_chaos,
    register_service_chaos,
    service_chaos_names,
    stack_names,
)
from repro.runtime.faults import (
    ResponseDelayFault,
    ServiceFaultPlan,
    ShardBlackoutFault,
    WorkerKillFault,
)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"shard": -1},
        {"shard": 0, "at": -0.5},
        {"shard": 0, "count": 0},
    ])
    def test_worker_kill_rejects_bad_fields(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkerKillFault(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"shard": -1, "start": 0.0, "duration": 1.0, "delay": 0.1},
        {"shard": 0, "start": -1.0, "duration": 1.0, "delay": 0.1},
        {"shard": 0, "start": 0.0, "duration": 0.0, "delay": 0.1},
        {"shard": 0, "start": 0.0, "duration": 1.0, "delay": 0.0},
    ])
    def test_response_delay_rejects_bad_fields(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResponseDelayFault(**kwargs)

    def test_blackout_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            ShardBlackoutFault(shard=0, start=0.0, duration=0.0)

    def test_empty_plan_properties(self):
        plan = ServiceFaultPlan()
        assert plan.is_empty
        assert plan.shards_touched == ()


class TestJsonRoundTrip:
    def test_round_trip_restores_the_plan_exactly(self):
        plan = ServiceFaultPlan(
            worker_kills=(WorkerKillFault(shard=0, at=1.5, count=2),),
            response_delays=(
                ResponseDelayFault(
                    shard=1, start=0.5, duration=2.0, delay=0.25
                ),
            ),
            blackouts=(ShardBlackoutFault(shard=2, start=3.0, duration=1.0),),
        )
        data = plan.to_json()
        assert data["version"] == 1
        assert ServiceFaultPlan.from_json(data) == plan
        assert plan.shards_touched == (0, 1, 2)

    def test_foreign_version_is_rejected(self):
        data = ServiceFaultPlan().to_json()
        data["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            ServiceFaultPlan.from_json(data)

    def test_non_object_is_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceFaultPlan.from_json([1, 2, 3])


class TestController:
    def test_blackout_window_fails_every_attempt(self):
        plan = ServiceFaultPlan(
            blackouts=(ShardBlackoutFault(shard=0, start=1.0, duration=2.0),),
        )
        controller = plan.controller()
        assert controller.attempt_failure(0, 0.5) is None
        assert controller.attempt_failure(0, 1.0) == "shard-blackout"
        assert controller.attempt_failure(0, 2.9) == "shard-blackout"
        assert controller.attempt_failure(0, 3.0) is None
        assert controller.attempt_failure(1, 1.5) is None  # other shard

    def test_worker_kills_are_consumed_one_attempt_at_a_time(self):
        plan = ServiceFaultPlan(
            worker_kills=(WorkerKillFault(shard=1, at=2.0, count=2),),
        )
        controller = plan.controller()
        assert controller.attempt_failure(1, 1.9) is None  # before `at`
        assert controller.attempt_failure(1, 2.0) == "worker-kill"
        assert controller.attempt_failure(1, 2.1) == "worker-kill"
        assert controller.attempt_failure(1, 2.2) is None  # budget spent

    def test_blackout_wins_over_worker_kill(self):
        plan = ServiceFaultPlan(
            worker_kills=(WorkerKillFault(shard=0, at=0.0, count=5),),
            blackouts=(ShardBlackoutFault(shard=0, start=0.0, duration=1.0),),
        )
        controller = plan.controller()
        assert controller.attempt_failure(0, 0.5) == "shard-blackout"
        # The kill budget was not consumed by the blacked-out attempt.
        assert controller._kills_left == [5]

    def test_response_delays_stack_when_windows_overlap(self):
        plan = ServiceFaultPlan(
            response_delays=(
                ResponseDelayFault(shard=0, start=0.0, duration=2.0,
                                   delay=0.1),
                ResponseDelayFault(shard=0, start=1.0, duration=2.0,
                                   delay=0.2),
            ),
        )
        controller = plan.controller()
        assert controller.extra_delay(0, 0.5) == pytest.approx(0.1)
        assert controller.extra_delay(0, 1.5) == pytest.approx(0.3)
        assert controller.extra_delay(0, 2.5) == pytest.approx(0.2)
        assert controller.extra_delay(1, 1.5) == 0.0

    def test_injected_audit_trail_records_delivered_faults(self):
        plan = ServiceFaultPlan(
            worker_kills=(WorkerKillFault(shard=0, at=0.0, count=1),),
        )
        controller = plan.controller()
        controller.attempt_failure(0, 0.25)
        assert controller.injected == [("worker-kill", 0, 0.25)]

    def test_controllers_are_independent_per_run(self):
        plan = ServiceFaultPlan(
            worker_kills=(WorkerKillFault(shard=0, at=0.0, count=1),),
        )
        first = plan.controller()
        assert first.attempt_failure(0, 0.0) == "worker-kill"
        # A fresh controller has a fresh kill budget.
        assert plan.controller().attempt_failure(0, 0.0) == "worker-kill"


class TestChaosRegistry:
    def test_stock_stacks_are_registered(self):
        assert "baseline" in service_chaos_names()
        assert "brownout" in service_chaos_names()
        assert not get_service_chaos("baseline").is_empty

    def test_unknown_name_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown service"):
            get_service_chaos("no-such-stack")

    def test_duplicate_registration_is_refused(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_service_chaos("baseline", ServiceFaultPlan())

    def test_service_stacks_do_not_leak_into_the_fuzz_draw(self):
        """The fuzzer's seeded stack draw indexes stack_names(); service
        chaos names must live in their own registry so the committed
        corpus does not shift."""
        fuzz_names = set(stack_names(include_planted=True))
        assert not fuzz_names & set(SERVICE_CHAOS_STACKS)
