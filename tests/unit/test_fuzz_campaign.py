"""Unit tests for fuzz campaigns: determinism, budgets, corpus wiring."""

import json

import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.fuzz import FuzzConfig, load_corpus, run_fuzz_campaign
from repro.fuzz.campaign import campaign_run_key


def report_fingerprint(report):
    """Everything except wall-clock timing."""
    data = report.to_json()
    data.pop("elapsed_seconds")
    return json.dumps(data, sort_keys=True)


HONEST = FuzzConfig(stacks=("sifting", "flag-ac"), max_n=3)
PLANTED = FuzzConfig(stacks=("planted-validity",), max_n=3)


class TestCampaignValidation:
    def test_exactly_one_sizing_mode(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            run_fuzz_campaign(1, HONEST)
        with pytest.raises(ConfigurationError, match="exactly one"):
            run_fuzz_campaign(1, HONEST, trials=5, time_budget=1.0)

    def test_checkpoint_requires_fixed_trials(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fixed trials"):
            run_fuzz_campaign(1, HONEST, time_budget=0.1,
                              checkpoint_path=str(tmp_path / "j.ckpt"))

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ConfigurationError, match="resume"):
            run_fuzz_campaign(1, HONEST, trials=2, resume=True)

    def test_existing_journal_needs_explicit_resume(self, tmp_path):
        journal = tmp_path / "j.ckpt"
        run_fuzz_campaign(1, HONEST, trials=4, checkpoint_path=str(journal))
        with pytest.raises(CheckpointError, match="already exists"):
            run_fuzz_campaign(1, HONEST, trials=4,
                              checkpoint_path=str(journal))

    def test_unknown_stack_fails_fast(self):
        with pytest.raises(ConfigurationError, match="unknown stack"):
            run_fuzz_campaign(1, FuzzConfig(stacks=("nope",)), trials=1)


class TestCampaignDeterminism:
    def test_worker_count_does_not_change_results(self):
        serial = run_fuzz_campaign(5, HONEST, trials=16, workers=1)
        parallel = run_fuzz_campaign(5, HONEST, trials=16, workers=2,
                                     chunk_size=3)
        assert report_fingerprint(serial) == report_fingerprint(parallel)

    def test_checkpoint_resume_is_bit_identical(self, tmp_path):
        journal = tmp_path / "j.ckpt"
        baseline = run_fuzz_campaign(9, HONEST, trials=12)
        run_fuzz_campaign(9, HONEST, trials=12, checkpoint_path=str(journal))
        resumed = run_fuzz_campaign(9, HONEST, trials=12,
                                    checkpoint_path=str(journal), resume=True)
        assert report_fingerprint(resumed) == report_fingerprint(baseline)

    def test_corpus_bytes_are_stable_across_reruns(self, tmp_path):
        first_dir, second_dir = tmp_path / "a", tmp_path / "b"
        for directory in (first_dir, second_dir):
            run_fuzz_campaign(
                13, PLANTED, trials=10, corpus_dir=directory,
                shrink_max_reproductions=60,
            )
        first = {path.name: path.read_bytes()
                 for path, _ in load_corpus(first_dir)}
        second = {path.name: path.read_bytes()
                  for path, _ in load_corpus(second_dir)}
        assert first and first == second

    def test_run_key_pins_the_configuration(self):
        key = campaign_run_key(3, 10, HONEST)
        assert key == campaign_run_key(3, 10, HONEST)
        assert key != campaign_run_key(4, 10, HONEST)
        assert key != campaign_run_key(3, 11, HONEST)
        assert key != campaign_run_key(3, 10, PLANTED)


class TestCampaignBehaviour:
    def test_honest_campaign_is_ok(self):
        report = run_fuzz_campaign(2, HONEST, trials=20)
        assert report.ok
        assert report.trials == 20
        assert not report.findings
        assert report.statuses.get("ok", 0) > 0

    def test_planted_campaign_finds_and_saves(self, tmp_path):
        report = run_fuzz_campaign(
            2, PLANTED, trials=10, corpus_dir=tmp_path,
            shrink_max_reproductions=60,
        )
        assert not report.ok
        assert any(f.status == "violation" for f in report.findings)
        assert report.corpus_files
        for finding in report.findings:
            assert "validity" in finding.oracles
            # The shrunk reproducer is never bigger in process count.
            assert finding.shrunk.n <= finding.scenario.n

    def test_corpus_cap_per_bug(self, tmp_path):
        report = run_fuzz_campaign(
            2, PLANTED, trials=12, corpus_dir=tmp_path,
            shrink=False, corpus_per_bug=2,
        )
        saved = [f for f in report.findings if f.corpus_file]
        assert len(saved) == 2
        assert len(list(tmp_path.glob("case-*.json"))) == 2

    def test_no_shrink_records_scenarios_verbatim(self, tmp_path):
        report = run_fuzz_campaign(
            2, PLANTED, trials=6, corpus_dir=tmp_path, shrink=False,
        )
        for finding in report.findings:
            assert finding.shrunk == finding.scenario

    def test_time_budget_mode_runs_and_stops(self):
        report = run_fuzz_campaign(2, HONEST, time_budget=0.5, workers=1)
        assert report.stopped_by == "time-budget"
        assert report.trials > 0

    def test_report_json_is_serializable(self):
        report = run_fuzz_campaign(2, HONEST, trials=4)
        parsed = json.loads(json.dumps(report.to_json()))
        assert parsed["trials"] == 4
        assert parsed["ok"] is True
