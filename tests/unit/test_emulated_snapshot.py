"""Unit tests for the register-emulated wait-free snapshot."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.emulated_snapshot import EmulatedSnapshot, SnapshotCell
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import (
    ExplicitSchedule,
    RandomSchedule,
    RoundRobinSchedule,
)
from repro.runtime.simulator import run_programs


def update_then_scan(snapshot, value_of=lambda ctx: ctx.pid):
    def program(ctx):
        yield from snapshot.update_program(ctx, value_of(ctx))
        view = yield from snapshot.scan_program(ctx)
        return view

    return program


class TestSequentialBehaviour:
    def test_solo_update_and_scan(self):
        snapshot = EmulatedSnapshot(3)

        def program(ctx):
            yield from snapshot.update_program(ctx, "mine")
            view = yield from snapshot.scan_program(ctx)
            return view

        result = run_programs(
            [program] + [_idle_program] * 2, RoundRobinSchedule(3), SeedTree(0)
        )
        assert result.outputs[0] == ("mine", None, None)

    def test_scan_of_empty_snapshot(self):
        snapshot = EmulatedSnapshot(2)

        def program(ctx):
            view = yield from snapshot.scan_program(ctx)
            return view

        result = run_programs(
            [program, _idle_program], RoundRobinSchedule(2), SeedTree(0)
        )
        assert result.outputs[0] == (None, None)

    def test_sequential_updates_visible_in_order(self):
        snapshot = EmulatedSnapshot(2)
        programs = [update_then_scan(snapshot)] * 2
        # Process 0 runs to completion, then process 1.
        slots = [0] * 50 + [1] * 50
        result = run_programs(
            programs, ExplicitSchedule(slots, n=2), SeedTree(1)
        )
        assert result.outputs[0] == (0, None)
        assert result.outputs[1] == (0, 1)

    def test_second_update_overwrites(self):
        snapshot = EmulatedSnapshot(1)

        def program(ctx):
            yield from snapshot.update_program(ctx, "first")
            yield from snapshot.update_program(ctx, "second")
            view = yield from snapshot.scan_program(ctx)
            return view

        result = run_programs([program], RoundRobinSchedule(1), SeedTree(0))
        assert result.outputs[0] == ("second",)


class TestConcurrentBehaviour:
    def test_all_values_present_after_everyone_scans(self):
        n = 4
        snapshot = EmulatedSnapshot(n)
        programs = [update_then_scan(snapshot)] * n
        result = run_programs(
            programs, RandomSchedule(n, 42), SeedTree(2)
        )
        # Everyone's own component is at least present in their view (their
        # update completed before their scan began).
        for pid in range(n):
            assert result.outputs[pid][pid] == pid

    def test_views_are_totally_ordered_by_information(self):
        # Atomic snapshots have totally ordered views.  With one update per
        # process, "ordered" means the non-None supports form a chain.
        n = 5
        snapshot = EmulatedSnapshot(n)
        programs = [update_then_scan(snapshot)] * n
        for seed in range(15):
            fresh = EmulatedSnapshot(n)
            programs = [update_then_scan(fresh)] * n
            result = run_programs(
                programs, RandomSchedule(n, seed), SeedTree(seed)
            )
            supports = sorted(
                (frozenset(
                    pid for pid in range(n)
                    if result.outputs[scanner][pid] is not None
                ) for scanner in range(n)),
                key=len,
            )
            for smaller, larger in zip(supports, supports[1:]):
                assert smaller <= larger, (seed, supports)

    def test_borrowed_scan_path_is_exercised(self):
        # A scanner interleaved with two complete updates of the same
        # component must borrow an embedded view.
        snapshot = EmulatedSnapshot(2)

        def updater(ctx):
            yield from snapshot.update_program(ctx, "u1")
            yield from snapshot.update_program(ctx, "u2")
            yield from snapshot.update_program(ctx, "u3")
            return "done"

        def scanner(ctx):
            view = yield from snapshot.scan_program(ctx)
            return view

        # Interleave: scanner does its first collect read, then the updater
        # performs complete updates between every scanner step.
        slots = []
        for _ in range(40):
            slots.extend([1, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        result = run_programs(
            [updater, scanner],
            ExplicitSchedule(slots, n=2),
            SeedTree(3),
            allow_partial=True,
        )
        if 1 in result.outputs:
            view = result.outputs[1]
            assert view[0] in (None, "u1", "u2", "u3")

    def test_step_bounds_respected(self):
        n = 4
        snapshot = EmulatedSnapshot(n)
        programs = [update_then_scan(snapshot)] * n
        result = run_programs(programs, RandomSchedule(n, 7), SeedTree(4))
        bound = snapshot.update_step_bound() + snapshot.scan_step_bound()
        assert result.max_individual_steps <= bound

    def test_instrumentation_counts(self):
        n = 3
        snapshot = EmulatedSnapshot(n)
        programs = [update_then_scan(snapshot)] * n
        run_programs(programs, RandomSchedule(n, 5), SeedTree(5))
        # Each update embeds a scan and each process scans once more.
        assert snapshot.clean_scans + snapshot.borrowed_scans == 2 * n


class TestValidation:
    def test_rejects_zero_components(self):
        with pytest.raises(ConfigurationError):
            EmulatedSnapshot(0)

    def test_cell_is_frozen(self):
        cell = SnapshotCell(seq=0, value=1, embedded_view=())
        with pytest.raises(Exception):
            cell.seq = 1


def _idle_program(ctx):
    return None
    yield  # pragma: no cover
