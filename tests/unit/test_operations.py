"""Unit tests for operation request types."""

import dataclasses

import pytest

from repro.memory.register import AtomicRegister
from repro.runtime.operations import (
    MaxRead,
    MaxWrite,
    Read,
    Scan,
    Update,
    Write,
)


class TestOperationKinds:
    def test_kind_names(self):
        register = AtomicRegister("r")
        assert Read(register).kind == "read"
        assert Write(register, 1).kind == "write"
        assert Update(register, 1).kind == "update"
        assert Scan(register).kind == "scan"
        assert MaxRead(register).kind == "maxread"
        assert MaxWrite(register, 1).kind == "maxwrite"

    def test_operations_are_frozen(self):
        operation = Write(AtomicRegister("r"), 5)
        with pytest.raises(dataclasses.FrozenInstanceError):
            operation.value = 6

    def test_write_carries_value(self):
        assert Write(AtomicRegister("r"), "hello").value == "hello"

    def test_default_value_is_none(self):
        assert Write(AtomicRegister("r")).value is None

    def test_operation_references_target(self):
        register = AtomicRegister("target")
        assert Read(register).obj is register
