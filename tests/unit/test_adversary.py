"""Unit tests for the intermediate-strength adversary ladder.

Covers the AdversarySpec value object, the LateAdversary's delayed view
and clamping, the NoisySchedulerAdversary's perturbation behaviour at
both noise endpoints, and AdaptiveSpec's JSON/eq/hash parity with the
other schedule-producing specs.
"""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.adaptive import AdaptiveSpec, make_adaptive
from repro.runtime.adversary import (
    ADVERSARY_KINDS,
    ADVERSARY_LADDER,
    AdversarySpec,
    LateAdversary,
    NoisySchedulerAdversary,
    make_adversary,
)


class _FakeView:
    """A minimal AdversaryView over a static unfinished set."""

    def __init__(self, pids, steps=None):
        self._pids = sorted(pids)
        self._steps = steps or {pid: 0 for pid in self._pids}

    def unfinished(self):
        return list(self._pids)

    def pending_operation(self, pid):
        return None

    def pending_kind(self, pid):
        return None

    def steps_taken(self, pid):
        return self._steps[pid]


class _MaxPidStrategy:
    """Deterministic inner strategy: always picks the largest visible pid."""

    def choose(self, view):
        return max(view.unfinished())


class TestLadderConstants:
    def test_ladder_ordering(self):
        assert ADVERSARY_LADDER == ("oblivious", "noisy", "late", "adaptive")

    def test_spec_kinds_are_the_middle_rungs(self):
        assert set(ADVERSARY_KINDS) == {"noisy", "late"}


class TestAdversarySpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            AdversarySpec("clairvoyant")

    def test_rejects_unknown_inner(self):
        with pytest.raises(ConfigurationError):
            AdversarySpec("late", inner="nope")

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            AdversarySpec("late", delay=-1)

    def test_rejects_bad_noise(self):
        with pytest.raises(ConfigurationError):
            AdversarySpec("noisy", noise=1.5)

    def test_json_round_trip(self):
        spec = AdversarySpec("late", inner="pending-reads", seed=7, delay=2)
        assert AdversarySpec.from_json(spec.to_json()) == spec

    def test_json_version_rejected(self):
        data = AdversarySpec("noisy").to_json()
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            AdversarySpec.from_json(data)

    def test_hashable_value_object(self):
        assert AdversarySpec("late", delay=2) == AdversarySpec("late", delay=2)
        assert hash(AdversarySpec("late", delay=2)) == hash(
            AdversarySpec("late", delay=2)
        )
        assert AdversarySpec("late") != AdversarySpec("noisy")

    def test_describe_names_the_strength(self):
        assert AdversarySpec("late", inner="sift-killer",
                             delay=3).describe() == "late-3(sift-killer)"
        assert AdversarySpec("noisy", inner="pending-reads",
                             noise=0.8).describe() == "noisy-0.8(pending-reads)"

    def test_build_types(self):
        assert isinstance(AdversarySpec("late").build(), LateAdversary)
        assert isinstance(AdversarySpec("noisy").build(),
                          NoisySchedulerAdversary)


class TestMakeAdversary:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_adversary("clairvoyant")

    def test_rejects_unknown_inner(self):
        with pytest.raises(ConfigurationError):
            make_adversary("late", inner="nope")


class TestNoisyScheduler:
    def test_zero_noise_is_the_inner_strategy(self):
        adversary = NoisySchedulerAdversary(_MaxPidStrategy(), noise=0.0)
        picks = [adversary.choose(_FakeView([0, 1, 2])) for _ in range(10)]
        assert picks == [2] * 10
        assert adversary.perturbed == 0

    def test_full_noise_never_consults_inner(self):
        class Exploder:
            def choose(self, view):
                raise AssertionError("inner must not be consulted")

        adversary = NoisySchedulerAdversary(Exploder(), noise=1.0, seed=3)
        picks = [adversary.choose(_FakeView([0, 1, 2])) for _ in range(20)]
        assert adversary.perturbed == 20
        assert set(picks) <= {0, 1, 2}

    def test_rejects_bad_noise(self):
        with pytest.raises(ConfigurationError):
            NoisySchedulerAdversary(_MaxPidStrategy(), noise=-0.1)

    def test_deterministic_for_seed(self):
        def run(seed):
            adversary = NoisySchedulerAdversary(
                _MaxPidStrategy(), noise=0.5, seed=seed
            )
            return [adversary.choose(_FakeView([0, 1, 2, 3]))
                    for _ in range(30)]

        assert run(11) == run(11)


class TestLateAdversary:
    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            LateAdversary(_MaxPidStrategy(), delay=-1)

    def test_zero_delay_is_fully_adaptive(self):
        adversary = LateAdversary(_MaxPidStrategy(), delay=0)
        assert adversary.choose(_FakeView([0, 1, 2])) == 2
        assert adversary.clamped == 0

    def test_warmup_is_oblivious(self):
        """Until delay snapshots accumulate, the inner strategy has seen
        nothing it may act on: picks are seeded-uniform, not inner."""

        class Exploder:
            def choose(self, view):
                raise AssertionError("inner consulted before history built")

        adversary = LateAdversary(Exploder(), delay=2, seed=5)
        for _ in range(2):
            pick = adversary.choose(_FakeView([0, 1, 2]))
            assert pick in (0, 1, 2)

    def test_consults_inner_against_stale_view(self):
        adversary = LateAdversary(_MaxPidStrategy(), delay=1)
        adversary.choose(_FakeView([0, 1, 2]))       # snapshot {0,1,2}
        # Inner sees the old view {0,1,2}; its pick (2) is still runnable.
        assert adversary.choose(_FakeView([0, 1, 2])) == 2
        assert adversary.clamped == 0

    def test_clamps_vanished_pick(self):
        adversary = LateAdversary(_MaxPidStrategy(), delay=1, seed=4)
        adversary.choose(_FakeView([0, 1, 2]))       # snapshot {0,1,2}
        # Inner picks 2 from the stale view, but 2 has since finished.
        pick = adversary.choose(_FakeView([0, 1]))
        assert pick in (0, 1)
        assert adversary.clamped == 1

    def test_deterministic_for_seed(self):
        def run(seed):
            adversary = LateAdversary(
                make_adaptive("random-adaptive", seed), delay=2, seed=seed
            )
            return [adversary.choose(_FakeView([0, 1, 2, 3]))
                    for _ in range(30)]

        assert run(9) == run(9)


class TestAdaptiveSpecParity:
    """AdaptiveSpec must keep JSON round-trip + eq/hash parity with
    ScheduleSpec/FaultPlan/AdversarySpec, so ladder scenarios that pin the
    adaptive endpoint stay corpus-storable."""

    def test_json_round_trip(self):
        spec = AdaptiveSpec("sift-killer", seed=13)
        assert AdaptiveSpec.from_json(spec.to_json()) == spec

    def test_json_version_rejected(self):
        data = AdaptiveSpec("pending-reads").to_json()
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            AdaptiveSpec.from_json(data)

    def test_hashable_value_object(self):
        assert AdaptiveSpec("sift-killer", seed=1) == AdaptiveSpec(
            "sift-killer", seed=1
        )
        assert hash(AdaptiveSpec("sift-killer", seed=1)) == hash(
            AdaptiveSpec("sift-killer", seed=1)
        )
        assert AdaptiveSpec("sift-killer") != AdaptiveSpec("pending-reads")
