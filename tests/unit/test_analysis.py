"""Unit tests for the analysis package (stats, tables, theory, runners)."""

import math

import pytest

from repro.analysis.experiments import (
    decay_series,
    merge_conciliator_stats,
    merge_consensus_stats,
    run_conciliator_trials,
    run_consensus_trials,
    trial_seed_tree,
)
from repro.runtime.rng import SeedTree
from repro.analysis.stats import (
    SampleSummary,
    mean,
    sample_std,
    summarize,
    fisher_exact_two_sided,
    wilson_interval,
)
from repro.analysis.tables import format_float, render_table
from repro.analysis.theory import (
    cil_total_steps_bound,
    doubling_cil_step_bound,
    harmonic,
    markov_disagreement_bound,
    sifting_decay_bound,
    sifting_step_count,
    snapshot_decay_bound,
    snapshot_step_count,
)
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.core.consensus import register_consensus
from repro.errors import ConfigurationError


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean([])

    def test_sample_std(self):
        assert sample_std([2.0, 4.0]) == pytest.approx(math.sqrt(2.0))
        assert sample_std([5.0]) == 0.0

    def test_wilson_interval_contains_proportion(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high
        assert 0.0 <= low <= high <= 1.0

    def test_wilson_interval_extremes(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        low, high = wilson_interval(50, 50)
        assert high == 1.0

    def test_wilson_narrower_with_more_trials(self):
        small = wilson_interval(8, 10)
        large = wilson_interval(800, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_wilson_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)

    def test_summarize(self):
        summary = summarize([1.0, 3.0])
        assert summary == SampleSummary(2, 2.0, sample_std([1.0, 3.0]), 1.0, 3.0)
        assert "mean=2.000" in str(summary)


class TestWilsonEdges:
    def test_zero_successes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        assert 0.0 < high < 0.3  # still informative, not [0, 1]

    def test_all_successes(self):
        low, high = wilson_interval(20, 20)
        assert high == 1.0
        assert 0.7 < low < 1.0

    def test_single_trial(self):
        low, high = wilson_interval(0, 1)
        assert low == 0.0
        assert high < 1.0
        low, high = wilson_interval(1, 1)
        assert low > 0.0
        assert high == 1.0

    def test_single_trial_intervals_are_symmetric(self):
        fail_low, fail_high = wilson_interval(0, 1)
        win_low, win_high = wilson_interval(1, 1)
        assert fail_high == pytest.approx(1.0 - win_low)
        assert fail_low == pytest.approx(1.0 - win_high)


class TestSampleSummaryMerge:
    def test_merge_matches_pooled_summary(self):
        left, right = [1.0, 2.0, 7.0], [4.0, 4.0]
        merged = summarize(left).merge(summarize(right))
        pooled = summarize(left + right)
        assert merged.count == pooled.count
        assert merged.minimum == pooled.minimum
        assert merged.maximum == pooled.maximum
        assert merged.mean == pytest.approx(pooled.mean)
        assert merged.std == pytest.approx(pooled.std)

    def test_merge_is_associative(self):
        a, b, c = summarize([1.0, 5.0]), summarize([2.0]), summarize([8.0, 0.5])
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.count == right.count == 5
        assert left.minimum == right.minimum
        assert left.maximum == right.maximum
        assert left.mean == pytest.approx(right.mean)
        assert left.std == pytest.approx(right.std)

    def test_merge_is_commutative(self):
        a, b = summarize([1.0, 2.0, 3.0]), summarize([10.0])
        ab, ba = a.merge(b), b.merge(a)
        assert ab.count == ba.count
        assert ab.mean == pytest.approx(ba.mean)
        assert ab.std == pytest.approx(ba.std)

    def test_merge_singletons(self):
        merged = summarize([3.0]).merge(summarize([5.0]))
        assert merged == summarize([3.0, 5.0])

    def test_merge_rejects_empty(self):
        good = summarize([1.0])
        hollow = SampleSummary(0, 0.0, 0.0, 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            good.merge(hollow)
        with pytest.raises(ConfigurationError):
            hollow.merge(good)

    def test_merge_rejects_non_finite_moments(self):
        good = summarize([1.0, 2.0])
        for poisoned in (
            SampleSummary(3, float("nan"), 0.0, 0.0, 1.0),
            SampleSummary(3, 1.0, float("inf"), 0.0, 1.0),
            SampleSummary(3, 1.0, 0.0, float("-inf"), 1.0),
        ):
            with pytest.raises(ConfigurationError, match="non-finite"):
                good.merge(poisoned)
            with pytest.raises(ConfigurationError, match="non-finite"):
                poisoned.merge(good)


class TestTables:
    def test_format_float(self):
        assert format_float(2.0) == "2"
        assert format_float(2.5) == "2.500"
        assert format_float("x") == "x"
        assert format_float(True) == "True"
        assert format_float(float("nan")) == "nan"

    def test_render_alignment(self):
        table = render_table(["col", "value"], [[1, 2.5], [100, 3]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_title(self):
        assert render_table(["a"], [[1]], title="T").startswith("T\n")


class TestTheory:
    def test_harmonic(self):
        assert harmonic(1) == 1.0
        assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)
        assert harmonic(0) == 0.0

    def test_harmonic_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            harmonic(-1)

    def test_snapshot_decay_bound_is_decreasing(self):
        bounds = snapshot_decay_bound(1000, 6)
        assert all(bounds[i] > bounds[i + 1] for i in range(len(bounds) - 1))

    def test_snapshot_decay_reaches_below_half(self):
        # Theorem 1: after log* n + log(1/eps) + 1 rounds, bound <= eps/2.
        from repro.core.rounds import snapshot_rounds

        n, eps = 1000, 0.5
        bounds = snapshot_decay_bound(n, snapshot_rounds(n, eps))
        assert bounds[-1] <= eps / 2

    def test_sifting_decay_bound_matches_lemmas(self):
        from repro.core.probabilities import sift_x
        from repro.core.rounds import sifting_switch_round

        n = 256
        switch = sifting_switch_round(n)
        bounds = sifting_decay_bound(n, switch + 3)
        assert bounds[switch - 1] == pytest.approx(sift_x(switch, n))
        # After the switch: multiply by 3/4 each round.
        assert bounds[switch] == pytest.approx(bounds[switch - 1] * 0.75)

    def test_step_counts_match_round_formulas(self):
        from repro.core.rounds import sifting_rounds, snapshot_rounds

        assert snapshot_step_count(64, 0.5) == 2 * snapshot_rounds(64, 0.5)
        assert sifting_step_count(64, 0.5) == sifting_rounds(64, 0.5)

    def test_doubling_cil_bound_logarithmic(self):
        assert doubling_cil_step_bound(1024) == 2 * (11 + 1)

    def test_cil_total_bound_linear(self):
        assert cil_total_steps_bound(10) == 200.0
        assert cil_total_steps_bound(20) == 2 * cil_total_steps_bound(10)
        with pytest.raises(ConfigurationError):
            cil_total_steps_bound(0)

    def test_markov_bound(self):
        assert markov_disagreement_bound(0.25) == 0.25
        assert markov_disagreement_bound(3.0) == 1.0
        with pytest.raises(ConfigurationError):
            markov_disagreement_bound(-0.1)

    def test_predicted_attribution_covers_all_algorithms(self):
        from repro.analysis.theory import (
            ATTRIBUTION_ALGORITHMS,
            cil_individual_step_bound,
            cil_inner_rounds,
            predicted_attribution,
        )
        from repro.core.rounds import sifting_rounds, snapshot_rounds

        n = 64
        snap = predicted_attribution("snapshot", n)
        assert snap["relation"] == "exact"
        assert snap["rounds"] == snapshot_rounds(n, 0.5)
        assert snap["individual_steps"] == 2 * snap["rounds"]

        sift = predicted_attribution("sifting", n)
        assert sift["relation"] == "exact"
        assert sift["rounds"] == sifting_rounds(n, 0.5)
        assert sift["individual_steps"] == sift["rounds"]

        cil = predicted_attribution("cil-embedded", n)
        assert cil["relation"] == "upper-bound"
        assert cil["epsilon"] == 0.25  # forced to the inner epsilon
        assert cil["rounds"] == cil_inner_rounds(n) \
            == sifting_rounds(n, 0.25)
        assert cil["individual_steps"] == cil_individual_step_bound(n)

        assert set(ATTRIBUTION_ALGORITHMS) \
            == {"snapshot", "sifting", "cil-embedded"}
        with pytest.raises(ConfigurationError, match="no attribution"):
            predicted_attribution("magic", n)


class TestRunners:
    def test_conciliator_trials_aggregate(self):
        stats = run_conciliator_trials(
            lambda: SiftingConciliator(8),
            list(range(8)),
            trials=10,
            master_seed=1,
        )
        assert stats.trials == 10
        assert 0.0 <= stats.agreement_rate <= 1.0
        assert stats.validity_failures == 0
        low, high = stats.agreement_interval
        assert low <= stats.agreement_rate <= high

    def test_conciliator_trials_exact_steps(self):
        conciliator_rounds = SiftingConciliator(8).rounds
        stats = run_conciliator_trials(
            lambda: SiftingConciliator(8),
            list(range(8)),
            trials=5,
            master_seed=2,
        )
        assert stats.individual_steps.maximum == conciliator_rounds

    def test_conciliator_trials_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            run_conciliator_trials(
                lambda: SiftingConciliator(2), [0, 1], trials=0
            )

    def test_crash_family_defaults_to_partial(self):
        stats = run_conciliator_trials(
            lambda: SiftingConciliator(4),
            list(range(4)),
            schedule_family="crash-half",
            trials=5,
            master_seed=3,
        )
        assert stats.validity_failures == 0

    def test_consensus_trials_safety(self):
        stats = run_consensus_trials(
            lambda: register_consensus(4, value_domain=range(4)),
            list(range(4)),
            trials=8,
            master_seed=4,
        )
        assert stats.all_safe
        assert stats.phases.mean >= 1.0

    def test_decay_series_shape(self):
        series = decay_series(
            lambda: SnapshotConciliator(16),
            list(range(16)),
            trials=5,
            master_seed=5,
        )
        assert len(series) == SnapshotConciliator(16).rounds
        assert series[0] <= 16
        assert series[-1] >= 1.0

    def test_trial_seed_tree_matches_serial_derivation(self):
        assert trial_seed_tree(7, 3) == SeedTree(7).child("trial-3")


class TestSweepValidation:
    """trials > 0 and n > 1 are rejected loudly, never degenerate stats."""

    def test_conciliator_rejects_nonpositive_trials(self):
        for trials in (0, -5):
            with pytest.raises(ConfigurationError, match="trials"):
                run_conciliator_trials(
                    lambda: SiftingConciliator(2), [0, 1], trials=trials
                )

    def test_conciliator_rejects_degenerate_n(self):
        for inputs in ([], [0]):
            with pytest.raises(ConfigurationError, match="at least 2"):
                run_conciliator_trials(
                    lambda: SiftingConciliator(2), inputs, trials=5
                )

    def test_consensus_rejects_nonpositive_trials(self):
        for trials in (0, -1):
            with pytest.raises(ConfigurationError, match="trials"):
                run_consensus_trials(
                    lambda: register_consensus(2, value_domain=range(2)),
                    [0, 1],
                    trials=trials,
                )

    def test_consensus_rejects_degenerate_n(self):
        for inputs in ([], [1]):
            with pytest.raises(ConfigurationError, match="at least 2"):
                run_consensus_trials(
                    lambda: register_consensus(2, value_domain=range(2)),
                    inputs,
                    trials=5,
                )

    def test_decay_series_rejects_degenerate_sweeps(self):
        with pytest.raises(ConfigurationError, match="trials"):
            decay_series(lambda: SiftingConciliator(2), [0, 1], trials=0)
        with pytest.raises(ConfigurationError, match="at least 2"):
            decay_series(lambda: SiftingConciliator(2), [0], trials=5)


class TestMergeStats:
    """Pooling disjoint sweeps via SampleSummary.merge."""

    def _shard(self, master_seed, trials=6):
        return run_conciliator_trials(
            lambda: SiftingConciliator(4),
            list(range(4)),
            trials=trials,
            master_seed=master_seed,
        )

    def test_merge_conciliator_stats_pools_counts_exactly(self):
        first, second = self._shard(1), self._shard(2, trials=4)
        merged = merge_conciliator_stats(first, second)
        assert merged.trials == 10
        assert merged.agreement_count == (
            first.agreement_count + second.agreement_count
        )
        assert merged.validity_failures == (
            first.validity_failures + second.validity_failures
        )
        assert merged.individual_steps.count == 10
        assert merged.total_steps.maximum == max(
            first.total_steps.maximum, second.total_steps.maximum
        )
        # the pooled rate is consistent with the pooled Wilson interval
        low, high = merged.agreement_interval
        assert low <= merged.agreement_rate <= high

    def test_merge_conciliator_stats_rejects_mismatched_n(self):
        small = self._shard(1)
        big = run_conciliator_trials(
            lambda: SiftingConciliator(8),
            list(range(8)),
            trials=3,
            master_seed=1,
        )
        with pytest.raises(ConfigurationError, match="different n"):
            merge_conciliator_stats(small, big)

    def test_stats_record_the_protocol_kind(self):
        stats = self._shard(1)
        assert stats.kind == SiftingConciliator(4).name

    def test_merge_conciliator_stats_rejects_mismatched_kind(self):
        sifting = self._shard(1)
        snapshot = run_conciliator_trials(
            lambda: SnapshotConciliator(4),
            list(range(4)),
            trials=3,
            master_seed=1,
        )
        assert sifting.kind != snapshot.kind
        with pytest.raises(ConfigurationError, match="different protocol kinds"):
            merge_conciliator_stats(sifting, snapshot)

    def test_merge_tolerates_a_missing_kind(self):
        # Stats deserialized from older sweeps carry no kind; they merge
        # with anything and adopt the known kind.
        from dataclasses import replace

        first = self._shard(1)
        unkinded = replace(self._shard(2), kind="")
        merged = merge_conciliator_stats(first, unkinded)
        assert merged.kind == first.kind

    def test_merge_consensus_stats(self):
        def shard(seed):
            return run_consensus_trials(
                lambda: register_consensus(3, value_domain=range(3)),
                list(range(3)),
                trials=4,
                master_seed=seed,
            )

        first, second = shard(10), shard(11)
        merged = merge_consensus_stats(first, second)
        assert merged.trials == 8
        assert merged.all_safe == (first.all_safe and second.all_safe)
        assert merged.phases.count == first.phases.count + second.phases.count
        with pytest.raises(ConfigurationError, match="different n"):
            merge_consensus_stats(
                first,
                run_consensus_trials(
                    lambda: register_consensus(4, value_domain=range(4)),
                    list(range(4)),
                    trials=2,
                    master_seed=1,
                ),
            )


class TestFisherExact:
    """Pins fisher_exact_two_sided against scipy-checked reference values."""

    def test_known_value_matches_scipy_reference(self):
        # scipy.stats.fisher_exact([[1, 9], [11, 3]]) == 0.0027594561852200832
        p = fisher_exact_two_sided(1, 9, 11, 3)
        assert p == pytest.approx(0.002759456185220094, rel=1e-12)

    def test_balanced_table_is_not_significant(self):
        assert fisher_exact_two_sided(5, 5, 5, 5) == pytest.approx(1.0)

    def test_extreme_table_is_significant(self):
        assert fisher_exact_two_sided(10, 0, 0, 10) < 1e-4

    def test_symmetry_under_row_and_column_swaps(self):
        reference = fisher_exact_two_sided(3, 7, 9, 2)
        assert fisher_exact_two_sided(9, 2, 3, 7) == pytest.approx(reference)
        assert fisher_exact_two_sided(7, 3, 2, 9) == pytest.approx(reference)

    def test_degenerate_margins_return_one(self):
        assert fisher_exact_two_sided(0, 0, 4, 6) == 1.0
        assert fisher_exact_two_sided(3, 0, 5, 0) == 1.0
        assert fisher_exact_two_sided(0, 3, 0, 5) == 1.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError, match="must be >= 0"):
            fisher_exact_two_sided(-1, 2, 3, 4)

    def test_never_exceeds_one(self):
        for table in [(1, 1, 1, 1), (2, 0, 1, 1), (0, 5, 1, 4)]:
            assert fisher_exact_two_sided(*table) <= 1.0


class TestBackendDispatch:
    """The backend= parameter routes or refuses, never silently ignores."""

    def test_unknown_backend_rejected_everywhere(self):
        for runner in (run_conciliator_trials, decay_series):
            with pytest.raises(ConfigurationError, match="unknown backend"):
                runner(
                    lambda: SiftingConciliator(2), [0, 1], trials=2,
                    backend="gpu",
                )

    def test_vectorized_rejects_allow_partial(self):
        pytest.importorskip("numpy")
        with pytest.raises(ConfigurationError, match="allow_partial"):
            run_conciliator_trials(
                lambda: SiftingConciliator(2), [0, 1], trials=2,
                backend="vectorized", allow_partial=True,
            )

    def test_vectorized_rejects_metrics(self):
        pytest.importorskip("numpy")
        from repro.obs.metrics import MetricsRegistry

        with pytest.raises(ConfigurationError, match="metrics"):
            run_conciliator_trials(
                lambda: SiftingConciliator(2), [0, 1], trials=2,
                backend="vectorized", metrics=MetricsRegistry(),
            )

    def test_consensus_rejects_vectorized(self):
        pytest.importorskip("numpy")
        with pytest.raises(ConfigurationError, match="conciliator"):
            run_consensus_trials(
                lambda: register_consensus(2, value_domain=range(2)),
                [0, 1],
                trials=2,
                backend="vectorized",
            )

    def test_generator_backend_is_the_default(self):
        explicit = run_conciliator_trials(
            lambda: SiftingConciliator(2), [0, 1], trials=3, master_seed=4,
            backend="generator", workers=1,
        )
        implicit = run_conciliator_trials(
            lambda: SiftingConciliator(2), [0, 1], trials=3, master_seed=4,
            workers=1,
        )
        assert explicit == implicit
