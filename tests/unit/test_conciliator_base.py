"""Unit tests for the Conciliator base class and its instrumentation."""

import pytest

import helpers
from repro.core.conciliator import Conciliator, run_conciliator
from repro.core.persona import Persona
from repro.core.sifting_conciliator import SiftingConciliator
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RoundRobinSchedule


class TestBaseClassContract:
    def test_persona_program_is_abstract(self):
        base = Conciliator(2, "base")
        with pytest.raises(NotImplementedError):
            next(base.persona_program(None, 1))

    def test_program_unwraps_persona_value(self):
        class Constant(Conciliator):
            def persona_program(self, ctx, input_value):
                return Persona(value=input_value, origin=ctx.pid)
                yield  # pragma: no cover

        conciliator = Constant(2, "const")
        result = helpers.run_conciliator_once(conciliator, ["a", "b"], seed=0)
        assert result.outputs == {0: "a", 1: "b"}


class TestSurvivorInstrumentation:
    def make_run(self, n=6, seed=3):
        conciliator = SiftingConciliator(n)
        seeds = SeedTree(seed)
        run_conciliator(
            conciliator, list(range(n)), RoundRobinSchedule(n), seeds
        )
        return conciliator

    def test_initial_personae_recorded(self):
        n = 6
        conciliator = self.make_run(n=n)
        assert len(conciliator._initial) == n
        assert len(conciliator.personae_entering_round(0)) == n

    def test_entering_round_matches_after_previous(self):
        conciliator = self.make_run()
        for round_index in range(1, conciliator.rounds):
            entering = set(conciliator.personae_entering_round(round_index))
            after_previous = set(
                conciliator._after_round[round_index - 1].values()
            )
            assert entering == after_previous

    def test_survivors_after_round_counts_distinct(self):
        conciliator = self.make_run()
        for round_index in range(conciliator.rounds):
            count = conciliator.survivors_after_round(round_index)
            assert count == len(
                set(conciliator._after_round[round_index].values())
            )

    def test_survivor_series_ordering(self):
        conciliator = self.make_run()
        series = conciliator.survivor_series()
        assert series == [
            conciliator.survivors_after_round(i)
            for i in range(conciliator.rounds)
        ]

    def test_unknown_round_counts_zero(self):
        conciliator = self.make_run()
        assert conciliator.survivors_after_round(999) == 0

    def test_instrumentation_is_per_instance(self):
        one = self.make_run(seed=1)
        two = self.make_run(seed=2)
        # Fresh instances do not share survivor state.
        assert one._after_round is not two._after_round


class TestRunConciliatorHelper:
    def test_passes_inputs_positionally(self):
        n = 3
        conciliator = SiftingConciliator(n)
        seeds = SeedTree(0)
        result = run_conciliator(
            conciliator, ["x", "y", "z"], RoundRobinSchedule(n), seeds
        )
        assert result.completed
        assert result.validity_holds({0: "x", 1: "y", 2: "z"})

    def test_trace_recording_flag(self):
        n = 2
        conciliator = SiftingConciliator(n)
        seeds = SeedTree(0)
        result = run_conciliator(
            conciliator, [0, 1], RoundRobinSchedule(n), seeds,
            record_trace=True,
        )
        assert result.trace is not None
        assert len(result.trace) == result.total_steps
