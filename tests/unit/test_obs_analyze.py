"""Unit tests for trace analytics: lineage, disagreement, attribution."""

import pytest

from repro.analysis.theory import predicted_attribution
from repro.core.conciliator import run_conciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.errors import ConfigurationError
from repro.obs.analyze import (
    ANALYSIS_SCHEMA_VERSION,
    AttributionReport,
    DisagreementReport,
    attribute_steps,
    build_lineages,
    explain_disagreement,
)
from repro.obs.events import TraceEventRecord
from repro.obs.tracing import TraceRecorder
from repro.runtime.rng import SeedTree
from repro.workloads.schedules import make_schedule


def adoption(pid, round_number, persona, value=None, origin=None):
    payload = {"round": round_number, "persona": persona}
    if value is not None:
        payload["value"] = value
    if origin is not None:
        payload["origin"] = origin
    return TraceEventRecord(kind="persona-adoption", pid=pid, payload=payload)


def op(kind, pid, step, obj, **payload):
    return TraceEventRecord(
        kind=kind, pid=pid, step=step, payload={"obj": obj, **payload}
    )


def finish(pid):
    return TraceEventRecord(kind="finish", pid=pid, payload={"output": 0})


def _annotated_sifting_trace(n=4, seed=5):
    conciliator = SiftingConciliator(n)
    seeds = SeedTree(seed)
    schedule = make_schedule("random", n, seeds.child("schedule"))
    recorder = TraceRecorder(include_values=True)
    run_conciliator(
        conciliator, list(range(n)), schedule, seeds, hooks=[recorder]
    )
    recorder.annotate_conciliator(conciliator)
    return recorder.events


class TestBuildLineages:
    def test_requires_adoption_events(self):
        with pytest.raises(ConfigurationError, match="persona-adoption"):
            build_lineages([op("register-read", 0, 1, "x.r[0]")])

    def test_kept_own_chain(self):
        events = [adoption(0, 0, "A"), adoption(0, 1, "A"), adoption(0, 2, "A")]
        lineages = build_lineages(events)
        assert set(lineages) == {0}
        assert all(step.kept_own for step in lineages[0].steps)
        assert lineages[0].final.persona == "A"

    def test_adoption_traces_provenance_to_the_write(self):
        # pid 1 writes persona B into round-0 register at step 3; pid 0
        # reads it at step 5 and enters round 1 holding B.
        events = [
            adoption(0, 0, "A"),
            adoption(1, 0, "B"),
            op("register-write", 1, 3, "sift.r[0]", value="B", op="write"),
            op("register-read", 0, 5, "sift.r[0]", result="B", op="read"),
            adoption(0, 1, "B"),
            adoption(1, 1, "B"),
        ]
        lineages = build_lineages(events)
        hop = lineages[0].steps[1]
        assert not hop.kept_own
        assert hop.read_obj == "sift.r[0]"
        assert hop.read_step == 5
        assert hop.writer_pid == 1
        assert hop.write_step == 3
        # pid 1 kept its own persona throughout: no provenance sought.
        assert all(step.kept_own for step in lineages[1].steps)

    def test_provenance_tolerates_missing_evidence(self):
        # Adoption with no matching read (values stripped, eviction):
        # the hop is recorded, provenance fields stay None.
        events = [adoption(0, 0, "A"), adoption(0, 1, "B")]
        hop = build_lineages(events)[0].steps[1]
        assert not hop.kept_own
        assert hop.read_obj is None and hop.writer_pid is None

    def test_held_at_picks_latest_adoption(self):
        events = [adoption(0, 0, "A"), adoption(0, 2, "B")]
        lineage = build_lineages(events)[0]
        assert lineage.held_at(0).persona == "A"
        assert lineage.held_at(1).persona == "A"
        assert lineage.held_at(2).persona == "B"
        assert lineage.held_at(99).persona == "B"

    def test_real_conciliator_trace(self):
        events = _annotated_sifting_trace(n=4)
        lineages = build_lineages(events)
        assert sorted(lineages) == [0, 1, 2, 3]
        for pid, lineage in lineages.items():
            assert lineage.steps[0].round_number == 0
            assert lineage.steps[0].kept_own


class TestExplainDisagreement:
    def test_agreeing_run_is_not_diverged(self):
        events = [
            adoption(0, 0, "A"), adoption(1, 0, "A"),
            adoption(0, 1, "A"), adoption(1, 1, "A"),
        ]
        report = explain_disagreement(events)
        assert not report.diverged
        assert report.divergence_round is None
        assert len(report.survivors) == 1
        assert "no disagreement" in report.render()

    def test_divergence_round_is_one_past_last_unanimous(self):
        # Unanimous at round 0 ("A" everywhere), split at round 1.
        events = [
            adoption(0, 0, "A"), adoption(1, 0, "A"),
            adoption(0, 1, "A"), adoption(1, 1, "B"),
        ]
        report = explain_disagreement(events)
        assert report.diverged
        assert report.divergence_round == 1
        assert report.rounds_recorded == 2
        holders = {s.persona: s.holders for s in report.survivors}
        assert holders == {"A": (0,), "B": (1,)}

    def test_never_unanimous_diverges_at_round_zero(self):
        events = [adoption(0, 0, "A"), adoption(1, 0, "B")]
        report = explain_disagreement(events)
        assert report.diverged
        assert report.divergence_round == 0

    def test_final_values_follow_survivor_order(self):
        events = [
            adoption(0, 0, "A", value=3), adoption(1, 0, "B", value=7),
        ]
        report = explain_disagreement(events)
        assert report.final_values == (3, 7)

    def test_render_names_divergence_round_and_holders(self):
        events = [
            adoption(0, 0, "A"), adoption(1, 0, "A"),
            adoption(0, 1, "A"), adoption(1, 1, "B"),
        ]
        text = explain_disagreement(events, note="unit").render()
        assert "divergence round: 1" in text
        assert "held by p1" in text
        assert "note: unit" in text

    def test_json_round_trip(self):
        events = [adoption(0, 0, "A"), adoption(1, 0, "B")]
        report = explain_disagreement(events, note="rt")
        again = DisagreementReport.from_json(report.to_json())
        assert again == report
        assert again.to_json() == report.to_json()

    def test_from_json_rejects_foreign_version(self):
        data = explain_disagreement([adoption(0, 0, "A")]).to_json()
        data["v"] = ANALYSIS_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="unsupported analysis"):
            DisagreementReport.from_json(data)

    def test_from_json_rejects_wrong_kind(self):
        data = explain_disagreement([adoption(0, 0, "A")]).to_json()
        data["kind"] = "repro-attribution-report"
        with pytest.raises(ConfigurationError, match="kind"):
            DisagreementReport.from_json(data)

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            DisagreementReport.from_json([1, 2])


def exact_prediction(rounds=2, steps=2):
    return {
        "algorithm": "sifting", "n": 2, "epsilon": 0.5,
        "rounds": rounds, "steps_per_round": 1,
        "individual_steps": steps, "relation": "exact",
    }


def bound_prediction(rounds=4, steps=20):
    return {
        "algorithm": "cil-embedded", "n": 2, "epsilon": 0.25,
        "rounds": rounds, "steps_per_round": 2,
        "individual_steps": steps, "relation": "upper-bound",
    }


class TestAttributeSteps:
    def test_rejects_malformed_prediction(self):
        with pytest.raises(ConfigurationError, match="predicted_attribution"):
            attribute_steps([], {"algorithm": "sifting"})

    def test_exact_match_is_within_tolerance(self):
        events = [
            op("register-read", 0, 0, "s.r[0]"),
            op("register-read", 1, 1, "s.r[0]"),
            op("register-write", 0, 2, "s.r[1]"),
            op("register-write", 1, 3, "s.r[1]"),
            finish(0), finish(1),
        ]
        report = attribute_steps(events, exact_prediction(rounds=2, steps=2))
        assert report.within_tolerance
        assert report.observed_rounds == 2
        assert report.round_delta == 0
        assert report.per_round_ops == {0: 2, 1: 2}
        assert report.per_pid_attributed == {0: 2, 1: 2}
        assert report.completed_pids == (0, 1)
        assert report.unattributed_ops == 0

    def test_exact_flags_step_count_mismatch(self):
        events = [
            op("register-read", 0, 0, "s.r[0]"),
            op("register-read", 0, 1, "s.r[1]"),
            op("register-read", 0, 2, "s.r[1]"),  # one extra
            finish(0),
        ]
        report = attribute_steps(events, exact_prediction(rounds=2, steps=2))
        assert not report.within_tolerance

    def test_exact_flags_round_count_mismatch(self):
        events = [op("register-read", 0, 0, "s.r[5]"), finish(0)]
        report = attribute_steps(events, exact_prediction(rounds=2, steps=1))
        assert report.observed_rounds == 6
        assert report.round_delta == 4
        assert not report.within_tolerance

    def test_upper_bound_allows_fewer_steps(self):
        events = [op("snapshot-scan", 0, 0, "c.A[0]"), finish(0)]
        report = attribute_steps(events, bound_prediction(rounds=4, steps=20))
        assert report.within_tolerance
        assert report.round_delta == -3

    def test_upper_bound_flags_excess_total_steps(self):
        events = [
            *(op("register-read", 0, i, "c.flag") for i in range(25)),
            finish(0),
        ]
        report = attribute_steps(events, bound_prediction(rounds=4, steps=20))
        assert report.per_pid_total == {0: 25}
        assert report.unattributed_ops == 25
        assert not report.within_tolerance

    def test_incomplete_run_checks_round_bound_only(self):
        events = [op("register-read", 0, 0, "s.r[0]")]  # no finish
        report = attribute_steps(events, exact_prediction(rounds=2, steps=2))
        assert report.completed_pids == ()
        assert report.within_tolerance
        assert "no process completed" in report.note

    def test_non_round_objects_land_unattributed(self):
        events = [
            op("register-read", 0, 0, "ac.propose"),
            op("max-read", 0, 1, "s.M[0]"),
            finish(0),
        ]
        report = attribute_steps(events, exact_prediction(rounds=1, steps=1))
        assert report.unattributed_ops == 1
        assert report.per_pid_total == {0: 2}
        assert report.per_pid_attributed == {0: 1}

    def test_json_round_trip_restores_int_keys(self):
        events = [
            op("register-read", 0, 0, "s.r[0]"),
            op("register-read", 1, 1, "s.r[1]"),
            finish(0), finish(1),
        ]
        report = attribute_steps(events, exact_prediction(rounds=2, steps=1))
        again = AttributionReport.from_json(report.to_json())
        assert again == report
        assert again.per_round_ops == {0: 1, 1: 1}

    def test_from_json_rejects_foreign_version(self):
        data = attribute_steps([finish(0)], exact_prediction()).to_json()
        data["v"] = ANALYSIS_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="unsupported analysis"):
            AttributionReport.from_json(data)

    def test_render_states_verdict_and_delta(self):
        events = [op("register-read", 0, 0, "s.r[0]"), finish(0)]
        text = attribute_steps(events, exact_prediction(rounds=1, steps=1)) \
            .render()
        assert "within tolerance" in text
        assert "delta +0" in text

    def test_real_sifting_trace_matches_theory_exactly(self):
        n = 4
        events = _annotated_sifting_trace(n=n)
        predicted = predicted_attribution("sifting", n)
        report = attribute_steps(events, predicted)
        assert report.within_tolerance
        assert report.round_delta == 0
        for pid in report.completed_pids:
            assert report.per_pid_attributed[pid] \
                == predicted["individual_steps"]
