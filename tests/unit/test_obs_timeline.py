"""Unit tests for ASCII and HTML timeline rendering."""

import pytest

from repro.core.conciliator import run_conciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.errors import ConfigurationError
from repro.obs.events import TraceEventRecord
from repro.obs.timeline import (
    EVENT_MARKERS,
    render_timeline,
    render_timeline_html,
    render_waterfall,
    render_waterfall_html,
)
from repro.obs.tracing import TraceRecorder
from repro.runtime.rng import SeedTree
from repro.workloads.schedules import make_schedule


def _small_trace():
    return [
        TraceEventRecord(kind="run-start", payload={"n": 2, "step_limit": 10}),
        TraceEventRecord(kind="register-read", pid=0, step=0,
                         payload={"obj": "x.r[0]", "result": "<b>&v"}),
        TraceEventRecord(kind="register-write", pid=1, step=1,
                         payload={"obj": "x.r[0]", "value": 7}),
        TraceEventRecord(kind="round-transition",
                         payload={"round": 0, "survivors": 2,
                                  "protocol": "x"}),
        TraceEventRecord(kind="finish", pid=0, payload={"output": 7}),
        TraceEventRecord(kind="run-end",
                         payload={"completed": 2, "total_steps": 2,
                                  "crashed": 0}),
    ]


class TestAsciiTimeline:
    def test_rejects_trace_without_processes(self):
        events = [TraceEventRecord(kind="run-start", payload={"n": 0})]
        with pytest.raises(ConfigurationError, match="names no processes"):
            render_timeline(events)

    def test_rejects_narrow_width(self):
        with pytest.raises(ConfigurationError, match="width"):
            render_timeline(_small_trace(), width=39)

    def test_deterministic_and_newline_terminated(self):
        first = render_timeline(_small_trace())
        second = render_timeline(_small_trace())
        assert first == second
        assert first.endswith("\n")

    def test_rows_markers_and_round_separator(self):
        text = render_timeline(_small_trace())
        lines = text.splitlines()
        assert lines[0].split() == ["step", "p0", "p1", "event"]
        assert any("-- end of round 0 (2 persona(e) survive)" in line
                   for line in lines)
        assert any(" R " in line and "x.r[0]" in line for line in lines)
        assert any(" W " in line and ":= 7" in line for line in lines)
        assert "legend:" in lines[-1]

    def test_width_bounds_every_line(self):
        for line in render_timeline(_small_trace(), width=48).splitlines():
            assert len(line) <= 48

    def test_events_without_pid_get_dash_step(self):
        text = render_timeline(_small_trace())
        assert "run start: n=2 step_limit=10" in text
        assert "run end: completed=2" in text

    def test_every_marker_is_a_single_character(self):
        assert all(len(marker) == 1 for marker in EVENT_MARKERS.values())

    def test_real_trace_renders(self):
        n = 3
        conciliator = SiftingConciliator(n)
        seeds = SeedTree(9)
        schedule = make_schedule("random", n, seeds.child("schedule"))
        recorder = TraceRecorder(include_values=True)
        run_conciliator(
            conciliator, list(range(n)), schedule, seeds, hooks=[recorder]
        )
        recorder.annotate_conciliator(conciliator)
        text = render_timeline(recorder.events)
        assert "p0" in text and "p2" in text
        assert "-- end of round" in text
        # Deterministic: same events, same bytes.
        assert text == render_timeline(recorder.events)


class TestHtmlTimeline:
    def test_page_is_self_contained_table(self):
        page = render_timeline_html(_small_trace())
        assert page.startswith("<!DOCTYPE html>")
        assert "<table>" in page
        assert "<script" not in page
        assert "<th>p0</th><th>p1</th>" in page

    def test_escapes_payload_text(self):
        page = render_timeline_html(_small_trace())
        assert "&lt;b&gt;&amp;v" in page
        assert "<b>&v" not in page

    def test_round_transition_becomes_round_row(self):
        page = render_timeline_html(_small_trace())
        assert '<tr class="round">' in page
        assert "end of round 0" in page

    def test_title_is_escaped(self):
        page = render_timeline_html(_small_trace(), title="a<b>&c")
        assert "a&lt;b&gt;&amp;c" in page

    def test_deterministic(self):
        assert render_timeline_html(_small_trace()) \
            == render_timeline_html(_small_trace())


def _session_tree():
    """A tree-JSON document shaped like repro.service.spans tree_to_json,
    built as plain dicts — the renderers must not need Span objects."""
    return {
        "v": 1,
        "kind": "repro-session-spans",
        "session_id": 5,
        "root": {
            "name": "session", "start": 2.0, "end": 2.5,
            "status": "completed", "shard": 1,
            "attrs": {
                "session_id": 5, "attempts": 1,
                "phases": {"stall": 0.0, "queue-wait": 0.3,
                           "worker-call": 0.2, "backoff": 0.0,
                           "unattributed": 0.0},
            },
            "children": [
                {"name": "admission", "start": 2.0, "end": 2.0,
                 "status": "admitted"},
                {"name": "attempt", "start": 2.0, "end": 2.5,
                 "status": "completed", "attrs": {"attempt": 0},
                 "children": [
                     {"name": "queue-wait", "start": 2.0, "end": 2.3,
                      "status": "acquired"},
                     {"name": "worker-call", "start": 2.3, "end": 2.5,
                      "status": "completed"},
                 ]},
            ],
        },
    }


class TestAsciiWaterfall:
    def test_rows_follow_the_tree_depth_first(self):
        text = render_waterfall(_session_tree())
        lines = text.splitlines()
        assert "session 5: completed in 0.5000s" in lines[0]
        names = [line.split()[0] for line in lines[2:-1]]
        assert names == ["session", "admission", "attempt[0]",
                         "queue-wait", "worker-call"]

    def test_instant_spans_render_as_a_tick_not_a_bar(self):
        text = render_waterfall(_session_tree())
        admission = next(line for line in text.splitlines()
                         if "admission" in line)
        track = admission.split("|", 1)[1].rsplit("|", 1)[0]
        assert "#" not in track  # zero duration: tick only
        assert "|" in track
        assert "0.0000s admitted" in admission

    def test_phase_footer_reads_from_root_attrs(self):
        text = render_waterfall(_session_tree())
        assert text.splitlines()[-1].startswith("phases:")
        assert "queue-wait=0.3000s" in text

    def test_width_bounds_every_line(self):
        for line in render_waterfall(_session_tree(),
                                     width=60).splitlines():
            assert len(line) <= 60

    def test_rejects_narrow_width(self):
        with pytest.raises(ConfigurationError, match="width"):
            render_waterfall(_session_tree(), width=39)

    def test_accepts_a_bare_root_span_dict(self):
        assert "session 5" in render_waterfall(_session_tree()["root"])

    def test_rejects_non_tree_input(self):
        with pytest.raises(ConfigurationError, match="span tree"):
            render_waterfall({"not": "a tree"})
        with pytest.raises(ConfigurationError, match="span-tree"):
            render_waterfall("nope")

    def test_deterministic_and_newline_terminated(self):
        first = render_waterfall(_session_tree())
        assert first == render_waterfall(_session_tree())
        assert first.endswith("\n")

    def test_zero_duration_session_does_not_divide_by_zero(self):
        tree = {
            "v": 1, "kind": "repro-session-spans", "session_id": 0,
            "root": {"name": "session", "start": 1.0, "end": 1.0,
                     "status": "rejected",
                     "attrs": {"session_id": 0},
                     "children": [{"name": "admission", "start": 1.0,
                                   "end": 1.0, "status": "rejected"}]},
        }
        text = render_waterfall(tree)
        assert "rejected" in text


class TestHtmlWaterfall:
    def test_page_is_self_contained(self):
        page = render_waterfall_html(_session_tree())
        assert page.startswith("<!DOCTYPE html>")
        assert "<script" not in page
        assert "http" not in page  # no external assets

    def test_bars_are_percentage_positioned(self):
        page = render_waterfall_html(_session_tree())
        # queue-wait spans [2.0, 2.3] of [2.0, 2.5]: 0% left, 60% wide.
        assert "margin-left:0.00%;width:60.00%" in page
        # worker-call spans [2.3, 2.5]: 60% left, 40% wide.
        assert "margin-left:60.00%;width:40.00%" in page

    def test_title_and_status_are_escaped(self):
        page = render_waterfall_html(_session_tree(), title="a<b>&c")
        assert "a&lt;b&gt;&amp;c" in page

    def test_deterministic(self):
        assert render_waterfall_html(_session_tree()) \
            == render_waterfall_html(_session_tree())
