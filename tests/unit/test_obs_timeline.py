"""Unit tests for ASCII and HTML timeline rendering."""

import pytest

from repro.core.conciliator import run_conciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.errors import ConfigurationError
from repro.obs.events import TraceEventRecord
from repro.obs.timeline import (
    EVENT_MARKERS,
    render_timeline,
    render_timeline_html,
)
from repro.obs.tracing import TraceRecorder
from repro.runtime.rng import SeedTree
from repro.workloads.schedules import make_schedule


def _small_trace():
    return [
        TraceEventRecord(kind="run-start", payload={"n": 2, "step_limit": 10}),
        TraceEventRecord(kind="register-read", pid=0, step=0,
                         payload={"obj": "x.r[0]", "result": "<b>&v"}),
        TraceEventRecord(kind="register-write", pid=1, step=1,
                         payload={"obj": "x.r[0]", "value": 7}),
        TraceEventRecord(kind="round-transition",
                         payload={"round": 0, "survivors": 2,
                                  "protocol": "x"}),
        TraceEventRecord(kind="finish", pid=0, payload={"output": 7}),
        TraceEventRecord(kind="run-end",
                         payload={"completed": 2, "total_steps": 2,
                                  "crashed": 0}),
    ]


class TestAsciiTimeline:
    def test_rejects_trace_without_processes(self):
        events = [TraceEventRecord(kind="run-start", payload={"n": 0})]
        with pytest.raises(ConfigurationError, match="names no processes"):
            render_timeline(events)

    def test_rejects_narrow_width(self):
        with pytest.raises(ConfigurationError, match="width"):
            render_timeline(_small_trace(), width=39)

    def test_deterministic_and_newline_terminated(self):
        first = render_timeline(_small_trace())
        second = render_timeline(_small_trace())
        assert first == second
        assert first.endswith("\n")

    def test_rows_markers_and_round_separator(self):
        text = render_timeline(_small_trace())
        lines = text.splitlines()
        assert lines[0].split() == ["step", "p0", "p1", "event"]
        assert any("-- end of round 0 (2 persona(e) survive)" in line
                   for line in lines)
        assert any(" R " in line and "x.r[0]" in line for line in lines)
        assert any(" W " in line and ":= 7" in line for line in lines)
        assert "legend:" in lines[-1]

    def test_width_bounds_every_line(self):
        for line in render_timeline(_small_trace(), width=48).splitlines():
            assert len(line) <= 48

    def test_events_without_pid_get_dash_step(self):
        text = render_timeline(_small_trace())
        assert "run start: n=2 step_limit=10" in text
        assert "run end: completed=2" in text

    def test_every_marker_is_a_single_character(self):
        assert all(len(marker) == 1 for marker in EVENT_MARKERS.values())

    def test_real_trace_renders(self):
        n = 3
        conciliator = SiftingConciliator(n)
        seeds = SeedTree(9)
        schedule = make_schedule("random", n, seeds.child("schedule"))
        recorder = TraceRecorder(include_values=True)
        run_conciliator(
            conciliator, list(range(n)), schedule, seeds, hooks=[recorder]
        )
        recorder.annotate_conciliator(conciliator)
        text = render_timeline(recorder.events)
        assert "p0" in text and "p2" in text
        assert "-- end of round" in text
        # Deterministic: same events, same bytes.
        assert text == render_timeline(recorder.events)


class TestHtmlTimeline:
    def test_page_is_self_contained_table(self):
        page = render_timeline_html(_small_trace())
        assert page.startswith("<!DOCTYPE html>")
        assert "<table>" in page
        assert "<script" not in page
        assert "<th>p0</th><th>p1</th>" in page

    def test_escapes_payload_text(self):
        page = render_timeline_html(_small_trace())
        assert "&lt;b&gt;&amp;v" in page
        assert "<b>&v" not in page

    def test_round_transition_becomes_round_row(self):
        page = render_timeline_html(_small_trace())
        assert '<tr class="round">' in page
        assert "end of round 0" in page

    def test_title_is_escaped(self):
        page = render_timeline_html(_small_trace(), title="a<b>&c")
        assert "a&lt;b&gt;&amp;c" in page

    def test_deterministic(self):
        assert render_timeline_html(_small_trace()) \
            == render_timeline_html(_small_trace())
