"""Unit tests for conciliator chaining and worst-schedule search."""

import pytest

import helpers
from repro.core.compose import ChainedConciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.runtime.scheduler import ExplicitSchedule
from repro.workloads.search import evaluate_schedule, search_worst_schedule


class TestChainedConciliator:
    def test_rejects_empty_chain(self):
        with pytest.raises(ConfigurationError):
            ChainedConciliator([])

    def test_rejects_mismatched_n(self):
        with pytest.raises(ConfigurationError):
            ChainedConciliator(
                [SiftingConciliator(4), SiftingConciliator(8)]
            )

    def test_step_bound_is_sum(self):
        chain = ChainedConciliator(
            [SiftingConciliator(8, name="a"), SnapshotConciliator(8, name="b")]
        )
        expected = (SiftingConciliator(8).step_bound()
                    + SnapshotConciliator(8).step_bound())
        assert chain.step_bound() == expected

    def test_terminates_valid_exact_steps(self):
        n = 8
        chain = ChainedConciliator(
            [SiftingConciliator(n, name="a"), SiftingConciliator(n, name="b")]
        )
        result = helpers.run_conciliator_once(chain, list(range(n)), seed=1)
        assert result.completed
        assert result.validity_holds({pid: pid for pid in range(n)})
        assert all(steps == chain.step_bound()
                   for steps in result.steps_by_pid.values())

    def test_agreement_boost(self):
        """Chaining two eps=1/2 conciliators should push disagreement
        toward eps^2; measured rates must improve on the single stage."""
        n, trials = 16, 80
        single = helpers.agreement_rate(
            lambda: SiftingConciliator(n), list(range(n)), trials, seed=2,
        )
        chained = helpers.agreement_rate(
            lambda: ChainedConciliator(
                [SiftingConciliator(n, name="a"),
                 SiftingConciliator(n, name="b")]
            ),
            list(range(n)), trials, seed=2,
        )
        assert chained >= single
        assert chained >= 0.9

    def test_cross_model_chain(self):
        n = 8
        chain = ChainedConciliator(
            [SiftingConciliator(n, name="sift"),
             SnapshotConciliator(n, name="snap")]
        )
        result = helpers.run_conciliator_once(chain, list(range(n)), seed=3)
        assert result.completed
        assert result.validity_holds({pid: pid for pid in range(n)})

    def test_agreement_established_early_is_preserved(self):
        # Unanimous inputs: stage 1 trivially agrees; stage 2's validity
        # must preserve the value.
        n = 6
        chain = ChainedConciliator(
            [SiftingConciliator(n, name="a"), SiftingConciliator(n, name="b")]
        )
        result = helpers.run_conciliator_once(chain, ["v"] * n, seed=4)
        assert result.decided_values == {"v"}


class TestScheduleSearch:
    def test_evaluate_schedule_rates(self):
        n = 4
        conciliator_rounds = SiftingConciliator(n).rounds
        slots = [pid for _ in range(conciliator_rounds) for pid in range(n)]
        rate = evaluate_schedule(
            lambda: SiftingConciliator(n),
            list(range(n)),
            ExplicitSchedule(slots, n=n),
            trials=10,
            master_seed=1,
        )
        assert 0.0 <= rate <= 1.0

    def test_search_returns_valid_schedule(self):
        n = 4
        rounds = SiftingConciliator(n).rounds
        result = search_worst_schedule(
            lambda: SiftingConciliator(n),
            list(range(n)),
            steps_per_process=rounds,
            generations=3,
            mutations_per_generation=2,
            trials_per_eval=4,
            master_seed=2,
        )
        # The schedule still gives every process its full step budget.
        for pid in range(n):
            assert result.schedule.slots.count(pid) == rounds
        assert 0.0 <= result.agreement_rate <= 1.0
        assert result.evaluations >= 1

    def test_search_history_is_monotone_nonincreasing(self):
        n = 4
        rounds = SiftingConciliator(n).rounds
        result = search_worst_schedule(
            lambda: SiftingConciliator(n),
            list(range(n)),
            steps_per_process=rounds,
            generations=5,
            mutations_per_generation=2,
            trials_per_eval=4,
            master_seed=3,
        )
        history = result.history
        assert all(history[i] >= history[i + 1] for i in range(len(history) - 1))

    def test_search_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            search_worst_schedule(
                lambda: SiftingConciliator(1), [], steps_per_process=1,
            )
        with pytest.raises(ConfigurationError):
            search_worst_schedule(
                lambda: SiftingConciliator(1), [0], steps_per_process=0,
            )


class TestScheduleSearchBudgets:
    def search(self, **kwargs):
        n = 4
        rounds = SiftingConciliator(n).rounds
        return search_worst_schedule(
            lambda: SiftingConciliator(n),
            list(range(n)),
            steps_per_process=rounds,
            generations=4,
            mutations_per_generation=2,
            trials_per_eval=4,
            master_seed=2,
            **kwargs,
        )

    def test_unbudgeted_search_is_not_stopped_early(self):
        result = self.search()
        assert not result.stopped_early
        assert result.elapsed_seconds >= 0.0

    def test_max_evaluations_stops_gracefully(self):
        result = self.search(max_evaluations=2)
        assert result.stopped_early
        # One initial evaluation, at most one mutation, plus the final
        # fresh-seed re-evaluation of the best candidate.
        assert result.evaluations <= 3
        assert 0.0 <= result.agreement_rate <= 1.0
        # The returned schedule is still a complete, fair candidate.
        n = 4
        rounds = SiftingConciliator(n).rounds
        for pid in range(n):
            assert result.schedule.slots.count(pid) == rounds

    def test_budgets_never_change_the_candidate_sequence(self):
        # A budgeted search explores a prefix: its best-so-far history must
        # be a prefix of the unbudgeted history for the same master seed.
        full = self.search()
        cut = self.search(max_evaluations=4)
        assert cut.history == full.history[: len(cut.history)]

    def test_deadline_stops_the_search(self):
        result = self.search(deadline_seconds=1e-9)
        assert result.stopped_early
        assert result.evaluations <= 2

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="max_evaluations"):
            self.search(max_evaluations=0)


class TestBanditSearch:
    def search(self, **kwargs):
        n = 4
        rounds = SiftingConciliator(n).rounds
        return search_worst_schedule(
            lambda: SiftingConciliator(n),
            list(range(n)),
            steps_per_process=rounds,
            generations=4,
            mutations_per_generation=3,
            trials_per_eval=4,
            master_seed=2,
            strategy="bandit",
            **kwargs,
        )

    def test_rejects_unknown_strategy(self):
        n = 4
        with pytest.raises(ConfigurationError, match="strategy"):
            search_worst_schedule(
                lambda: SiftingConciliator(n),
                list(range(n)),
                steps_per_process=SiftingConciliator(n).rounds,
                strategy="simulated-annealing",
            )

    def test_bandit_candidates_never_starve(self):
        n = 4
        rounds = SiftingConciliator(n).rounds
        result = self.search()
        assert result.strategy == "bandit"
        # Family candidates carry a fair round-robin tail, so the winner
        # always grants every process at least its full step budget.
        for pid in range(n):
            assert result.schedule.slots.count(pid) >= rounds
        assert 0.0 <= result.agreement_rate <= 1.0

    def test_bandit_pulls_every_arm_once(self):
        from repro.workloads.schedules import SCHEDULE_FAMILIES

        result = self.search()
        expected_arms = set(SCHEDULE_FAMILIES) | {"explicit-mutation"}
        # 12 pulls over 7 arms: UCB1 initialization touches each arm first.
        assert set(result.family_pulls) == expected_arms
        assert sum(result.family_pulls.values()) == result.evaluations - 1

    def test_bandit_is_deterministic(self):
        first = self.search()
        second = self.search()
        assert first.schedule.slots == second.schedule.slots
        assert first.agreement_rate == second.agreement_rate
        assert first.family_pulls == second.family_pulls

    def test_hill_climb_pulls_count_as_explicit_mutation(self):
        n = 4
        rounds = SiftingConciliator(n).rounds
        result = search_worst_schedule(
            lambda: SiftingConciliator(n),
            list(range(n)),
            steps_per_process=rounds,
            generations=2,
            mutations_per_generation=2,
            trials_per_eval=4,
            master_seed=2,
        )
        assert result.strategy == "hill-climb"
        assert result.family_pulls == {"explicit-mutation": 4}

    def test_metrics_telemetry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        result = self.search(metrics=registry)
        assert (registry.counter_value("search.evaluations")
                == result.evaluations)
        for arm, pulls in result.family_pulls.items():
            assert registry.counter_value(
                "search.family_pulls", family=arm) == pulls
        histogram = registry.histogram_for("search.best_disagreement")
        assert histogram is not None
