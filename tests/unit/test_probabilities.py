"""Unit tests for the sifting probability schedule and snapshot contraction."""

import math

import pytest

from repro.core.probabilities import (
    SIFT_TAIL_FACTOR,
    iterate_snapshot_f,
    paper_sift_p,
    sift_p,
    sift_p_schedule,
    sift_x,
    snapshot_f,
)
from repro.core.rounds import sifting_switch_round
from repro.errors import ConfigurationError


class TestSiftX:
    def test_x0_is_n_minus_1(self):
        assert sift_x(0, 100) == 99

    def test_recurrence_x_next_is_2_sqrt_x(self):
        for n in (10, 100, 10_000):
            for i in range(0, 6):
                assert sift_x(i + 1, n) == pytest.approx(2 * math.sqrt(sift_x(i, n)))

    def test_closed_form_small_case(self):
        # x_1 = 2 sqrt(n-1)
        assert sift_x(1, 101) == pytest.approx(20.0)

    def test_below_8_at_switch_round(self):
        # The paper: x_{ceil(log log n)} < 8.
        for n in (4, 16, 100, 1000, 2**16, 2**20):
            switch = sifting_switch_round(n)
            assert sift_x(switch, n) < 8.0 + 1e-9

    def test_n_equal_one_has_no_excess(self):
        assert sift_x(0, 1) == 0.0
        assert sift_x(3, 1) == 0.0

    def test_rejects_negative_round(self):
        with pytest.raises(ConfigurationError):
            sift_x(-1, 4)


class TestSiftP:
    def test_first_round_inverse_sqrt(self):
        # p_1 = 1/sqrt(x_0) = 1/sqrt(n-1)
        assert sift_p(1, 101) == pytest.approx(0.1)

    def test_self_consistent_with_x(self):
        # p_{i+1} = 1/sqrt(x_i) within the tuned prefix.
        n = 2**16
        for i in range(1, sifting_switch_round(n) + 1):
            assert sift_p(i, n) == pytest.approx(1 / math.sqrt(sift_x(i - 1, n)))

    def test_half_after_switch(self):
        n = 256
        switch = sifting_switch_round(n)
        assert sift_p(switch + 1, n) == 0.5
        assert sift_p(switch + 10, n) == 0.5

    def test_probabilities_are_valid(self):
        for n in (1, 2, 3, 10, 1000):
            for i in range(1, 12):
                assert 0.0 < sift_p(i, n) <= 1.0

    def test_increasing_within_prefix(self):
        # x_i shrinks, so the tuned p_i = 1/sqrt(x_{i-1}) grows.
        n = 2**20
        switch = sifting_switch_round(n)
        values = [sift_p(i, n) for i in range(1, switch + 1)]
        assert values == sorted(values)

    def test_rejects_round_zero(self):
        with pytest.raises(ConfigurationError):
            sift_p(0, 4)

    def test_paper_variant_matches_at_round_one(self):
        # Only for n with at least one tuned round (switch >= 1), where both
        # formulas give 1/sqrt(n-1).
        for n in (4, 10, 1000):
            assert paper_sift_p(1, n) == pytest.approx(sift_p(1, n))

    def test_paper_variant_is_the_printed_formula(self):
        n = 17
        expected = 2 ** (1 - 2.0 ** (1 - 2)) * (n - 1) ** (-(2.0 ** -2))
        assert paper_sift_p(2, n) == pytest.approx(expected)

    def test_schedule_builder(self):
        schedule = sift_p_schedule(256, 10)
        assert len(schedule) == 10
        assert schedule[sifting_switch_round(256)] == 0.5

    def test_schedule_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            sift_p_schedule(4, 0)


class TestSnapshotF:
    def test_min_of_two_branches(self):
        # Small x: x/2 branch; large x: ln(x+1) branch.
        assert snapshot_f(1.0) == 0.5
        assert snapshot_f(100.0) == pytest.approx(math.log(101.0))

    def test_fixed_point_at_zero(self):
        assert snapshot_f(0.0) == 0.0

    def test_below_log2_for_x_at_least_2(self):
        # Used in Theorem 1: f(x) <= log2 x for x >= 2.
        for x in (2.0, 3.0, 10.0, 1e6):
            assert snapshot_f(x) <= math.log2(x) + 1e-12

    def test_contraction_below_half(self):
        for x in (0.5, 1.0, 5.0, 100.0):
            assert snapshot_f(x) <= x / 2

    def test_iteration_reaches_near_zero(self):
        # f^(log* n + const)(n) drops below 1/2 (Theorem 1's engine).
        value = iterate_snapshot_f(2**20, 10)
        assert value < 0.5

    def test_iteration_count_zero_is_identity(self):
        assert iterate_snapshot_f(7.0, 0) == 7.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            snapshot_f(-1.0)
        with pytest.raises(ConfigurationError):
            iterate_snapshot_f(1.0, -1)


class TestTailFactor:
    def test_three_quarters(self):
        # 1 - p + p^2 at p = 1/2.
        assert SIFT_TAIL_FACTOR == 0.75

    def test_half_minimizes_coefficient(self):
        coefficient = lambda p: 1 - p + p * p
        assert all(
            coefficient(0.5) <= coefficient(p) + 1e-12
            for p in [0.1 * k for k in range(11)]
        )
