"""Unit tests for personae (pre-flipped randomness bundles)."""

import random

import pytest

from repro.core.persona import Persona
from repro.errors import ConfigurationError


class TestPersonaBasics:
    def test_hashable_and_countable(self):
        one = Persona(value=1, origin=0)
        two = Persona(value=1, origin=1)
        assert len({one, two, one}) == 2

    def test_equality_is_structural(self):
        assert Persona(value=1, origin=0) == Persona(value=1, origin=0)

    def test_coin_must_be_binary(self):
        with pytest.raises(ConfigurationError):
            Persona(value=1, origin=0, coin=2)

    def test_immutability(self):
        persona = Persona(value=1, origin=0)
        with pytest.raises(Exception):
            persona.value = 2


class TestSnapshotPersona:
    def test_priority_vector_length(self):
        persona = Persona.for_snapshot(
            "v", 3, random.Random(0), rounds=5, priority_range=100
        )
        assert len(persona.priorities) == 5

    def test_priorities_in_range(self):
        persona = Persona.for_snapshot(
            "v", 0, random.Random(1), rounds=50, priority_range=10
        )
        assert all(1 <= priority <= 10 for priority in persona.priorities)

    def test_priority_accessor(self):
        persona = Persona.for_snapshot(
            "v", 0, random.Random(2), rounds=3, priority_range=1000
        )
        assert persona.priority(1) == persona.priorities[1]

    def test_different_rngs_give_different_priorities(self):
        one = Persona.for_snapshot("v", 0, random.Random(1), 10, 10**9)
        two = Persona.for_snapshot("v", 0, random.Random(2), 10, 10**9)
        assert one.priorities != two.priorities

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            Persona.for_snapshot("v", 0, random.Random(0), 0, 10)

    def test_rejects_bad_priority_range(self):
        with pytest.raises(ConfigurationError):
            Persona.for_snapshot("v", 0, random.Random(0), 1, 0)

    def test_carries_combine_coin(self):
        persona = Persona.for_snapshot("v", 0, random.Random(0), 1, 10)
        assert persona.coin in (0, 1)


class TestSiftingPersona:
    def test_write_bits_length(self):
        persona = Persona.for_sifting("v", 0, random.Random(0), [0.5] * 7)
        assert len(persona.write_bits) == 7

    def test_probability_one_always_writes(self):
        persona = Persona.for_sifting("v", 0, random.Random(0), [1.0] * 20)
        assert all(persona.write_bits)

    def test_probability_zero_never_writes(self):
        persona = Persona.for_sifting("v", 0, random.Random(0), [0.0] * 20)
        assert not any(persona.write_bits)

    def test_chooses_write_accessor(self):
        persona = Persona.for_sifting("v", 0, random.Random(3), [0.5] * 4)
        assert persona.chooses_write(2) == persona.write_bits[2]

    def test_rejects_empty_schedule(self):
        with pytest.raises(ConfigurationError):
            Persona.for_sifting("v", 0, random.Random(0), [])

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ConfigurationError):
            Persona.for_sifting("v", 0, random.Random(0), [1.5])

    def test_bits_frequency_tracks_probability(self):
        # Statistical sanity: p = 0.8 should set most bits.
        persona = Persona.for_sifting("v", 0, random.Random(0), [0.8] * 500)
        fraction = sum(persona.write_bits) / 500
        assert 0.7 < fraction < 0.9
