"""Unit tests for adopt-commit objects (all three implementations)."""

import pytest

import helpers
from repro.adoptcommit.base import (
    ADOPT,
    COMMIT,
    AdoptCommitResult,
    check_coherence,
    check_convergence,
)
from repro.adoptcommit.collect_ac import CollectAdoptCommit
from repro.adoptcommit.encoders import DomainEncoder, IntEncoder
from repro.adoptcommit.flag_ac import BinaryAdoptCommit, FlagAdoptCommit
from repro.adoptcommit.snapshot_ac import SnapshotAdoptCommit
from repro.errors import ConfigurationError
from repro.runtime.scheduler import ExplicitSchedule, RandomSchedule

IMPLEMENTATIONS = [
    ("snapshot", lambda n, m: SnapshotAdoptCommit(n)),
    ("collect", lambda n, m: CollectAdoptCommit(n)),
    ("flag", lambda n, m: FlagAdoptCommit(n, IntEncoder(m))),
]


class TestResultType:
    def test_committed_flag(self):
        assert AdoptCommitResult(COMMIT, 1).committed
        assert not AdoptCommitResult(ADOPT, 1).committed

    def test_rejects_bad_decision(self):
        with pytest.raises(ValueError):
            AdoptCommitResult("maybe", 1)


class TestSpecPredicates:
    def test_convergence_predicate(self):
        results = [AdoptCommitResult(COMMIT, 5)] * 3
        assert check_convergence([5, 5, 5], results)
        assert not check_convergence([5, 5, 5], [AdoptCommitResult(ADOPT, 5)] * 3)
        # Mixed inputs: convergence is vacuous.
        assert check_convergence([5, 6], [AdoptCommitResult(ADOPT, 6)] * 2)

    def test_coherence_predicate(self):
        good = [AdoptCommitResult(COMMIT, 1), AdoptCommitResult(ADOPT, 1)]
        assert check_coherence(good)
        bad = [AdoptCommitResult(COMMIT, 1), AdoptCommitResult(ADOPT, 2)]
        assert not check_coherence(bad)
        two_commits = [AdoptCommitResult(COMMIT, 1), AdoptCommitResult(COMMIT, 2)]
        assert not check_coherence(two_commits)
        no_commit = [AdoptCommitResult(ADOPT, 1), AdoptCommitResult(ADOPT, 2)]
        assert check_coherence(no_commit)


@pytest.mark.parametrize("label,factory", IMPLEMENTATIONS)
class TestAllImplementations:
    def test_convergence_unanimous_commit(self, label, factory):
        n, m = 5, 4
        results = helpers.run_adopt_commit(factory(n, m), [2] * n, seed=1)
        assert all(r.committed and r.value == 2 for r in results)

    def test_validity(self, label, factory):
        n, m = 6, 6
        inputs = list(range(n))
        results = helpers.run_adopt_commit(factory(n, m), inputs, seed=2)
        assert all(r.value in inputs for r in results)

    def test_coherence_over_many_schedules(self, label, factory):
        n, m = 4, 4
        for seed in range(25):
            results = helpers.run_adopt_commit(
                factory(n, m), [0, 1, 2, 3], seed=seed
            )
            assert check_coherence(results), (label, seed)

    def test_solo_process_commits(self, label, factory):
        results = helpers.run_adopt_commit(factory(1, 2), [1], seed=3)
        assert results[0] == AdoptCommitResult(COMMIT, 1)

    def test_sequential_first_process_commits_rest_follow(self, label, factory):
        # Process 0 runs entirely alone and must commit its value; by
        # coherence everyone else then returns that value.
        n, m = 3, 3
        ac = factory(n, m)
        bound = ac.step_bound()
        slots = []
        for pid in range(n):
            slots.extend([pid] * bound)
        results = helpers.run_adopt_commit(
            ac, [0, 1, 2], schedule=ExplicitSchedule(slots, n=n), seed=4
        )
        assert results[0].committed
        assert all(r.value == results[0].value for r in results)

    def test_step_bound_respected(self, label, factory):
        from repro.runtime.rng import SeedTree
        from repro.runtime.simulator import run_programs

        n, m = 4, 4
        ac = factory(n, m)
        seeds = SeedTree(5)
        programs = [lambda ctx: ac.invoke(ctx, ctx.input_value)] * n
        result = run_programs(
            programs,
            RandomSchedule(n, seeds.child("schedule").seed),
            seeds,
            inputs=[0, 1, 2, 3],
        )
        assert result.max_individual_steps <= ac.step_bound()


class TestFlagAdoptCommit:
    def test_binary_is_constant_cost(self):
        ac = BinaryAdoptCommit(8)
        assert ac.step_bound() == 5

    def test_cost_grows_logarithmically_with_m(self):
        costs = [FlagAdoptCommit(4, IntEncoder(m)).step_bound()
                 for m in (2, 16, 256, 65536)]
        # d = 1, 4, 8, 16 binary digits -> cost 3d + 2.
        assert costs == [5, 14, 26, 50]

    def test_rejects_value_outside_domain(self):
        ac = FlagAdoptCommit(2, IntEncoder(4))
        with pytest.raises(ConfigurationError):
            helpers.run_adopt_commit(ac, [0, 7], seed=6)

    def test_domain_encoder_values(self):
        ac = FlagAdoptCommit(3, DomainEncoder(["red", "green", "blue"]))
        results = helpers.run_adopt_commit(ac, ["red", "red", "red"], seed=7)
        assert all(r.committed and r.value == "red" for r in results)

    def test_single_value_domain_always_commits(self):
        ac = FlagAdoptCommit(3, DomainEncoder(["only"]))
        results = helpers.run_adopt_commit(ac, ["only"] * 3, seed=8)
        assert all(r.committed for r in results)


class TestSnapshotAdoptCommit:
    def test_four_steps_exactly(self):
        from repro.runtime.rng import SeedTree
        from repro.runtime.simulator import run_programs

        n = 5
        ac = SnapshotAdoptCommit(n)
        seeds = SeedTree(9)
        programs = [lambda ctx: ac.invoke(ctx, ctx.input_value)] * n
        result = run_programs(
            programs,
            RandomSchedule(n, seeds.child("schedule").seed),
            seeds,
            inputs=list(range(n)),
        )
        assert all(steps == 4 for steps in result.steps_by_pid.values())

    def test_unbounded_value_domain(self):
        # Snapshot AC needs no encoder: arbitrary hashable values work.
        n = 3
        ac = SnapshotAdoptCommit(n)
        inputs = [("tuple", 1), ("tuple", 1), ("tuple", 1)]
        results = helpers.run_adopt_commit(ac, inputs, seed=10)
        assert all(r.committed for r in results)


class TestEncoders:
    def test_int_encoder_roundtrip_distinct(self):
        encoder = IntEncoder(37, base=3)
        encodings = {encoder.encode(value) for value in range(37)}
        assert len(encodings) == 37

    def test_int_encoder_digit_count(self):
        assert IntEncoder(2).digits == 1
        assert IntEncoder(16).digits == 4
        assert IntEncoder(17).digits == 5
        assert IntEncoder(1).digits == 0

    def test_int_encoder_domain_size(self):
        assert IntEncoder(5).domain_size == 8  # 3 binary digits

    def test_int_encoder_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            IntEncoder(4).encode(4)
        with pytest.raises(ConfigurationError):
            IntEncoder(4).encode("x")

    def test_int_encoder_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            IntEncoder(0)
        with pytest.raises(ConfigurationError):
            IntEncoder(4, base=1)

    def test_domain_encoder_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            DomainEncoder(["a", "a"])

    def test_domain_encoder_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DomainEncoder([])

    def test_domain_encoder_rejects_unknown_value(self):
        with pytest.raises(ConfigurationError):
            DomainEncoder(["a", "b"]).encode("c")
