"""Unit tests for register-width accounting (footnote 2 / Section 3)."""

import math
import random

import pytest

from repro.analysis.space import (
    bits_for,
    measured_persona_bits,
    sifting_register_bits,
    snapshot_component_bits,
)
from repro.core.persona import Persona
from repro.core.rounds import sifting_rounds, snapshot_rounds
from repro.errors import ConfigurationError


class TestBitsFor:
    def test_small_counts(self):
        assert bits_for(1) == 1
        assert bits_for(2) == 1
        assert bits_for(3) == 2
        assert bits_for(1024) == 10

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            bits_for(0)


class TestSnapshotComponentBits:
    def test_indirection_removes_value_field(self):
        plain = snapshot_component_bits(64, 0.5, value_bits=4096)
        indirect = snapshot_component_bits(
            64, 0.5, value_bits=4096, indirection=True
        )
        assert plain - indirect == 4096

    def test_indirection_width_is_log_n_log_star_n(self):
        # Footnote 2: O(log n log* n) bits for constant eps; check the
        # growth is ~R * log(R n^2) = O(log* n * log n).
        widths = {}
        for n in (2**8, 2**16, 2**32):
            widths[n] = snapshot_component_bits(
                n, 0.5, value_bits=0, indirection=True
            )
        # log n doubles from 2^8 to 2^16 with the same log* band: the
        # width should roughly double (within the ceiling slack).
        ratio = widths[2**16] / widths[2**8]
        assert 1.6 < ratio < 2.6

    def test_rejects_negative_value_bits(self):
        with pytest.raises(ConfigurationError):
            snapshot_component_bits(4, 0.5, value_bits=-1)


class TestSiftingRegisterBits:
    def test_origin_id_costs_log_n(self):
        with_id = sifting_register_bits(1024, 0.5, value_bits=8)
        without = sifting_register_bits(
            1024, 0.5, value_bits=8, include_origin=False
        )
        assert with_id - without == 10  # log2(1024)

    def test_id_free_width_is_loglog_plus_value(self):
        # Section 3: O(log log n + log m) bits.  The n-dependence without
        # the id is just the chooseWrite vector: R = loglog n + const.
        width_small = sifting_register_bits(
            16, 0.5, value_bits=8, include_origin=False
        )
        width_huge = sifting_register_bits(
            2**64, 0.5, value_bits=8, include_origin=False
        )
        assert width_huge - width_small == (
            sifting_rounds(2**64, 0.5) - sifting_rounds(16, 0.5)
        )
        assert width_huge - width_small <= 4

    def test_rejects_negative_value_bits(self):
        with pytest.raises(ConfigurationError):
            sifting_register_bits(4, 0.5, value_bits=-1)


class TestMeasuredPersonaBits:
    def test_measured_at_most_formula(self):
        n, epsilon, value_bits = 64, 0.5, 16
        rng = random.Random(0)
        from repro.core.rounds import snapshot_priority_range

        rounds = snapshot_rounds(n, epsilon)
        persona = Persona.for_snapshot(
            "value", 3, rng, rounds,
            snapshot_priority_range(n, epsilon, rounds),
        )
        measured = measured_persona_bits(persona, value_bits, n)
        formula = snapshot_component_bits(n, epsilon, value_bits)
        assert measured <= formula + 8  # per-priority ceiling slack

    def test_sifting_persona_measured(self):
        n = 64
        rng = random.Random(1)
        from repro.core.probabilities import sift_p_schedule

        persona = Persona.for_sifting(
            5, 2, rng, sift_p_schedule(n, sifting_rounds(n, 0.5))
        )
        measured = measured_persona_bits(persona, value_bits=3, n=n)
        # value + id + chooseWrite bits + coin (no priorities).
        assert measured == 3 + 6 + sifting_rounds(n, 0.5) + 1
