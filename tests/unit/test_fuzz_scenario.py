"""Unit tests for fuzz scenarios: values, JSON, generation, execution."""

import pytest

from repro.errors import ConfigurationError
from repro.fuzz import (
    WORKLOADS,
    FuzzConfig,
    Scenario,
    ViolationRecord,
    generate_scenario,
    make_inputs,
    run_scenario,
    stack_names,
)
from repro.fuzz.stacks import get_stack
from repro.runtime.adaptive import AdaptiveSpec
from repro.runtime.faults import CrashFault, FaultPlan, RegisterFault, StallFault
from repro.workloads.schedules import ScheduleSpec


def oblivious(stack="sifting", n=3, workload="distinct", seed=7,
              family="round-robin", **kwargs):
    return Scenario(
        stack=stack, n=n, workload=workload, seed=seed,
        schedule=ScheduleSpec(family, n), **kwargs,
    )


class TestScenarioValidation:
    def test_needs_exactly_one_adversary(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            Scenario(stack="sifting", n=3, workload="distinct", seed=1)
        with pytest.raises(ConfigurationError, match="exactly one"):
            Scenario(
                stack="sifting", n=3, workload="distinct", seed=1,
                schedule=ScheduleSpec("random", 3),
                adaptive=AdaptiveSpec("pending-reads"),
            )

    def test_schedule_n_must_match(self):
        with pytest.raises(ConfigurationError, match="n="):
            Scenario(stack="sifting", n=4, workload="distinct", seed=1,
                     schedule=ScheduleSpec("random", 3))

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="workload"):
            oblivious(workload="chaotic")

    def test_adaptive_scenarios_cannot_stall(self):
        with pytest.raises(ConfigurationError, match="stall"):
            Scenario(
                stack="sifting", n=3, workload="distinct", seed=1,
                adaptive=AdaptiveSpec("pending-reads"),
                faults=FaultPlan(
                    stalls=(StallFault(pid=0, start_step=0, duration=4),),
                ),
            )

    def test_fault_pids_must_exist(self):
        with pytest.raises(ConfigurationError, match="pid 5"):
            oblivious(faults=FaultPlan(crashes=(CrashFault(pid=5),)))

    def test_scenarios_are_values(self):
        assert oblivious() == oblivious()
        assert hash(oblivious()) == hash(oblivious())
        assert oblivious() != oblivious(seed=8)


class TestScenarioJson:
    def test_round_trip_oblivious(self):
        scenario = Scenario(
            stack="sifting", n=2, workload="binary", seed=11,
            schedule=ScheduleSpec("explicit", 2, slots=(0, 1, 0, 1)),
            faults=FaultPlan(
                crashes=(CrashFault(pid=1, after_steps=3),),
                stalls=(StallFault(pid=0, start_step=2, duration=5),),
            ),
        )
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_round_trip_adaptive_and_out_of_model(self):
        scenario = Scenario(
            stack="snapshot", n=3, workload="distinct", seed=5,
            adaptive=AdaptiveSpec("sift-killer", seed=9),
            faults=FaultPlan(
                register_faults=(
                    RegisterFault(kind="stale-read", obj_name="proposal"),
                ),
                allow_out_of_model=True,
            ),
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert not restored.faults.is_in_model

    def test_unknown_version_rejected(self):
        data = oblivious().to_json()
        data["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            Scenario.from_json(data)

    def test_canonical_json_is_byte_stable(self):
        assert oblivious().canonical_json() == oblivious().canonical_json()


class TestFuzzConfig:
    def test_round_trip(self):
        config = FuzzConfig(stacks=("sifting",), min_n=2, max_n=4,
                            include_adaptive=False, allow_out_of_model=True)
        assert FuzzConfig.from_json(config.to_json()) == config

    def test_unknown_stack_rejected_on_resolve(self):
        with pytest.raises(ConfigurationError, match="unknown stack"):
            FuzzConfig(stacks=("no-such",)).resolved_stacks()

    def test_default_draw_excludes_planted_stacks(self):
        names = FuzzConfig().resolved_stacks()
        assert names == list(stack_names())
        assert not any(name.startswith("planted-") for name in names)

    def test_bad_n_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FuzzConfig(min_n=0)
        with pytest.raises(ConfigurationError):
            FuzzConfig(min_n=4, max_n=2)


class TestGeneration:
    def test_pure_function_of_arguments(self):
        config = FuzzConfig()
        first = [generate_scenario(42, index, config) for index in range(30)]
        second = [generate_scenario(42, index, config) for index in range(30)]
        assert first == second

    def test_different_seeds_differ(self):
        config = FuzzConfig()
        a = [generate_scenario(1, index, config) for index in range(10)]
        b = [generate_scenario(2, index, config) for index in range(10)]
        assert a != b

    def test_respects_stack_restriction_and_n_range(self):
        config = FuzzConfig(stacks=("binary-ac",), min_n=2, max_n=3)
        for index in range(20):
            scenario = generate_scenario(7, index, config)
            assert scenario.stack == "binary-ac"
            assert 2 <= scenario.n <= 3
            assert scenario.workload in get_stack("binary-ac").workloads

    def test_out_of_model_faults_are_gated(self):
        closed = FuzzConfig(allow_out_of_model=False)
        assert not any(
            generate_scenario(3, index, closed).faults.register_faults
            for index in range(40)
        )
        open_ = FuzzConfig(allow_out_of_model=True)
        assert any(
            generate_scenario(3, index, open_).faults.register_faults
            for index in range(40)
        )

    def test_no_adaptive_when_disabled(self):
        config = FuzzConfig(include_adaptive=False)
        assert not any(
            generate_scenario(5, index, config).is_adaptive
            for index in range(40)
        )


class TestMakeInputs:
    def test_known_workloads(self):
        for workload in WORKLOADS:
            inputs = make_inputs(workload, 4, seed=3)
            assert len(inputs) == 4

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError, match="workload"):
            make_inputs("nope", 4, seed=3)


class TestRunScenario:
    def test_honest_oblivious_run_is_ok(self):
        outcome = run_scenario(oblivious())
        assert outcome.status == "ok"
        assert outcome.violations == ()
        assert outcome.total_steps > 0

    def test_honest_adaptive_run_is_ok(self):
        outcome = run_scenario(Scenario(
            stack="sifting", n=3, workload="distinct", seed=7,
            adaptive=AdaptiveSpec("pending-reads", seed=2),
        ))
        assert outcome.status == "ok"

    def test_crash_faults_stay_in_model_and_ok(self):
        outcome = run_scenario(oblivious(
            faults=FaultPlan(crashes=(CrashFault(pid=2, after_steps=1),)),
        ))
        assert outcome.status == "ok"

    def test_out_of_model_damage_is_degraded_not_violation(self):
        # Lossy writes on sifting round registers wreck register semantics
        # (and can wreck agreement), but they must never fabricate a value
        # (validity) or hang a survivor (wait-freedom/termination).
        statuses = set()
        for seed in range(8):
            outcome = run_scenario(Scenario(
                stack="sifting", n=3, workload="distinct", seed=seed,
                schedule=ScheduleSpec("random", 3, seed=seed),
                faults=FaultPlan(
                    register_faults=(
                        RegisterFault(kind="lossy-write", obj_name=".r[",
                                      op_index=0, count=3),
                    ),
                    allow_out_of_model=True,
                ),
            ))
            statuses.add(outcome.status)
            assert outcome.status in ("ok", "degraded")
            assert not outcome.violations
        assert "degraded" in statuses  # damage was actually exercised

    def test_wall_clock_budget_reports_not_hangs(self):
        # The budget hook polls the clock every 256 charged steps, so the
        # scenario must be big enough to reach the first poll.
        big = Scenario(
            stack="register-consensus", n=16, workload="distinct", seed=1,
            schedule=ScheduleSpec("random", 16, seed=1),
        )
        assert run_scenario(big).total_steps > 256
        outcome = run_scenario(big, wall_clock_seconds=1e-9)
        assert outcome.status == "budget-exceeded"
        assert "budget" in outcome.note

    def test_stack_workload_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="workload"):
            run_scenario(oblivious(stack="binary-ac", workload="distinct"))

    def test_outcome_json_round_trips_records(self):
        record = ViolationRecord("validity", 1, "bad value")
        assert ViolationRecord.from_json(record.to_json()) == record
