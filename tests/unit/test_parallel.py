"""Unit tests for the sharded trial engine (repro.runtime.parallel)."""

import time

import pytest

from repro.analysis.experiments import trial_seed_tree
from repro.errors import CheckpointError, ConfigurationError, StepLimitExceededError
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.backoff import BackoffPolicy
from repro.runtime.parallel import (
    MAX_RETRY_BACKOFF,
    ParallelConfig,
    available_workers,
    default_chunk_size,
    get_default_parallelism,
    iter_chunks,
    parallelism,
    resolve_workers,
    retry_backoff_policy,
    run_indexed_trials,
    set_default_parallelism,
    supports_fork,
)
from repro.runtime.rng import SeedTree

needs_fork = pytest.mark.skipif(
    not supports_fork(), reason="sharded execution requires the fork start method"
)


class TestChunking:
    def test_chunks_partition_the_range(self):
        chunks = list(iter_chunks(10, 3))
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]
        covered = [i for start, stop in chunks for i in range(start, stop)]
        assert covered == list(range(10))

    def test_oversized_chunk_is_one_chunk(self):
        assert list(iter_chunks(4, 100)) == [(0, 4)]

    def test_empty_range(self):
        assert list(iter_chunks(0, 5)) == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            list(iter_chunks(-1, 2))
        with pytest.raises(ConfigurationError):
            list(iter_chunks(5, 0))

    def test_default_chunk_size_scales_with_workers(self):
        assert default_chunk_size(100, 4) == 7  # ceil(100 / 16)
        assert default_chunk_size(1, 8) == 1
        with pytest.raises(ConfigurationError):
            default_chunk_size(0, 4)


class TestConfig:
    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) == get_default_parallelism().workers
        assert resolve_workers(0) == available_workers()
        with pytest.raises(ConfigurationError):
            resolve_workers(-1)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(workers=-1)
        with pytest.raises(ConfigurationError):
            ParallelConfig(chunk_size=0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(timeout=0.0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(retries=-1)
        with pytest.raises(ConfigurationError):
            ParallelConfig(backoff=-0.1)

    def test_backoff_override_via_context(self):
        with parallelism(backoff=0.0) as config:
            assert config.backoff == 0.0

    def test_parallelism_context_restores_default(self):
        before = get_default_parallelism()
        with parallelism(workers=7, chunk_size=2) as config:
            assert config.workers == 7
            assert config.chunk_size == 2
            assert get_default_parallelism() is config
        assert get_default_parallelism() is before

    def test_parallelism_zero_workers_means_all_cpus(self):
        with parallelism(workers=0):
            assert resolve_workers(None) == available_workers()

    def test_set_default_returns_previous(self):
        original = get_default_parallelism()
        replacement = ParallelConfig(workers=2)
        assert set_default_parallelism(replacement) is original
        assert set_default_parallelism(original) is replacement


class TestSerialPath:
    def test_workers_one_runs_in_process(self):
        """In-process execution must not fork: closure side effects are
        visible to the caller, which a worker process could never do."""
        seen = []

        def task(index):
            seen.append(index)
            return index * index

        assert run_indexed_trials(task, 5, workers=1) == [0, 1, 4, 9, 16]
        assert seen == [0, 1, 2, 3, 4]

    def test_zero_trials(self):
        assert run_indexed_trials(lambda i: i, 0, workers=4) == []

    def test_negative_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            run_indexed_trials(lambda i: i, -1)


@needs_fork
class TestShardedPath:
    def test_results_ordered_by_index(self):
        result = run_indexed_trials(
            lambda i: i * 10, 11, workers=4, chunk_size=2
        )
        assert result == [i * 10 for i in range(11)]

    def test_seed_partitioning_is_by_trial_index(self):
        """Every trial sees the seed derived from its index — the same one
        the serial loop derives — regardless of worker/chunk placement."""
        expected = [
            SeedTree(42).child(f"trial-{i}").child("schedule").seed
            for i in range(9)
        ]

        def task(index):
            return trial_seed_tree(42, index).child("schedule").seed

        for workers, chunk_size in ((2, 1), (3, 2), (4, 100)):
            assert (
                run_indexed_trials(
                    task, 9, workers=workers, chunk_size=chunk_size
                )
                == expected
            )

    def test_worker_exception_propagates(self):
        def task(index):
            if index == 3:
                raise ValueError("trial 3 exploded")
            return index

        with pytest.raises(ValueError, match="trial 3 exploded"):
            run_indexed_trials(task, 6, workers=2, chunk_size=1)

    def test_hung_worker_surfaces_step_limit_error(self):
        def task(index):
            time.sleep(60)

        with pytest.raises(StepLimitExceededError, match="timed out"):
            run_indexed_trials(
                task, 2, workers=2, chunk_size=1, timeout=0.4, retries=0
            )

    def test_reentrant_call_falls_back_to_serial(self):
        """A task that itself sweeps must not fork a pool inside a worker."""

        def inner(index):
            return index

        def outer(index):
            return sum(run_indexed_trials(inner, 3, workers=4, chunk_size=1))

        assert run_indexed_trials(outer, 4, workers=2, chunk_size=1) == [3] * 4


@needs_fork
class TestRetrySemantics:
    def test_retry_completes_after_transient_hang(self, tmp_path):
        marker = tmp_path / "first-attempt"

        def task(index):
            if not marker.exists():
                marker.write_text("hung")
                time.sleep(60)
            return index * 2

        result = run_indexed_trials(
            task, 4, workers=2, chunk_size=4, timeout=1.0, retries=1
        )
        assert result == [0, 2, 4, 6]
        assert marker.exists()

    def test_exhausted_retries_raise(self):
        def task(index):
            time.sleep(60)

        started = time.time()
        with pytest.raises(StepLimitExceededError):
            run_indexed_trials(
                task, 2, workers=2, chunk_size=1, timeout=0.3, retries=1
            )
        # two attempts, each bounded by the timeout (plus pool overhead)
        assert time.time() - started < 30

    def test_hung_chunk_message_names_unfinished_ranges(self):
        def task(index):
            time.sleep(60) if index == 1 else None
            return index

        with pytest.raises(StepLimitExceededError, match=r"\(1, 2\)"):
            run_indexed_trials(
                task, 3, workers=2, chunk_size=1, timeout=0.5, retries=0,
                backoff=0.0,
            )

    def test_poison_chunk_quarantined_with_context(self):
        """A chunk that fails on every attempt is quarantined: its own
        exception propagates, annotated with the quarantined ranges, and
        the healthy chunks still complete (visible via the journal)."""

        def task(index):
            if index == 2:
                raise RuntimeError("poison trial")
            return index

        with pytest.raises(RuntimeError, match="poison trial") as excinfo:
            run_indexed_trials(
                task, 4, workers=2, chunk_size=1, retries=1, backoff=0.0
            )
        notes = "".join(getattr(excinfo.value, "__notes__", []))
        assert "quarantined" in notes
        assert "(2, 3)" in notes

    def test_backoff_delays_retries(self):
        """Retries sleep a jittered delay: nonzero, but capped by the
        policy ceiling — the full-jitter draw never exceeds base * 2^k."""

        def task(index):
            raise RuntimeError("always fails")

        started = time.time()
        with pytest.raises(RuntimeError):
            run_indexed_trials(
                task, 2, workers=2, chunk_size=1, retries=2, backoff=0.3
            )
        elapsed = time.time() - started
        # Two chunks, two retries each, ceilings 0.3s and 0.6s: the
        # jittered total can never exceed the un-jittered worst case
        # (plus scheduling slack).  A tight lower bound would be flaky
        # under full jitter (the draw may legitimately be ~0).
        assert elapsed < 2 * (0.3 + 0.6) + 2.0

    def test_retry_backoff_policy_is_jittered_and_capped(self):
        """The chunk-retry policy is full-jitter with the 30s cap, and the
        jitter stream is a deterministic function of the run key."""
        policy = retry_backoff_policy(0.3)
        assert policy.max_delay == MAX_RETRY_BACKOFF
        assert policy.jitter == "full"
        assert policy.cap(0) == pytest.approx(0.3)
        assert policy.cap(1) == pytest.approx(0.6)
        # The exponential ceiling saturates at MAX_RETRY_BACKOFF.
        assert policy.cap(20) == MAX_RETRY_BACKOFF

        first = BackoffPolicy.rng(0, "parallel-retry", "key")
        second = BackoffPolicy.rng(0, "parallel-retry", "key")
        draws_one = [policy.delay(k, first) for k in range(6)]
        draws_two = [policy.delay(k, second) for k in range(6)]
        assert draws_one == draws_two
        assert any(delay > 0 for delay in draws_one)
        for attempt, delay in enumerate(draws_one):
            assert 0.0 <= delay <= policy.cap(attempt)

        other = BackoffPolicy.rng(0, "parallel-retry", "other-key")
        assert [policy.delay(k, other) for k in range(6)] != draws_one


@needs_fork
class TestCheckpointedExecution:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        journal_path = tmp_path / "sweep.journal"
        plain = run_indexed_trials(lambda i: i * 3, 10, workers=2, chunk_size=3)
        checkpointed = run_indexed_trials(
            lambda i: i * 3, 10, workers=2, chunk_size=3,
            checkpoint_path=str(journal_path), run_key="triples",
        )
        assert checkpointed == plain
        journal = CheckpointJournal.open(
            str(journal_path), run_key="triples", trials=10, chunk_size=3
        )
        assert journal.completed_trials == 10

    def test_resume_skips_journaled_chunks(self, tmp_path):
        """Journaled chunks are replayed, not re-executed: a task that would
        now produce different values still yields the journaled outcomes."""
        journal_path = str(tmp_path / "sweep.journal")
        run_indexed_trials(
            lambda i: ("first", i), 6, workers=2, chunk_size=2,
            checkpoint_path=journal_path, run_key="sweep",
        )
        resumed = run_indexed_trials(
            lambda i: ("second", i), 6, workers=2, chunk_size=2,
            checkpoint_path=journal_path, run_key="sweep",
        )
        assert resumed == [("first", i) for i in range(6)]

    def test_partial_journal_resumes_bit_identically(self, tmp_path):
        journal_path = str(tmp_path / "sweep.journal")
        journal = CheckpointJournal.open(
            journal_path, run_key="sweep", trials=6, chunk_size=2
        )
        journal.record_chunk(0, 2, [0, 10])
        resumed = run_indexed_trials(
            lambda i: i * 10, 6, workers=2, chunk_size=2,
            checkpoint_path=journal_path, run_key="sweep",
        )
        assert resumed == [0, 10, 20, 30, 40, 50]

    def test_journal_chunking_wins_over_todays_request(self, tmp_path):
        journal_path = str(tmp_path / "sweep.journal")
        run_indexed_trials(
            lambda i: i, 6, workers=2, chunk_size=2,
            checkpoint_path=journal_path, run_key="sweep",
        )
        # Re-run asking for a different chunk size: boundaries must still
        # line up with the journal's original chunking.
        resumed = run_indexed_trials(
            lambda i: i, 6, workers=2, chunk_size=5,
            checkpoint_path=journal_path, run_key="sweep",
        )
        assert resumed == list(range(6))

    def test_mismatched_run_key_rejected(self, tmp_path):
        journal_path = str(tmp_path / "sweep.journal")
        run_indexed_trials(
            lambda i: i, 4, workers=2, chunk_size=2,
            checkpoint_path=journal_path, run_key="sweep-a",
        )
        with pytest.raises(CheckpointError, match="run_key"):
            run_indexed_trials(
                lambda i: i, 4, workers=2, chunk_size=2,
                checkpoint_path=journal_path, run_key="sweep-b",
            )

    def test_serial_path_honours_checkpoints_too(self, tmp_path):
        journal_path = str(tmp_path / "sweep.journal")
        first = run_indexed_trials(
            lambda i: i * 7, 5, workers=1, chunk_size=2,
            checkpoint_path=journal_path, run_key="serial-sweep",
        )
        resumed = run_indexed_trials(
            lambda i: ("changed", i), 5, workers=1, chunk_size=2,
            checkpoint_path=journal_path, run_key="serial-sweep",
        )
        assert first == [0, 7, 14, 21, 28]
        assert resumed == first

    def test_healthy_chunks_journaled_despite_poison(self, tmp_path):
        """Quarantine + checkpointing compose: when a poison chunk fails the
        run, the healthy chunks' outcomes are already durable, so the fixed
        re-run only executes the formerly-poison chunk."""
        journal_path = str(tmp_path / "sweep.journal")

        def poisoned(index):
            if index == 2:
                raise RuntimeError("poison trial")
            return index

        with pytest.raises(RuntimeError):
            run_indexed_trials(
                poisoned, 5, workers=2, chunk_size=1, retries=0, backoff=0.0,
                checkpoint_path=journal_path, run_key="sweep",
            )
        journal = CheckpointJournal.open(
            journal_path, run_key="sweep", trials=5, chunk_size=1
        )
        assert journal.completed_trials == 4
        assert journal.outcomes_for(2, 3) is None

        recovered = run_indexed_trials(
            lambda i: i, 5, workers=2, chunk_size=1,
            checkpoint_path=journal_path, run_key="sweep",
        )
        assert recovered == [0, 1, 2, 3, 4]
