"""Unit tests for the sharded trial engine (repro.runtime.parallel)."""

import time

import pytest

from repro.analysis.experiments import trial_seed_tree
from repro.errors import ConfigurationError, StepLimitExceededError
from repro.runtime.parallel import (
    ParallelConfig,
    available_workers,
    default_chunk_size,
    get_default_parallelism,
    iter_chunks,
    parallelism,
    resolve_workers,
    run_indexed_trials,
    set_default_parallelism,
    supports_fork,
)
from repro.runtime.rng import SeedTree

needs_fork = pytest.mark.skipif(
    not supports_fork(), reason="sharded execution requires the fork start method"
)


class TestChunking:
    def test_chunks_partition_the_range(self):
        chunks = list(iter_chunks(10, 3))
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]
        covered = [i for start, stop in chunks for i in range(start, stop)]
        assert covered == list(range(10))

    def test_oversized_chunk_is_one_chunk(self):
        assert list(iter_chunks(4, 100)) == [(0, 4)]

    def test_empty_range(self):
        assert list(iter_chunks(0, 5)) == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            list(iter_chunks(-1, 2))
        with pytest.raises(ConfigurationError):
            list(iter_chunks(5, 0))

    def test_default_chunk_size_scales_with_workers(self):
        assert default_chunk_size(100, 4) == 7  # ceil(100 / 16)
        assert default_chunk_size(1, 8) == 1
        with pytest.raises(ConfigurationError):
            default_chunk_size(0, 4)


class TestConfig:
    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) == get_default_parallelism().workers
        assert resolve_workers(0) == available_workers()
        with pytest.raises(ConfigurationError):
            resolve_workers(-1)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(workers=-1)
        with pytest.raises(ConfigurationError):
            ParallelConfig(chunk_size=0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(timeout=0.0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(retries=-1)

    def test_parallelism_context_restores_default(self):
        before = get_default_parallelism()
        with parallelism(workers=7, chunk_size=2) as config:
            assert config.workers == 7
            assert config.chunk_size == 2
            assert get_default_parallelism() is config
        assert get_default_parallelism() is before

    def test_parallelism_zero_workers_means_all_cpus(self):
        with parallelism(workers=0):
            assert resolve_workers(None) == available_workers()

    def test_set_default_returns_previous(self):
        original = get_default_parallelism()
        replacement = ParallelConfig(workers=2)
        assert set_default_parallelism(replacement) is original
        assert set_default_parallelism(original) is replacement


class TestSerialPath:
    def test_workers_one_runs_in_process(self):
        """In-process execution must not fork: closure side effects are
        visible to the caller, which a worker process could never do."""
        seen = []

        def task(index):
            seen.append(index)
            return index * index

        assert run_indexed_trials(task, 5, workers=1) == [0, 1, 4, 9, 16]
        assert seen == [0, 1, 2, 3, 4]

    def test_zero_trials(self):
        assert run_indexed_trials(lambda i: i, 0, workers=4) == []

    def test_negative_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            run_indexed_trials(lambda i: i, -1)


@needs_fork
class TestShardedPath:
    def test_results_ordered_by_index(self):
        result = run_indexed_trials(
            lambda i: i * 10, 11, workers=4, chunk_size=2
        )
        assert result == [i * 10 for i in range(11)]

    def test_seed_partitioning_is_by_trial_index(self):
        """Every trial sees the seed derived from its index — the same one
        the serial loop derives — regardless of worker/chunk placement."""
        expected = [
            SeedTree(42).child(f"trial-{i}").child("schedule").seed
            for i in range(9)
        ]

        def task(index):
            return trial_seed_tree(42, index).child("schedule").seed

        for workers, chunk_size in ((2, 1), (3, 2), (4, 100)):
            assert (
                run_indexed_trials(
                    task, 9, workers=workers, chunk_size=chunk_size
                )
                == expected
            )

    def test_worker_exception_propagates(self):
        def task(index):
            if index == 3:
                raise ValueError("trial 3 exploded")
            return index

        with pytest.raises(ValueError, match="trial 3 exploded"):
            run_indexed_trials(task, 6, workers=2, chunk_size=1)

    def test_hung_worker_surfaces_step_limit_error(self):
        def task(index):
            time.sleep(60)

        with pytest.raises(StepLimitExceededError, match="timed out"):
            run_indexed_trials(
                task, 2, workers=2, chunk_size=1, timeout=0.4, retries=0
            )

    def test_reentrant_call_falls_back_to_serial(self):
        """A task that itself sweeps must not fork a pool inside a worker."""

        def inner(index):
            return index

        def outer(index):
            return sum(run_indexed_trials(inner, 3, workers=4, chunk_size=1))

        assert run_indexed_trials(outer, 4, workers=2, chunk_size=1) == [3] * 4


@needs_fork
class TestRetrySemantics:
    def test_retry_completes_after_transient_hang(self, tmp_path):
        marker = tmp_path / "first-attempt"

        def task(index):
            if not marker.exists():
                marker.write_text("hung")
                time.sleep(60)
            return index * 2

        result = run_indexed_trials(
            task, 4, workers=2, chunk_size=4, timeout=1.0, retries=1
        )
        assert result == [0, 2, 4, 6]
        assert marker.exists()

    def test_exhausted_retries_raise(self):
        def task(index):
            time.sleep(60)

        started = time.time()
        with pytest.raises(StepLimitExceededError):
            run_indexed_trials(
                task, 2, workers=2, chunk_size=1, timeout=0.3, retries=1
            )
        # two attempts, each bounded by the timeout (plus pool overhead)
        assert time.time() - started < 30
