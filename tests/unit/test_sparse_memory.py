"""Sparse/lazy shared state: SparseView, sparse snapshots, lazy registers.

The load-bearing property is dense==sparse equivalence: a sparse
:class:`SnapshotObject` must be observationally identical to a dense one
under any interleaving of updates and scans — same per-index reads, same
equality against tuple expectations, same touched accounting — because
the conciliators and the trace checker are written against the dense
contract.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.memory.emulated_snapshot import EmulatedSnapshot, LazyRegisterFile
from repro.memory.register_array import SnapshotArray
from repro.memory.snapshot import (
    SPARSE_AUTO_THRESHOLD,
    SnapshotObject,
    SparseView,
)
from repro.runtime.operations import Scan, Update


class TestSparseView:
    def _view(self):
        return SparseView(((1, "a"), (4, "b")), n=6)

    def test_len_is_n(self):
        assert len(self._view()) == 6

    def test_getitem_dense_contract(self):
        view = self._view()
        assert [view[i] for i in range(6)] == [
            None, "a", None, None, "b", None,
        ]
        assert view[-2] == "b"
        with pytest.raises(IndexError):
            view[6]
        with pytest.raises(IndexError):
            view[-7]

    def test_slice_returns_dense_tuple(self):
        assert self._view()[1:5] == ("a", None, None, "b")

    def test_iteration_yields_touched_only(self):
        assert list(self._view()) == ["a", "b"]
        assert [e for e in self._view() if e is not None] == ["a", "b"]

    def test_dense_iteration_and_equality(self):
        view = self._view()
        assert tuple(view.dense()) == (None, "a", None, None, "b", None)
        assert view == (None, "a", None, None, "b", None)
        assert view != (None, "a", None, None, "b", "x")
        assert view == SparseView(((1, "a"), (4, "b")), n=6)
        assert view != SparseView(((1, "a"),), n=6)

    def test_touched_and_items(self):
        view = self._view()
        assert view.touched() == 2
        assert view.items() == ((1, "a"), (4, "b"))

    def test_hashable(self):
        assert hash(self._view()) == hash(SparseView(((1, "a"), (4, "b")), 6))


class TestSparseSnapshotObject:
    def test_auto_threshold_selects_mode(self):
        assert not SnapshotObject(4).sparse
        assert not SnapshotObject(SPARSE_AUTO_THRESHOLD - 1).sparse
        assert SnapshotObject(SPARSE_AUTO_THRESHOLD).sparse
        assert SnapshotObject(4, sparse=True).sparse
        assert not SnapshotObject(SPARSE_AUTO_THRESHOLD, sparse=False).sparse

    def test_sparse_scan_returns_sparse_view(self):
        snapshot = SnapshotObject(8, sparse=True)
        snapshot.apply(Update(snapshot, "v3"), 3)
        view = snapshot.apply(Scan(snapshot), 0)
        assert isinstance(view, SparseView)
        assert len(view) == 8
        assert view[3] == "v3" and view[0] is None
        assert list(view) == ["v3"]

    def test_idle_processes_cost_nothing_until_first_write(self):
        snapshot = SnapshotObject(10**6, sparse=True)
        assert snapshot.touched_components == 0
        snapshot.apply(Update(snapshot, "x"), 999_999)
        assert snapshot.touched_components == 1
        view = snapshot.apply(Scan(snapshot), 0)
        assert view.touched() == 1
        assert view[999_999] == "x"

    def test_dense_sparse_equivalence_property(self):
        # Dense and sparse objects driven through identical seeded
        # update/scan interleavings must agree on every observable.
        for trial in range(30):
            rng = random.Random(1000 + trial)
            n = rng.randrange(1, 12)
            dense = SnapshotObject(n, sparse=False)
            sparse = SnapshotObject(n, sparse=True)
            for _ in range(rng.randrange(1, 40)):
                pid = rng.randrange(n)
                if rng.random() < 0.5:
                    value = rng.randrange(100)
                    dense.apply(Update(dense, value), pid)
                    sparse.apply(Update(sparse, value), pid)
                else:
                    dense_view = dense.apply(Scan(dense), pid)
                    sparse_view = sparse.apply(Scan(sparse), pid)
                    assert sparse_view == dense_view
                    assert tuple(sparse_view.dense()) == dense_view
                    assert [sparse_view[i] for i in range(n)] == list(dense_view)
            assert sparse.components == dense.components
            assert sparse.touched_components == dense.touched_components
            assert sparse.view_sizes == dense.view_sizes
            assert sparse.views_nest() == dense.views_nest()

    def test_snapshot_array_forwards_sparse(self):
        array = SnapshotArray(4, sparse=True)
        assert array[0].sparse and array[3].sparse
        assert not SnapshotArray(4)[0].sparse


class TestLazyRegisterFile:
    def test_allocates_on_first_touch_only(self):
        registers = LazyRegisterFile(10**6, "r")
        assert len(registers) == 10**6
        assert registers.allocated() == []
        register = registers[123_456]
        assert register.name == "r[123456]"
        assert registers.allocated() == [123_456]
        assert registers[123_456] is register

    def test_range_checked(self):
        registers = LazyRegisterFile(4, "r")
        with pytest.raises(IndexError):
            registers[4]
        with pytest.raises(IndexError):
            registers[-1]

    def test_emulated_snapshot_registers_are_lazy(self):
        snapshot = EmulatedSnapshot(SPARSE_AUTO_THRESHOLD * 4, "S")
        assert isinstance(snapshot.registers, LazyRegisterFile)
        assert snapshot.registers.allocated() == []
