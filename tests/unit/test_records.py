"""Unit tests for the exact record-process mathematics (footnote 3)."""

import math
import random
from fractions import Fraction

import pytest

from repro.analysis.records import (
    count_records,
    record_mean,
    record_pmf,
    record_variance,
    stirling_first_unsigned,
)
from repro.analysis.theory import harmonic
from repro.errors import ConfigurationError


class TestStirlingNumbers:
    def test_base_cases(self):
        assert stirling_first_unsigned(0, 0) == 1
        assert stirling_first_unsigned(1, 1) == 1
        assert stirling_first_unsigned(1, 0) == 0

    def test_known_row(self):
        # c(4, k) = [0, 6, 11, 6, 1]
        assert [stirling_first_unsigned(4, k) for k in range(5)] == [
            0, 6, 11, 6, 1,
        ]

    def test_row_sums_to_factorial(self):
        for m in range(1, 9):
            total = sum(stirling_first_unsigned(m, k) for k in range(m + 1))
            assert total == math.factorial(m)

    def test_k_above_m_is_zero(self):
        assert stirling_first_unsigned(3, 4) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            stirling_first_unsigned(-1, 0)


class TestRecordDistribution:
    def test_pmf_sums_to_one(self):
        for m in range(1, 10):
            assert sum(record_pmf(m)) == Fraction(1)

    def test_zero_records_impossible(self):
        for m in range(1, 6):
            assert record_pmf(m)[0] == 0

    def test_all_records_probability(self):
        # P(R_m = m) = 1/m! (the fully increasing permutation).
        for m in range(1, 7):
            assert record_pmf(m)[m] == Fraction(1, math.factorial(m))

    def test_one_record_probability(self):
        # P(R_m = 1) = 1/m (maximum first).
        for m in range(1, 7):
            assert record_pmf(m)[1] == Fraction(1, m)

    def test_mean_is_harmonic(self):
        for m in range(1, 10):
            pmf = record_pmf(m)
            mean = sum(k * p for k, p in enumerate(pmf))
            assert mean == record_mean(m)
            assert float(record_mean(m)) == pytest.approx(harmonic(m))

    def test_variance_formula(self):
        for m in range(1, 8):
            pmf = record_pmf(m)
            mean = sum(k * p for k, p in enumerate(pmf))
            second = sum(k * k * p for k, p in enumerate(pmf))
            assert second - mean * mean == record_variance(m)

    def test_matches_monte_carlo(self):
        m, trials = 8, 4000
        rng = random.Random(0)
        counts = [0] * (m + 1)
        for _ in range(trials):
            permutation = list(range(m))
            rng.shuffle(permutation)
            counts[count_records(permutation)] += 1
        pmf = record_pmf(m)
        for k in range(1, m + 1):
            assert counts[k] / trials == pytest.approx(float(pmf[k]), abs=0.03)


class TestCountRecords:
    def test_empty(self):
        assert count_records([]) == 0

    def test_increasing_sequence(self):
        assert count_records([1, 2, 3, 4]) == 4

    def test_decreasing_sequence(self):
        assert count_records([4, 3, 2, 1]) == 1

    def test_mixed(self):
        assert count_records([2, 1, 3, 0, 5, 4]) == 3

    def test_first_element_always_a_record(self):
        assert count_records([7]) == 1
