"""Unit tests for declarative fault injection (repro.runtime.faults)."""

import pytest

from repro.errors import ConfigurationError, ScheduleExhaustedError
from repro.memory.register import AtomicRegister
from repro.runtime.faults import (
    CRASH,
    SKIP,
    CrashFault,
    FaultPlan,
    RegisterFault,
    StallFault,
)
from repro.runtime.operations import Read, Write
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RoundRobinSchedule
from repro.runtime.simulator import run_programs


def write_then_read(register):
    def program(ctx):
        yield Write(register, ctx.pid)
        value = yield Read(register)
        return value

    return program


class TestFaultValidation:
    def test_crash_fault_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            CrashFault(pid=-1)
        with pytest.raises(ConfigurationError):
            CrashFault(pid=0, after_steps=-1)

    def test_stall_fault_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            StallFault(pid=-1, start_step=0, duration=1)
        with pytest.raises(ConfigurationError):
            StallFault(pid=0, start_step=-1, duration=1)
        with pytest.raises(ConfigurationError):
            StallFault(pid=0, start_step=0, duration=0)

    def test_register_fault_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError, match="kind"):
            RegisterFault(kind="flip-bits", obj_name="r")
        with pytest.raises(ConfigurationError):
            RegisterFault(kind="lossy-write", obj_name="")
        with pytest.raises(ConfigurationError):
            RegisterFault(kind="lossy-write", obj_name="r", op_index=-1)
        with pytest.raises(ConfigurationError):
            RegisterFault(kind="lossy-write", obj_name="r", count=0)


class TestFaultPlan:
    def test_register_faults_require_explicit_opt_in(self):
        fault = RegisterFault(kind="lossy-write", obj_name="r")
        with pytest.raises(ConfigurationError, match="allow_out_of_model"):
            FaultPlan(register_faults=(fault,))
        plan = FaultPlan(register_faults=(fault,), allow_out_of_model=True)
        assert not plan.is_in_model

    def test_duplicate_crash_pids_rejected(self):
        with pytest.raises(ConfigurationError, match="more than one crash"):
            FaultPlan(crashes=(CrashFault(0), CrashFault(0, after_steps=3)))

    def test_in_model_plans_report_crashed_pids(self):
        plan = FaultPlan(
            crashes=(CrashFault(2), CrashFault(0, after_steps=1)),
            stalls=(StallFault(1, start_step=0, duration=4),),
        )
        assert plan.is_in_model
        assert plan.crashed_pids == (0, 2)

    def test_injector_is_fresh_per_call(self):
        plan = FaultPlan(crashes=(CrashFault(0),))
        assert plan.injector() is not plan.injector()

    def test_sequences_coerced_to_tuples(self):
        plan = FaultPlan(crashes=[CrashFault(0)], stalls=[])
        assert plan.crashes == (CrashFault(0),)


class TestCrashInjection:
    def test_crash_after_exact_step_budget(self):
        register = AtomicRegister("r")
        plan = FaultPlan(crashes=(CrashFault(pid=0, after_steps=1),))
        result = run_programs(
            [write_then_read(register)] * 2,
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[plan.injector()],
            allow_partial=True,
        )
        assert result.crashed == frozenset({0})
        assert result.steps_by_pid[0] == 1  # the write landed, the read did not
        assert 0 not in result.outputs
        assert result.outputs[1] == 1
        assert result.survivors == frozenset({1})
        assert result.survivors_completed
        assert not result.completed

    def test_crash_before_any_step(self):
        register = AtomicRegister("r")
        plan = FaultPlan(crashes=(CrashFault(pid=1, after_steps=0),))
        result = run_programs(
            [write_then_read(register)] * 2,
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[plan.injector()],
            allow_partial=True,
        )
        assert result.crashed == frozenset({1})
        assert result.steps_by_pid[1] == 0
        # Survivor never sees pid 1's write.
        assert result.outputs[0] == 0

    def test_crashing_everyone_ends_the_run(self):
        register = AtomicRegister("r")
        plan = FaultPlan(crashes=(CrashFault(0), CrashFault(1)))
        result = run_programs(
            [write_then_read(register)] * 2,
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[plan.injector()],
            allow_partial=True,
        )
        assert result.crashed == frozenset({0, 1})
        assert result.outputs == {}
        assert result.survivors_completed  # vacuously: no survivors


class TestStallInjection:
    def test_stalled_process_takes_no_steps_in_window(self):
        register = AtomicRegister("r")
        # Stall pid 0 for the whole time pid 1 is running: pid 1 finishes
        # first, then pid 0 runs and observes pid 1's write.
        plan = FaultPlan(stalls=(StallFault(pid=0, start_step=0, duration=2),))
        result = run_programs(
            [write_then_read(register)] * 2,
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[plan.injector()],
        )
        assert result.completed
        # Without the stall, round-robin gives outputs {0: 1, 1: 1} with
        # pid 0 writing first.  With pid 0 stalled until 2 global steps have
        # been charged, pid 1 writes and reads itself before pid 0 writes.
        assert result.outputs[1] == 1
        assert result.outputs[0] == 0

    def test_stall_windows_are_finite(self):
        register = AtomicRegister("r")
        # The window is measured in *global* charged steps, so it must be
        # coverable by the other processes' work (pids 1 and 2 contribute
        # four steps); once it closes, pid 0 runs to completion.
        plan = FaultPlan(stalls=(StallFault(pid=0, start_step=0, duration=4),))
        result = run_programs(
            [write_then_read(register)] * 3,
            RoundRobinSchedule(3),
            SeedTree(0),
            hooks=[plan.injector()],
        )
        assert result.completed
        assert result.steps_by_pid[0] == 2

    def test_unsatisfiable_stall_window_trips_the_skip_guard(self):
        register = AtomicRegister("r")
        # Nobody else can advance the global step count far enough to close
        # the window, so the stalled process is starved forever; the skip
        # guard must fail fast instead of spinning.
        plan = FaultPlan(stalls=(StallFault(pid=0, start_step=0, duration=50),))
        with pytest.raises(ScheduleExhaustedError, match="starved"):
            run_programs(
                [write_then_read(register)] * 2,
                RoundRobinSchedule(2),
                SeedTree(0),
                hooks=[plan.injector()],
                skip_guard=500,
            )


class TestRegisterFaultInjection:
    def test_lossy_write_never_reaches_the_register(self):
        register = AtomicRegister("r", initial="untouched")
        plan = FaultPlan(
            register_faults=(RegisterFault(kind="lossy-write", obj_name="r"),),
            allow_out_of_model=True,
        )
        injector = plan.injector()

        def writer(ctx):
            yield Write(register, "lost")
            value = yield Read(register)
            return value

        result = run_programs(
            [writer], RoundRobinSchedule(1), SeedTree(0), hooks=[injector]
        )
        # The write was dropped on the floor; the read sees the initial value.
        assert result.outputs[0] == "untouched"
        assert len(injector.injected) == 1
        fault, pid, _step = injector.injected[0]
        assert fault.kind == "lossy-write"
        assert pid == 0

    def test_stale_read_serves_the_previous_value(self):
        register = AtomicRegister("r")
        plan = FaultPlan(
            register_faults=(RegisterFault(kind="stale-read", obj_name="r"),),
            allow_out_of_model=True,
        )
        injector = plan.injector()

        def program(ctx):
            yield Write(register, "old")
            yield Write(register, "new")
            value = yield Read(register)
            return value

        result = run_programs(
            [program], RoundRobinSchedule(1), SeedTree(0), hooks=[injector]
        )
        assert result.outputs[0] == "old"
        assert register.value == "new"  # the register itself is fine

    def test_op_index_selects_which_operation_misbehaves(self):
        register = AtomicRegister("r")
        plan = FaultPlan(
            register_faults=(
                RegisterFault(kind="lossy-write", obj_name="r", op_index=1),
            ),
            allow_out_of_model=True,
        )

        def program(ctx):
            yield Write(register, "first")
            yield Write(register, "second")  # this one is dropped
            value = yield Read(register)
            return value

        result = run_programs(
            [program], RoundRobinSchedule(1), SeedTree(0),
            hooks=[plan.injector()],
        )
        assert result.outputs[0] == "first"

    def test_obj_name_is_a_substring_filter(self):
        target = AtomicRegister("target-cell")
        bystander = AtomicRegister("bystander")
        plan = FaultPlan(
            register_faults=(
                RegisterFault(kind="lossy-write", obj_name="target"),
            ),
            allow_out_of_model=True,
        )

        def program(ctx):
            yield Write(target, "dropped")
            yield Write(bystander, "kept")
            first = yield Read(target)
            second = yield Read(bystander)
            return (first, second)

        result = run_programs(
            [program], RoundRobinSchedule(1), SeedTree(0),
            hooks=[plan.injector()],
        )
        assert result.outputs[0] == (None, "kept")


class TestDeterminism:
    def test_faulted_runs_are_reproducible(self):
        def build():
            register = AtomicRegister("r")
            plan = FaultPlan(
                crashes=(CrashFault(pid=1, after_steps=1),),
                stalls=(StallFault(pid=2, start_step=1, duration=2),),
            )
            return run_programs(
                [write_then_read(register)] * 3,
                RoundRobinSchedule(3),
                SeedTree(9),
                hooks=[plan.injector()],
                allow_partial=True,
            )

        first, second = build(), build()
        assert first.outputs == second.outputs
        assert first.crashed == second.crashed
        assert first.steps_by_pid == second.steps_by_pid


class TestSlotDecisionConstants:
    def test_constants_are_distinct_strings(self):
        assert CRASH != SKIP
        assert isinstance(CRASH, str) and isinstance(SKIP, str)


class TestFaultPlanValueSemantics:
    def plan(self):
        return FaultPlan(
            crashes=(CrashFault(pid=1, after_steps=4),),
            stalls=(StallFault(pid=0, start_step=2, duration=6),),
            register_faults=(
                RegisterFault(kind="stale-read", obj_name="r", op_index=1,
                              count=2),
            ),
            allow_out_of_model=True,
        )

    def test_equality_and_hash(self):
        assert self.plan() == self.plan()
        assert hash(self.plan()) == hash(self.plan())
        assert self.plan() != FaultPlan()

    def test_is_empty(self):
        assert FaultPlan().is_empty
        assert not self.plan().is_empty

    def test_json_round_trip_preserves_equality(self):
        plan = self.plan()
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert hash(restored) == hash(plan)
        assert FaultPlan.from_json(FaultPlan().to_json()) == FaultPlan()

    def test_unknown_version_rejected(self):
        data = self.plan().to_json()
        data["version"] = 2
        with pytest.raises(ConfigurationError, match="version"):
            FaultPlan.from_json(data)

    def test_from_json_revalidates_the_out_of_model_gate(self):
        data = self.plan().to_json()
        data["allow_out_of_model"] = False
        with pytest.raises(ConfigurationError, match="allow_out_of_model"):
            FaultPlan.from_json(data)
