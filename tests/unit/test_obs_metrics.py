"""Unit tests for the metrics registry, merging, and runtime integration."""

import time

import pytest

from repro.analysis.experiments import run_conciliator_trials
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
    collecting,
    get_default_registry,
    merge_snapshots,
)
from repro.runtime.faults import CrashFault, FaultPlan, StallFault
from repro.runtime.monitors import WaitFreedomWatchdog
from repro.runtime.rng import SeedTree
from repro.runtime.simulator import Simulator, run_programs
from repro.workloads.schedules import make_schedule


def _spin(ops):
    from repro.memory.register import AtomicRegister
    from repro.runtime.operations import Read, Write

    def program(ctx):
        reg = AtomicRegister(name=f"spin[{ctx.pid}]")
        for i in range(ops):
            yield Write(reg, i)
            yield Read(reg)
        return ctx.pid

    return program


def _run(n=3, ops=4, metrics=None, hooks=(), allow_partial=False):
    seeds = SeedTree(23)
    schedule = make_schedule("random", n, seeds.child("schedule"))
    return run_programs(
        [_spin(ops)] * n, schedule, seeds,
        metrics=metrics, hooks=list(hooks), allow_partial=allow_partial,
    )


class TestCounterAndHistogram:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counter_value("a") == 5
        assert registry.counter_value("never") == 0

    def test_labels_flatten_sorted(self):
        registry = MetricsRegistry()
        registry.counter("ops", op="read", obj="r").inc()
        assert registry.counter_keys() == ["ops{obj=r,op=read}"]

    def test_type_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(ConfigurationError, match="already a counter"):
            registry.histogram("x")
        registry.histogram("y").observe(1)
        with pytest.raises(ConfigurationError, match="already a histogram"):
            registry.counter("y")

    def test_histogram_moments_exact(self):
        hist = Histogram()
        for value in (3, 1, 4, 1, 5):
            hist.observe(value)
        assert hist.count == 5
        assert hist.total == 14.0
        assert hist.min == 1.0
        assert hist.max == 5.0
        assert hist.mean == pytest.approx(2.8)
        assert hist.quantile(0.5) == 3.0

    def test_histogram_decimation_bounds_samples(self):
        hist = Histogram(max_samples=8)
        for value in range(100):
            hist.observe(value)
        assert hist.count == 100
        assert len(hist.samples) <= 8
        assert hist.stride > 1
        # Moments stay exact through decimation.
        assert hist.total == sum(range(100))

    def test_decimation_is_deterministic(self):
        first, second = Histogram(max_samples=8), Histogram(max_samples=8)
        for value in range(200):
            first.observe(value)
            second.observe(value)
        assert first.samples == second.samples
        assert first.stride == second.stride


class TestSnapshots:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(3)
        registry.counter("steps", pid=0).inc(17)
        for value in range(10):
            registry.histogram("latency").observe(value)
        return registry

    def test_round_trip_bit_identical(self):
        registry = self._populated()
        snapshot = registry.to_json()
        assert snapshot["v"] == METRICS_SCHEMA_VERSION
        restored = MetricsRegistry.from_json(snapshot)
        assert restored.to_json() == snapshot

    def test_foreign_version_rejected(self):
        snapshot = self._populated().to_json()
        snapshot["v"] = METRICS_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="unsupported metrics"):
            MetricsRegistry.from_json(snapshot)

    def test_merge_snapshots_order_sensitive_but_exact(self):
        parts = []
        for base in (0, 100):
            registry = MetricsRegistry()
            registry.counter("n").inc(base + 1)
            registry.histogram("h").observe(base)
            parts.append(registry.to_json())
        merged = merge_snapshots(parts)
        assert merged.counter_value("n") == 102
        hist = merged.histogram_for("h")
        assert hist.count == 2 and hist.total == 100.0

    def test_merge_into_existing(self):
        target = MetricsRegistry()
        target.counter("n").inc()
        merge_snapshots([self._populated().to_json()], into=target)
        assert target.counter_value("n") == 1
        assert target.counter_value("runs") == 3


class TestSessionDefault:
    def test_collecting_installs_and_restores(self):
        assert get_default_registry() is None
        with collecting() as registry:
            assert get_default_registry() is registry
            with collecting() as inner:
                assert get_default_registry() is inner
            assert get_default_registry() is registry
        assert get_default_registry() is None

    def test_collecting_accepts_existing_registry(self):
        mine = MetricsRegistry()
        with collecting(mine) as active:
            assert active is mine


class TestRuntimeIntegration:
    def test_run_populates_registry_and_result(self):
        registry = MetricsRegistry()
        result = _run(n=3, ops=4, metrics=registry)
        assert result.metrics is registry
        assert registry.counter_value("run.count") == 1
        assert registry.counter_value("sim.steps") == result.total_steps
        assert registry.counter_value("sim.ops", op="write") > 0
        hist = registry.histogram_for("sim.steps_to_finish")
        assert hist is not None and hist.count == 3

    def test_metrics_off_by_default(self):
        result = _run(n=3, ops=4)
        assert result.metrics is None

    def test_crash_and_stall_metrics(self):
        from repro.obs.tracing import TraceRecorder

        registry = MetricsRegistry()
        recorder = TraceRecorder()
        plan = FaultPlan(
            crashes=(CrashFault(pid=1, after_steps=2),),
            stalls=(StallFault(pid=0, start_step=1, duration=6),),
        )
        _run(n=3, ops=4, metrics=registry,
             hooks=[recorder, plan.injector()], allow_partial=True)
        assert registry.counter_value("sim.crashes") == 1
        # Cross-validate the counter against the trace: every withheld
        # slot must be counted exactly once.
        stalls = len(recorder.events_of_kind("stall"))
        assert stalls >= 1
        assert registry.counter_value("sim.stalled_slots") == stalls
        assert registry.histogram_for("sim.steps_at_crash").count == 1

    def test_watchdog_reports_through_registry(self):
        registry = MetricsRegistry()
        watchdog = WaitFreedomWatchdog(10_000, metrics=registry)
        _run(n=3, ops=4, hooks=[watchdog])
        assert registry.counter_value(
            "monitor.wait_freedom.step_budget"
        ) == 10_000
        hist = registry.histogram_for("monitor.wait_freedom.steps_to_decide")
        assert hist is not None and hist.count == 3

    def test_watchdog_violation_counts(self):
        registry = MetricsRegistry()
        watchdog = WaitFreedomWatchdog(2, strict=False, metrics=registry)
        _run(n=3, ops=4, hooks=[watchdog])
        assert not watchdog.ok
        assert registry.counter_value(
            "monitor.violations", monitor="wait-freedom"
        ) == len(watchdog.violations)


class TestSweepAggregation:
    def _sweep(self, **kwargs):
        registry = MetricsRegistry()
        run_conciliator_trials(
            lambda: SnapshotConciliator(4),
            [0, 1, 0, 1],
            trials=6,
            master_seed=13,
            metrics=registry,
            **kwargs,
        )
        return registry

    def test_parallel_merge_bit_identical_to_serial(self):
        serial = self._sweep(workers=1)
        parallel = self._sweep(workers=2, chunk_size=2)
        assert serial.to_json() == parallel.to_json()
        assert serial.counter_value("run.count") == 6

    def test_session_default_is_used_when_no_registry_passed(self):
        with collecting() as registry:
            run_conciliator_trials(
                lambda: SiftingConciliator(4),
                [0, 1, 0, 1],
                trials=3,
                master_seed=13,
            )
        assert registry.counter_value("run.count") == 3

    def test_no_collection_without_registry(self):
        stats = run_conciliator_trials(
            lambda: SiftingConciliator(4),
            [0, 1, 0, 1],
            trials=2,
            master_seed=13,
        )
        assert stats.trials == 2
        assert get_default_registry() is None


class TestDisabledFastPath:
    def test_no_hook_machinery_consulted_without_hooks(self, monkeypatch):
        calls = {"n": 0}
        original = Simulator._consult_hooks

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Simulator, "_consult_hooks", counting)
        _run(n=3, ops=4)
        assert calls["n"] == 0, (
            "hook consultation must be skipped entirely when no hooks are "
            "attached"
        )
        registry = MetricsRegistry()
        _run(n=3, ops=4, metrics=registry)
        assert calls["n"] > 0

    def test_disabled_run_not_slower_than_instrumented(self):
        """The observability microbench assertion.

        A run with no hooks must not be slower than the same run with a
        metrics hook attached (generous 1.25x margin for scheduler noise
        on shared CI runners; the disabled path does strictly less work,
        so this only fails if the fast-path guard regresses).
        """
        ops = 300

        def best_of(k, metrics_factory):
            best = float("inf")
            for _ in range(k):
                metrics = metrics_factory()
                started = time.perf_counter()
                _run(n=4, ops=ops, metrics=metrics)
                best = min(best, time.perf_counter() - started)
            return best

        disabled = best_of(5, lambda: None)
        enabled = best_of(5, MetricsRegistry)
        assert disabled <= enabled * 1.25, (
            f"disabled-run best {disabled:.6f}s vs instrumented best "
            f"{enabled:.6f}s — the no-hook fast path appears to have "
            "regressed"
        )
