"""Unit tests for structured trace events and the TraceRecorder hook."""

import pytest

from repro.core.conciliator import run_conciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.obs.events import (
    EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    TraceEventRecord,
    dumps_event,
    event_from_json,
    event_to_json,
    loads_event,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.obs.tracing import TraceRecorder
from repro.runtime.faults import CrashFault, FaultPlan, StallFault
from repro.runtime.rng import SeedTree
from repro.runtime.simulator import run_programs
from repro.workloads.schedules import make_schedule


def _spin(ops):
    from repro.memory.register import AtomicRegister
    from repro.runtime.operations import Read, Write

    def program(ctx):
        reg = AtomicRegister(name=f"spin[{ctx.pid}]")
        for i in range(ops):
            yield Write(reg, i)
            yield Read(reg)
        return ctx.pid

    return program


def _run_traced(n=3, ops=4, hooks=(), **kwargs):
    seeds = SeedTree(11)
    schedule = make_schedule("random", n, seeds.child("schedule"))
    recorder = TraceRecorder(**kwargs)
    run_programs(
        [_spin(ops)] * n, schedule, seeds,
        hooks=[recorder, *hooks], allow_partial=bool(hooks),
    )
    return recorder


class TestEventRecord:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown trace event"):
            TraceEventRecord(kind="banana")

    def test_every_kind_constructs(self):
        for kind in EVENT_KINDS:
            assert TraceEventRecord(kind=kind).kind == kind

    def test_json_round_trip(self):
        event = TraceEventRecord(
            kind="register-write", step=7, pid=2,
            payload={"obj": "r[0]", "value": 5},
        )
        assert event_from_json(event_to_json(event)) == event

    def test_to_json_omits_unset_fields(self):
        data = event_to_json(TraceEventRecord(kind="run-start"))
        assert data == {"v": TRACE_SCHEMA_VERSION, "kind": "run-start"}

    def test_from_json_rejects_foreign_version(self):
        data = event_to_json(TraceEventRecord(kind="crash", pid=1))
        data["v"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="unsupported trace"):
            event_from_json(data)

    def test_from_json_rejects_missing_version(self):
        with pytest.raises(ConfigurationError, match="unsupported trace"):
            event_from_json({"kind": "crash"})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            event_from_json([1, 2, 3])

    def test_line_round_trip_is_canonical(self):
        event = TraceEventRecord(kind="finish", pid=0, payload={"output": 3})
        line = dumps_event(event)
        assert "\n" not in line
        assert loads_event(line) == event
        # Canonical: re-dumping the parsed event reproduces the line.
        assert dumps_event(loads_event(line)) == line

    def test_loads_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            loads_event("{nope")


class TestJsonlFiles:
    def test_write_read_round_trip(self, tmp_path):
        recorder = _run_traced()
        path = tmp_path / "trace.jsonl"
        written = write_trace_jsonl(recorder.events, path)
        assert written == len(recorder.events) > 0
        assert read_trace_jsonl(path) == recorder.events

    def test_recorder_to_jsonl(self, tmp_path):
        recorder = _run_traced()
        path = tmp_path / "trace.jsonl"
        assert recorder.to_jsonl(path) == len(recorder)
        assert read_trace_jsonl(path) == recorder.events

    def test_read_rejects_tampered_version(self, tmp_path):
        recorder = _run_traced()
        path = tmp_path / "trace.jsonl"
        recorder.to_jsonl(path)
        tampered = path.read_text().replace('"v":1', '"v":99')
        path.write_text(tampered)
        with pytest.raises(ConfigurationError, match="unsupported trace"):
            read_trace_jsonl(path)

    def test_torn_final_line_warns_and_drops(self, tmp_path):
        # A crash mid-append leaves at most one unparseable final line;
        # the reader keeps the durable prefix and warns, matching the
        # checkpoint-journal contract.
        recorder = _run_traced()
        path = tmp_path / "trace.jsonl"
        recorder.to_jsonl(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v":1,"kind":"regis')
        with pytest.warns(RuntimeWarning, match="torn"):
            events = read_trace_jsonl(path)
        assert events == recorder.events

    def test_torn_truncated_tail_of_last_event_warns(self, tmp_path):
        recorder = _run_traced()
        path = tmp_path / "trace.jsonl"
        recorder.to_jsonl(path)
        # Truncate mid-way through the final line (no trailing newline).
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 9])
        with pytest.warns(RuntimeWarning, match="torn"):
            events = read_trace_jsonl(path)
        assert events == recorder.events[:-1]

    def test_unreadable_line_with_later_lines_raises(self, tmp_path):
        # Corruption that is NOT a torn tail — durable lines follow — is
        # real damage and must fail loudly, never be skipped.
        recorder = _run_traced()
        path = tmp_path / "trace.jsonl"
        recorder.to_jsonl(path)
        lines = path.read_text().splitlines()
        lines[1] = '{"nope'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="later lines exist"):
            read_trace_jsonl(path)

    def test_parseable_foreign_version_tail_still_raises(self, tmp_path):
        # The torn-tail tolerance covers only unparseable JSON; a line
        # that parses with a foreign schema version is rejected even at
        # the very end of the file.
        recorder = _run_traced()
        path = tmp_path / "trace.jsonl"
        recorder.to_jsonl(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v":99,"kind":"crash"}\n')
        with pytest.raises(ConfigurationError, match="unsupported trace"):
            read_trace_jsonl(path)


class TestTraceRecorder:
    def test_records_run_boundaries_and_operations(self):
        recorder = _run_traced(n=3, ops=4)
        kinds = [event.kind for event in recorder.events]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "run-end"
        assert len(recorder.events_of_kind("finish")) == 3
        # The spin program writes and reads registers only.
        assert recorder.events_of_kind("register-write")
        assert recorder.events_of_kind("register-read")

    def test_step_events_carry_object_and_value(self):
        recorder = _run_traced(n=2, ops=2)
        write = recorder.events_of_kind("register-write")[0]
        assert write.pid is not None
        assert write.step is not None
        assert write.payload["obj"].startswith("spin[")
        assert write.payload["op"] == "write"

    def test_include_values_false_strips_payload_values(self):
        recorder = _run_traced(n=2, ops=2, include_values=False)
        for event in recorder.events_of_kind("register-read"):
            assert "result" not in event.payload
        for event in recorder.events_of_kind("finish"):
            assert "output" not in event.payload

    def test_ring_buffer_keeps_most_recent(self):
        recorder = _run_traced(n=3, ops=6, capacity=5)
        assert len(recorder) == 5
        assert recorder.recorded_total > 5
        # The tail of the run survives eviction.
        assert recorder.events[-1].kind == "run-end"

    def test_ring_dropped_counts_evictions_exactly(self):
        recorder = _run_traced(n=3, ops=6, capacity=5)
        assert recorder.ring_dropped == recorder.recorded_total - 5
        assert recorder.ring_dropped > 0

    def test_unbounded_recorder_never_ring_drops(self):
        recorder = _run_traced(n=3, ops=6)
        assert recorder.ring_dropped == 0
        assert recorder.recorded_total == len(recorder)

    def test_ring_dropped_is_distinct_from_pid_filter_drops(self):
        # The pid filter drops events *before* recording; the ring drops
        # them *after*.  An unbounded pid-sampled recorder must count
        # only the former.
        recorder = _run_traced(n=6, ops=3, pid_sample_every=3)
        assert recorder.pid_events_dropped > 0
        assert recorder.ring_dropped == 0

    def test_metadata_reports_all_retention_counters(self):
        recorder = _run_traced(n=3, ops=6, capacity=5)
        metadata = recorder.metadata()
        assert metadata == {
            "recorded_total": recorder.recorded_total,
            "retained": 5,
            "steps_observed": recorder.steps_observed,
            "ring_dropped": recorder.ring_dropped,
            "pid_events_dropped": 0,
        }
        assert metadata["recorded_total"] - metadata["ring_dropped"] \
            == metadata["retained"]

    def test_sampling_thins_step_events_only(self):
        full = _run_traced(n=3, ops=6)
        sampled = _run_traced(n=3, ops=6, sample_every=4)
        full_steps = sum(
            1 for e in full.events if e.kind.startswith(("register", "step"))
        )
        sampled_steps = sum(
            1 for e in sampled.events if e.kind.startswith(("register", "step"))
        )
        assert 0 < sampled_steps < full_steps
        # Lifecycle events are exempt from sampling.
        assert len(sampled.events_of_kind("finish")) == 3
        assert sampled.events_of_kind("run-start")
        assert sampled.events_of_kind("run-end")

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(capacity=0)
        with pytest.raises(ConfigurationError):
            TraceRecorder(sample_every=0)

    def test_crash_fault_emits_crash_event(self):
        plan = FaultPlan(crashes=(CrashFault(pid=1, after_steps=2),))
        recorder = _run_traced(n=3, ops=4, hooks=[plan.injector()])
        crashes = recorder.events_of_kind("crash")
        assert len(crashes) == 1
        assert crashes[0].pid == 1
        assert crashes[0].payload["steps_taken"] == 2

    def test_stall_fault_emits_stall_events(self):
        # Withheld slots are not charged, so the event count depends on
        # how often the scheduler picks the stalled pid inside the window;
        # assert the semantics (pid, window) rather than a magic count.
        plan = FaultPlan(stalls=(StallFault(pid=0, start_step=1, duration=6),))
        recorder = _run_traced(n=3, ops=4, hooks=[plan.injector()])
        stalls = recorder.events_of_kind("stall")
        assert stalls
        assert all(event.pid == 0 for event in stalls)
        assert all(1 <= event.step < 7 for event in stalls)


class TestAnnotateConciliator:
    def test_derives_personae_and_round_transitions(self):
        n = 4
        conciliator = SnapshotConciliator(n)
        seeds = SeedTree(5)
        schedule = make_schedule("random", n, seeds.child("schedule"))
        recorder = TraceRecorder()
        run_conciliator(
            conciliator, list(range(n)), schedule, seeds, hooks=[recorder]
        )
        appended = recorder.annotate_conciliator(conciliator)
        adoptions = recorder.events_of_kind("persona-adoption")
        transitions = recorder.events_of_kind("round-transition")
        assert appended == len(adoptions) + len(transitions)
        # Every process adopts an initial persona at round 0.
        round0 = [e for e in adoptions if e.payload["round"] == 0]
        assert sorted(e.pid for e in round0) == list(range(n))
        # Transitions report survivor counts within [1, n].
        assert transitions
        for event in transitions:
            assert 1 <= event.payload["survivors"] <= n


class TestPidSampling:
    """The million-process mode: strided / reservoir pid filters."""

    def test_stride_keeps_only_multiple_pids(self):
        recorder = _run_traced(n=6, ops=3, pid_sample_every=3)
        step_kinds = ("register-write", "register-read", "step")
        for event in recorder.events:
            if event.kind in step_kinds or event.kind == "finish":
                assert event.pid % 3 == 0
        finishes = recorder.events_of_kind("finish")
        assert sorted(e.pid for e in finishes) == [0, 3]
        assert recorder.pid_events_dropped > 0

    def test_stride_of_one_drops_nothing(self):
        recorder = _run_traced(n=4, ops=2)
        assert recorder.pid_events_dropped == 0
        assert len(recorder.events_of_kind("finish")) == 4

    def test_reservoir_is_seeded_and_bounded(self):
        first = _run_traced(n=8, ops=3, pid_reservoir=3, reservoir_seed=5)
        second = _run_traced(n=8, ops=3, pid_reservoir=3, reservoir_seed=5)
        assert first.sampled_pids == second.sampled_pids
        assert len(first.sampled_pids) == 3
        for event in first.events:
            if event.pid is not None:
                assert event.pid in first.sampled_pids
        other = _run_traced(n=8, ops=3, pid_reservoir=3, reservoir_seed=6)
        assert other.sampled_pids != first.sampled_pids

    def test_reservoir_larger_than_n_keeps_everything(self):
        recorder = _run_traced(n=4, ops=2, pid_reservoir=100)
        assert recorder.sampled_pids == frozenset(range(4))
        assert recorder.pid_events_dropped == 0

    def test_run_boundaries_always_recorded(self):
        recorder = _run_traced(n=6, ops=3, pid_sample_every=1000)
        assert recorder.events[0].kind == "run-start"
        assert recorder.events[-1].kind == "run-end"

    def test_pid_filter_composes_with_step_sampling_stride(self):
        # The global step stride counts *observed* steps, not retained
        # ones, so adding a pid filter must not shift which steps the
        # stride selects for the surviving pids.
        dense = _run_traced(n=4, ops=6, sample_every=3)
        filtered = _run_traced(
            n=4, ops=6, sample_every=3, pid_sample_every=2
        )
        step_kinds = ("register-write", "register-read")
        dense_steps = [
            (e.pid, e.step) for e in dense.events
            if e.kind in step_kinds and e.pid % 2 == 0
        ]
        filtered_steps = [
            (e.pid, e.step) for e in filtered.events if e.kind in step_kinds
        ]
        assert filtered_steps == dense_steps

    def test_rejects_conflicting_and_invalid_filters(self):
        with pytest.raises(ConfigurationError, match="mutually"):
            TraceRecorder(pid_sample_every=2, pid_reservoir=3)
        with pytest.raises(ConfigurationError):
            TraceRecorder(pid_sample_every=0)
        with pytest.raises(ConfigurationError):
            TraceRecorder(pid_reservoir=0)
