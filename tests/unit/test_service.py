"""Unit tests for the consensus service: sessions, admission, deadlines.

Everything runs on the virtual-time loop, so tests that span many
"seconds" of queueing, backoff, and timeouts finish instantly and
deterministically.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.runtime.faults import (
    ResponseDelayFault,
    ServiceFaultPlan,
    ShardBlackoutFault,
    WorkerKillFault,
)
from repro.service import (
    ConsensusService,
    ServiceConfig,
    SessionRequest,
    SessionResponse,
    run_virtual,
)
from repro.service.session import (
    FAILED_CLIENT_DROP,
    FAILED_DEADLINE,
    FAILED_WORKER,
    REJECTED_BREAKER_OPEN,
    REJECTED_DEADLINE,
    REJECTED_QUEUE_FULL,
)


def submit_all(service, requests, **kwargs):
    """Run a batch of sessions concurrently on a virtual-time loop."""

    async def main():
        return await asyncio.gather(*(
            service.submit(request, **kwargs) for request in requests
        ))

    return run_virtual(main())


def request(i, **overrides):
    defaults = dict(
        session_id=i, algorithm="sifting", n=4,
        schedule_family="round-robin", deadline=5.0, seed=0,
    )
    defaults.update(overrides)
    return SessionRequest(**defaults)


class TestVocabulary:
    def test_request_round_trips_through_json(self):
        original = request(3, deadline=2.5)
        assert SessionRequest.from_json(original.to_json()) == original

    def test_response_round_trips_through_json(self):
        original = SessionResponse(
            session_id=3, status="rejected", code="queue-full", shard=1,
        )
        assert SessionResponse.from_json(original.to_json()) == original

    def test_status_and_code_must_agree(self):
        with pytest.raises(ConfigurationError):
            SessionResponse(session_id=0, status="completed",
                            code="queue-full")
        with pytest.raises(ConfigurationError):
            SessionResponse(session_id=0, status="rejected",
                            code="deadline-in-flight")
        with pytest.raises(ConfigurationError):
            SessionResponse(session_id=0, status="failed",
                            code="queue-full")

    def test_foreign_versions_are_rejected(self):
        data = request(0).to_json()
        data["version"] = 9
        with pytest.raises(ConfigurationError):
            SessionRequest.from_json(data)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"shards": 0},
        {"workers_per_shard": 0},
        {"queue_capacity": 0},
        {"worker_steps_per_sec": 0},
        {"vectorized_speedup": 0.5},
        {"attempt_timeout": 0},
        {"max_attempts": 0},
        {"degrade_watermark": 1.5},
        {"degrade_recover": 0.9},  # >= watermark
    ])
    def test_bad_config_is_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**kwargs)


class TestHappyPath:
    def test_sessions_complete_with_results(self):
        service = ConsensusService(ServiceConfig(seed=0))
        responses = submit_all(service, [request(i) for i in range(8)])
        assert all(r.ok for r in responses)
        for response in responses:
            assert response.backend == "generator"
            assert response.attempts == 1
            assert response.latency > 0
            assert response.result["agreement"] in (True, False)
            assert not response.degraded

    def test_sharding_routes_by_session_id(self):
        service = ConsensusService(ServiceConfig(shards=3))
        responses = submit_all(service, [request(i) for i in range(6)])
        assert [r.shard for r in responses] == [0, 1, 2, 0, 1, 2]

    def test_same_request_same_result(self):
        """The simulated round is a pure function of the request."""
        first = submit_all(ConsensusService(), [request(5)])[0]
        second = submit_all(ConsensusService(), [request(5)])[0]
        assert first.result == second.result


class TestAdmissionControl:
    def test_queue_full_rejects_with_the_right_code(self):
        config = ServiceConfig(
            shards=1, workers_per_shard=1, queue_capacity=2,
        )
        service = ConsensusService(config)
        responses = submit_all(service, [request(i) for i in range(6)])
        rejected = [r for r in responses if r.status == "rejected"]
        assert rejected and all(
            r.code == REJECTED_QUEUE_FULL for r in rejected
        )
        # Rejections spend no attempts and report zero latency.
        assert all(r.attempts == 0 and r.latency == 0.0 for r in rejected)
        completed = [r for r in responses if r.ok]
        assert len(completed) == len(responses) - len(rejected) >= 2

    def test_impossible_deadline_is_rejected_before_admission(self):
        config = ServiceConfig(dispatch_overhead=0.01)
        service = ConsensusService(config)
        response = submit_all(service, [request(0, deadline=0.005)])[0]
        assert response.status == "rejected"
        assert response.code == REJECTED_DEADLINE
        assert response.attempts == 0

    def test_breaker_open_rejects_with_the_right_code(self):
        config = ServiceConfig(shards=1)
        service = ConsensusService(config)
        breaker = service.breaker(0)
        for t in range(breaker.config.failure_threshold):
            breaker.record_failure(float(t) * 0.001)
        response = submit_all(service, [request(0)])[0]
        assert response.status == "rejected"
        assert response.code == REJECTED_BREAKER_OPEN


class TestRetriesAndFailures:
    def test_transient_kills_are_retried_to_success(self):
        chaos = ServiceFaultPlan(
            worker_kills=(WorkerKillFault(shard=0, at=0.0, count=1),),
        )
        service = ConsensusService(
            ServiceConfig(shards=1, max_attempts=3), chaos=chaos,
        )
        response = submit_all(service, [request(0)])[0]
        assert response.ok
        assert response.attempts == 2  # one kill, one success

    def test_attempts_exhausted_is_worker_failure(self):
        chaos = ServiceFaultPlan(
            worker_kills=(WorkerKillFault(shard=0, at=0.0, count=10),),
        )
        service = ConsensusService(
            ServiceConfig(shards=1, max_attempts=3), chaos=chaos,
        )
        response = submit_all(service, [request(0)])[0]
        assert response.status == "failed"
        assert response.code == FAILED_WORKER
        assert response.attempts == 3

    def test_blackout_longer_than_budget_times_out_in_flight(self):
        chaos = ServiceFaultPlan(
            blackouts=(ShardBlackoutFault(shard=0, start=0.0,
                                          duration=100.0),),
        )
        # max_attempts high enough that the deadline, not the attempt
        # budget, is what gives out.
        service = ConsensusService(
            ServiceConfig(shards=1, max_attempts=1000,
                          backoff=ServiceConfig().backoff), chaos=chaos,
        )
        response = submit_all(service, [request(0, deadline=0.5)])[0]
        assert response.status == "failed"
        assert response.code == FAILED_DEADLINE
        assert response.latency <= 0.5 + 1e-9

    def test_slow_worker_attempt_is_cut_at_the_timeout(self):
        """A response delay pushing service time past attempt_timeout
        fails the attempt rather than blocking the worker forever."""
        chaos = ServiceFaultPlan(
            response_delays=(ResponseDelayFault(
                shard=0, start=0.0, duration=100.0, delay=10.0,
            ),),
        )
        service = ConsensusService(
            ServiceConfig(shards=1, max_attempts=2, attempt_timeout=0.5),
            chaos=chaos,
        )
        response = submit_all(service, [request(0, deadline=3.0)])[0]
        assert response.status == "failed"
        assert response.code == FAILED_WORKER
        # Two attempts, each cut at 0.5s, plus jittered backoff < 0.5s.
        assert response.latency < 2.0

    def test_client_drop_converts_a_late_completion(self):
        service = ConsensusService(ServiceConfig(shards=1))
        response = submit_all(
            service, [request(0)], drop_at=0.0,  # hung up immediately
        )[0]
        assert response.status == "failed"
        assert response.code == FAILED_CLIENT_DROP
        # Capacity was spent: the attempt ran to completion.
        assert response.attempts == 1


class TestBreakerHygiene:
    def test_probe_dying_on_deadline_does_not_wedge_the_breaker(self):
        """Regression: a session admitted as the only half-open probe
        that dies on its deadline before any attempt (stalled client)
        must release the probe slot; leaking it would leave allow()
        refusing every future session on the shard forever."""
        from repro.service.breaker import BreakerConfig

        config = ServiceConfig(
            shards=1, breaker=BreakerConfig(half_open_probes=1),
        )
        service = ConsensusService(config)

        async def main():
            loop = asyncio.get_running_loop()
            breaker = service.breaker(0)
            for _ in range(breaker.config.failure_threshold):
                breaker.record_failure(loop.time())
            assert breaker.state == "open"
            await asyncio.sleep(breaker.config.cooldown + 0.01)
            # The probe: stalls through its whole budget, dies with no
            # worker attempt and therefore no breaker outcome.
            dead = await service.submit(
                request(0, deadline=0.5), client_stall=1.0,
            )
            # The shard must still be probe-able afterwards.
            recovered = await service.submit(request(0, deadline=5.0))
            return dead, recovered

        dead, recovered = run_virtual(main())
        assert dead.status == "failed"
        assert dead.code == FAILED_DEADLINE
        assert dead.attempts == 0
        assert recovered.ok
        breaker = service.breaker(0)
        assert breaker.state == "closed"
        assert breaker.to_json()["closed_again"] == 1

    def test_budget_clipped_timeouts_do_not_trip_the_breaker(self):
        """A burst of short-deadline clients abandoning attempts at a
        budget-clipped timeout says nothing about shard health: the
        breaker must stay closed, and the sessions fail as deadline
        misses, not worker failures."""
        chaos = ServiceFaultPlan(
            response_delays=(ResponseDelayFault(
                shard=0, start=0.0, duration=100.0, delay=1.0,
            ),),
        )
        service = ConsensusService(
            ServiceConfig(shards=1, max_attempts=2, attempt_timeout=2.0),
            chaos=chaos,
        )
        # More clipped abandonments than the failure threshold.
        count = service.breaker(0).config.failure_threshold + 2
        responses = submit_all(
            service, [request(i, deadline=0.5) for i in range(count)],
        )
        assert all(r.code == FAILED_DEADLINE for r in responses)
        breaker = service.breaker(0)
        assert breaker.state == "closed"
        assert breaker.to_json()["opened"] == 0


class TestDeadlinePropagation:
    def collect_calls(self, deadline, client_stall=0.0, chaos=None):
        config = ServiceConfig(
            shards=1, max_attempts=4, attempt_timeout=0.5,
            record_calls=True,
        )
        service = ConsensusService(config, chaos=chaos)
        submit_all(
            service, [request(0, deadline=deadline)],
            client_stall=client_stall,
        )
        return service.calls

    def test_worker_timeout_never_exceeds_remaining_budget(self):
        """THE invariant: every worker call's timeout is bounded by the
        session's remaining deadline budget at dispatch time."""
        chaos = ServiceFaultPlan(
            worker_kills=(WorkerKillFault(shard=0, at=0.0, count=3),),
        )
        for deadline in (0.05, 0.2, 1.0, 5.0):
            calls = self.collect_calls(deadline, chaos=chaos)
            assert calls, "expected at least one worker call"
            for call in calls:
                assert call["timeout"] <= call["remaining"] + 1e-12
                assert call["remaining"] <= deadline + 1e-12

    def test_tight_budgets_shrink_the_timeout_below_the_ceiling(self):
        calls = self.collect_calls(deadline=0.3)
        assert calls[0]["timeout"] == pytest.approx(0.3, abs=1e-9)
        assert calls[0]["timeout"] < 0.5  # attempt_timeout ceiling unused

    def test_client_stall_burns_budget_before_the_first_attempt(self):
        stalled = self.collect_calls(deadline=2.0, client_stall=1.5)
        fresh = self.collect_calls(deadline=2.0)
        assert stalled[0]["remaining"] == pytest.approx(0.5, abs=1e-9)
        assert fresh[0]["remaining"] == pytest.approx(2.0, abs=1e-9)

    def test_retry_attempts_see_monotonically_shrinking_budgets(self):
        chaos = ServiceFaultPlan(
            worker_kills=(WorkerKillFault(shard=0, at=0.0, count=3),),
        )
        calls = self.collect_calls(deadline=5.0, chaos=chaos)
        assert [call["attempt"] for call in calls] == [0, 1, 2, 3]
        budgets = [call["remaining"] for call in calls]
        assert budgets == sorted(budgets, reverse=True)
        assert budgets[0] > budgets[-1]

    def test_admission_rejections_never_reach_a_worker(self):
        """Rejected-on-admission and timed-out-in-flight are distinct:
        the former produces zero worker calls and a rejection code, the
        latter spends attempts and reports a failure code."""
        config = ServiceConfig(
            shards=1, dispatch_overhead=0.01, record_calls=True,
        )
        service = ConsensusService(config)
        preadmission = submit_all(
            service, [request(0, deadline=0.005)]
        )[0]
        assert preadmission.code == REJECTED_DEADLINE
        assert preadmission.status == "rejected"
        assert service.calls == []

        chaos = ServiceFaultPlan(
            blackouts=(ShardBlackoutFault(shard=0, start=0.0,
                                          duration=100.0),),
        )
        slow = ConsensusService(
            ServiceConfig(shards=1, max_attempts=1000, record_calls=True),
            chaos=chaos,
        )
        in_flight = submit_all(slow, [request(0, deadline=0.3)])[0]
        assert in_flight.code == FAILED_DEADLINE
        assert in_flight.status == "failed"
        assert slow.calls != []


class TestDegradation:
    def test_sustained_overload_degrades_then_recovers(self):
        config = ServiceConfig(
            shards=1, workers_per_shard=1, queue_capacity=8,
            worker_steps_per_sec=500.0,   # slow workers: overload builds
            attempt_timeout=10.0,
            degrade_watermark=0.5, degrade_after=0.05, degrade_recover=0.25,
        )
        service = ConsensusService(config)
        responses = submit_all(
            service,
            [request(i, schedule_family="permuted", deadline=60.0)
             for i in range(8)],
        )
        degraded = [r for r in responses if r.ok and r.degraded]
        assert degraded, "sustained overload should trigger degradation"
        assert all(r.backend == "vectorized" for r in degraded)
        assert service.degraded_entries >= 1
        assert not service.degraded  # drained and recovered

    def test_ineligible_algorithms_stay_on_the_generator(self):
        config = ServiceConfig(
            shards=1, workers_per_shard=1, queue_capacity=8,
            worker_steps_per_sec=500.0,
            attempt_timeout=10.0,
            degrade_watermark=0.5, degrade_after=0.05, degrade_recover=0.25,
        )
        service = ConsensusService(config)
        responses = submit_all(
            service,
            [request(i, algorithm="cil-embedded",
                     schedule_family="permuted", deadline=60.0)
             for i in range(8)],
        )
        assert all(r.ok for r in responses)
        assert all(not r.degraded for r in responses)
        assert all(r.backend == "generator" for r in responses)


class TestMetrics:
    def test_terminal_states_are_counted_once(self):
        config = ServiceConfig(
            shards=1, workers_per_shard=1, queue_capacity=2,
        )
        service = ConsensusService(config)
        responses = submit_all(service, [request(i) for i in range(6)])
        completed = sum(1 for r in responses if r.ok)
        rejected = sum(1 for r in responses if r.status == "rejected")
        assert service.metrics.counter_value(
            "service.completed", backend="generator"
        ) == completed
        assert service.metrics.counter_value(
            "service.rejected", reason=REJECTED_QUEUE_FULL
        ) == rejected
        histogram = service.metrics.histogram_for("service.latency")
        assert histogram is not None and histogram.count == completed
