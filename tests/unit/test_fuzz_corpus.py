"""Unit tests for the regression corpus format and replay."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fuzz import (
    CorpusCase,
    Scenario,
    case_filename,
    load_case,
    load_corpus,
    replay_case,
    save_case,
)
from repro.workloads.schedules import ScheduleSpec


def make_case(note="", seed=3, oracles=("validity",)):
    return CorpusCase(
        scenario=Scenario(
            stack="sifting", n=2, workload="binary", seed=seed,
            schedule=ScheduleSpec("round-robin", 2),
        ),
        oracles=tuple(oracles),
        note=note,
    )


class TestCorpusCase:
    def test_round_trip(self):
        case = make_case(note="found by trial 7")
        assert CorpusCase.from_json(case.to_json()) == case

    def test_oracles_are_sorted_and_required(self):
        case = make_case(oracles=("wait-freedom", "agreement"))
        assert case.oracles == ("agreement", "wait-freedom")
        with pytest.raises(ConfigurationError, match="oracle"):
            make_case(oracles=())

    def test_unknown_version_rejected(self):
        data = make_case().to_json()
        data["version"] = 2
        with pytest.raises(ConfigurationError, match="version"):
            CorpusCase.from_json(data)

    def test_wrong_kind_rejected(self):
        data = make_case().to_json()
        data["kind"] = "something-else"
        with pytest.raises(ConfigurationError, match="kind"):
            CorpusCase.from_json(data)

    def test_canonical_bytes_are_stable_and_parse(self):
        case = make_case()
        assert case.canonical_bytes() == case.canonical_bytes()
        assert case.canonical_bytes().endswith(b"\n")
        assert CorpusCase.from_json(json.loads(case.canonical_bytes())) == case

    def test_identity_excludes_provenance_note(self):
        a, b = make_case(note="campaign A"), make_case(note="campaign B")
        assert a.identity_bytes() == b.identity_bytes()
        assert case_filename(a) == case_filename(b)
        assert case_filename(a) != case_filename(make_case(seed=4))


class TestCorpusIo:
    def test_save_is_idempotent(self, tmp_path):
        case = make_case()
        first = save_case(case, tmp_path)
        stamp = first.read_bytes()
        second = save_case(case, tmp_path)
        assert first == second
        assert second.read_bytes() == stamp
        assert len(list(tmp_path.glob("case-*.json"))) == 1

    def test_load_corpus_sorted_and_round_trips(self, tmp_path):
        cases = [make_case(seed=seed) for seed in (9, 4, 6)]
        for case in cases:
            save_case(case, tmp_path)
        loaded = load_corpus(tmp_path)
        assert [path.name for path, _ in loaded] == sorted(
            path.name for path, _ in loaded
        )
        assert {case for _, case in loaded} == set(cases)

    def test_load_corpus_missing_dir_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_load_case_rejects_garbage(self, tmp_path):
        path = tmp_path / "case-bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not JSON"):
            load_case(path)


class TestReplay:
    def test_honest_case_does_not_reproduce(self):
        # An honest scenario recorded with a bogus expected oracle must
        # come back reproduced=False with that oracle listed as missing.
        report = replay_case(make_case(oracles=("validity",)))
        assert not report.reproduced
        assert report.missing == ("validity",)
        assert report.outcome.status == "ok"

    def test_planted_case_reproduces(self):
        from repro.fuzz import run_scenario

        for seed in range(40):
            scenario = Scenario(
                stack="planted-validity", n=2, workload="distinct", seed=seed,
                schedule=ScheduleSpec("round-robin", 2),
            )
            if "validity" in run_scenario(scenario).oracle_names:
                break
        else:  # pragma: no cover - probability < 2^-40
            pytest.fail("no reproducing seed found")
        report = replay_case(CorpusCase(scenario=scenario,
                                        oracles=("validity",)))
        assert report.reproduced
        assert report.matched == ("validity",)
