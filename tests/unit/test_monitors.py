"""Unit tests for inline invariant monitors (repro.runtime.monitors)."""

import pytest

from repro.adoptcommit.base import ADOPT, COMMIT, AdoptCommitResult
from repro.errors import ConfigurationError, ProtocolViolationError
from repro.memory.register import AtomicRegister
from repro.runtime.faults import CrashFault, FaultPlan, RegisterFault
from repro.runtime.monitors import (
    AdoptCommitCoherenceMonitor,
    InvariantViolation,
    RegisterSemanticsMonitor,
    ValidityMonitor,
    WaitFreedomWatchdog,
)
from repro.runtime.operations import Read, Write
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RoundRobinSchedule
from repro.runtime.simulator import run_programs


def constant_program(value, steps=1):
    def program(ctx):
        register = AtomicRegister(f"pad-{ctx.pid}")
        for _ in range(steps):
            yield Write(register, ctx.pid)
        return value

    return program


class TestValidityMonitor:
    def test_valid_outputs_pass(self):
        monitor = ValidityMonitor(allowed_inputs=[0, 1])
        run_programs(
            [constant_program(0), constant_program(1)],
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[monitor],
        )
        assert monitor.ok
        assert monitor.violations == []

    def test_invented_value_raises_in_strict_mode(self):
        monitor = ValidityMonitor(allowed_inputs=[0, 1])
        with pytest.raises(ProtocolViolationError, match="not among the inputs"):
            run_programs(
                [constant_program(42)],
                RoundRobinSchedule(1),
                SeedTree(0),
                hooks=[monitor],
            )

    def test_non_strict_mode_records_and_continues(self):
        monitor = ValidityMonitor(allowed_inputs=[0, 1], strict=False)
        result = run_programs(
            [constant_program(42), constant_program(0)],
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[monitor],
        )
        assert result.completed
        assert not monitor.ok
        assert len(monitor.violations) == 1
        violation = monitor.violations[0]
        assert violation.monitor == "validity"
        assert violation.pid == 0
        assert "42" in str(violation)

    def test_adopt_commit_outputs_are_unwrapped(self):
        monitor = ValidityMonitor(allowed_inputs=["a", "b"])
        outcome = AdoptCommitResult(COMMIT, "a")
        run_programs(
            [constant_program(outcome)],
            RoundRobinSchedule(1),
            SeedTree(0),
            hooks=[monitor],
        )
        assert monitor.ok


class TestAdoptCommitCoherenceMonitor:
    def test_coherent_outcomes_pass(self):
        monitor = AdoptCommitCoherenceMonitor()
        run_programs(
            [
                constant_program(AdoptCommitResult(COMMIT, "v")),
                constant_program(AdoptCommitResult(ADOPT, "v")),
            ],
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[monitor],
        )
        assert monitor.ok

    def test_two_committed_values_flagged(self):
        monitor = AdoptCommitCoherenceMonitor(strict=False)
        run_programs(
            [
                constant_program(AdoptCommitResult(COMMIT, "x")),
                constant_program(AdoptCommitResult(COMMIT, "y")),
            ],
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[monitor],
        )
        assert not monitor.ok
        assert "committed" in monitor.violations[0].message

    def test_adopt_differing_from_commit_flagged(self):
        monitor = AdoptCommitCoherenceMonitor(strict=False)
        run_programs(
            [
                constant_program(AdoptCommitResult(COMMIT, "x")),
                constant_program(AdoptCommitResult(ADOPT, "y")),
            ],
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[monitor],
        )
        assert not monitor.ok

    def test_bare_outputs_are_ignored(self):
        monitor = AdoptCommitCoherenceMonitor()
        run_programs(
            [constant_program("just-a-value")],
            RoundRobinSchedule(1),
            SeedTree(0),
            hooks=[monitor],
        )
        assert monitor.ok


class TestWaitFreedomWatchdog:
    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WaitFreedomWatchdog(0)

    def test_fast_processes_pass(self):
        watchdog = WaitFreedomWatchdog(step_budget=10)
        run_programs(
            [constant_program(0, steps=3)] * 2,
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[watchdog],
        )
        assert watchdog.ok

    def test_overrunning_process_flagged_once(self):
        watchdog = WaitFreedomWatchdog(step_budget=2, strict=False)
        result = run_programs(
            [constant_program(0, steps=6)],
            RoundRobinSchedule(1),
            SeedTree(0),
            hooks=[watchdog],
        )
        assert result.completed
        assert not watchdog.ok
        assert len(watchdog.violations) == 1  # flagged once, not per step
        assert "budget 2" in watchdog.violations[0].message

    def test_strict_mode_halts_at_offending_step(self):
        watchdog = WaitFreedomWatchdog(step_budget=2)
        with pytest.raises(ProtocolViolationError, match="without deciding"):
            run_programs(
                [constant_program(0, steps=6)],
                RoundRobinSchedule(1),
                SeedTree(0),
                hooks=[watchdog],
            )

    def test_crashed_processes_are_exempt(self):
        # pid 0 crashes after 1 step and would have overrun the budget;
        # the watchdog must not blame the crash victim.
        watchdog = WaitFreedomWatchdog(step_budget=3, strict=False)
        plan = FaultPlan(crashes=(CrashFault(pid=0, after_steps=1),))
        run_programs(
            [constant_program(0, steps=10), constant_program(1, steps=2)],
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=[plan.injector(), watchdog],
            allow_partial=True,
        )
        assert watchdog.ok


class TestRegisterSemanticsMonitor:
    def test_honest_registers_pass(self):
        register = AtomicRegister("r")
        monitor = RegisterSemanticsMonitor()

        def program(ctx):
            yield Write(register, ctx.pid)
            value = yield Read(register)
            return value

        run_programs(
            [program] * 3, RoundRobinSchedule(3), SeedTree(0), hooks=[monitor]
        )
        assert monitor.ok

    def test_lossy_write_detected(self):
        register = AtomicRegister("r")
        plan = FaultPlan(
            register_faults=(
                RegisterFault(kind="lossy-write", obj_name="r"),
            ),
            allow_out_of_model=True,
        )
        monitor = RegisterSemanticsMonitor(strict=False)

        def program(ctx):
            yield Write(register, "v")
            value = yield Read(register)
            return value

        # Injector first, monitor second: the monitor observes the faulty
        # execution, exactly as it would observe a buggy emulation.
        run_programs(
            [program],
            RoundRobinSchedule(1),
            SeedTree(0),
            hooks=[plan.injector(), monitor],
        )
        assert not monitor.ok
        assert "atomic register semantics" in monitor.violations[0].message

    def test_reads_before_any_write_are_unchecked(self):
        register = AtomicRegister("r", initial="seeded")
        monitor = RegisterSemanticsMonitor()

        def program(ctx):
            value = yield Read(register)
            return value

        run_programs(
            [program], RoundRobinSchedule(1), SeedTree(0), hooks=[monitor]
        )
        assert monitor.ok


class TestInvariantViolation:
    def test_str_includes_monitor_and_pid(self):
        violation = InvariantViolation("validity", 3, "bad value")
        assert str(violation) == "[validity] pid 3: bad value"

    def test_str_without_pid(self):
        violation = InvariantViolation("validity", None, "bad value")
        assert str(violation) == "[validity] bad value"
