"""Unit tests for the plain CIL conciliator and the doubling baseline."""

import pytest

import helpers
from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.baselines.naive_conciliator import NaiveConciliator
from repro.core.cil import CILConciliator
from repro.core.rounds import cil_write_probability
from repro.runtime.scheduler import ExplicitSchedule, RoundRobinSchedule


class TestCILConciliator:
    def test_default_write_probability(self):
        conciliator = CILConciliator(8)
        assert conciliator.write_probability == cil_write_probability(8)

    def test_terminates_and_valid(self):
        n = 6
        conciliator = CILConciliator(n)
        result = helpers.run_conciliator_once(conciliator, list(range(n)), seed=1)
        assert result.completed
        assert result.validity_holds({pid: pid for pid in range(n)})

    def test_write_probability_one_first_process_wins_sequentially(self):
        # With p=1 and a sequential schedule, process 0 reads empty, writes,
        # and every later process reads 0's value and adopts it.
        n = 4
        conciliator = CILConciliator(n, write_probability=1.0)
        slots = [pid for pid in range(n) for _ in range(2)]
        result = helpers.run_conciliator_once(
            conciliator, list(range(n)),
            schedule=ExplicitSchedule(slots, n=n), seed=2,
        )
        assert result.agreement
        assert result.decided_values == {0}

    def test_write_probability_one_round_robin_all_keep_own(self):
        # Under round-robin everyone's first read sees an empty register
        # (no writes have happened yet), so with p=1 everyone then writes
        # its own value: total disagreement — the CIL failure mode the
        # 1/(4n) probability is tuned to avoid.
        n = 4
        conciliator = CILConciliator(n, write_probability=1.0)
        result = helpers.run_conciliator_once(
            conciliator, list(range(n)), schedule=RoundRobinSchedule(n), seed=2
        )
        assert result.outputs == {pid: pid for pid in range(n)}

    def test_reader_after_writer_adopts(self):
        conciliator = CILConciliator(2, write_probability=1.0)
        result = helpers.run_conciliator_once(
            conciliator,
            ["first", "second"],
            schedule=ExplicitSchedule([0, 0, 1], n=2),
            seed=3,
        )
        assert result.decided_values == {"first"}

    def test_agreement_rate_is_constant(self):
        n = 8
        rate = helpers.agreement_rate(
            lambda: CILConciliator(n), list(range(n)), trials=60, seed=4
        )
        # Paper: once written, survives alone with probability > 3/4.
        assert rate > 0.5

    def test_unanimous_inputs_agree_always(self):
        conciliator = CILConciliator(5)
        result = helpers.run_conciliator_once(conciliator, ["v"] * 5, seed=5)
        assert result.decided_values == {"v"}


class TestDoublingCIL:
    def test_step_bound_is_logarithmic(self):
        import math

        for n in (2, 16, 1024):
            conciliator = DoublingCILConciliator(n)
            assert conciliator.step_bound() == 2 * (math.ceil(math.log2(2 * n)) + 1)

    def test_never_exceeds_step_bound(self):
        n = 16
        for seed in range(10):
            conciliator = DoublingCILConciliator(n)
            result = helpers.run_conciliator_once(
                conciliator, list(range(n)), seed=seed
            )
            assert result.max_individual_steps <= conciliator.step_bound()

    def test_terminates_valid_all_seeds(self):
        n = 8
        for seed in range(10):
            conciliator = DoublingCILConciliator(n)
            result = helpers.run_conciliator_once(
                conciliator, list(range(n)), seed=seed
            )
            assert result.completed
            assert result.validity_holds({pid: pid for pid in range(n)})

    def test_constant_agreement_probability(self):
        n = 16
        rate = helpers.agreement_rate(
            lambda: DoublingCILConciliator(n), list(range(n)), trials=60, seed=6
        )
        assert rate > 0.3

    def test_solo_process(self):
        conciliator = DoublingCILConciliator(1)
        result = helpers.run_conciliator_once(conciliator, ["x"], seed=7)
        assert result.outputs[0] == "x"


class TestNaiveConciliator:
    def test_two_steps_always(self):
        n = 8
        conciliator = NaiveConciliator(n)
        result = helpers.run_conciliator_once(conciliator, list(range(n)), seed=1)
        assert all(steps == 2 for steps in result.steps_by_pid.values())

    def test_round_robin_agrees_on_last_writer(self):
        n = 4
        conciliator = NaiveConciliator(n)
        result = helpers.run_conciliator_once(
            conciliator, list(range(n)), schedule=RoundRobinSchedule(n), seed=2
        )
        assert result.decided_values == {n - 1}

    def test_adversary_forces_total_disagreement(self):
        # write-all? No: each process writes then reads. Schedule each
        # process's two steps consecutively and each sees itself... only the
        # last writer is seen by later processes, so run processes in
        # *reverse* solo order: every process sees its own write.
        n = 4
        conciliator = NaiveConciliator(n)
        slots = []
        for pid in range(n):
            slots.extend([pid, pid])
        result = helpers.run_conciliator_once(
            conciliator, list(range(n)), schedule=ExplicitSchedule(slots, n=n),
            seed=3,
        )
        # Solo runs: every process reads back its own value — no agreement.
        assert len(result.decided_values) == n

    def test_validity(self):
        conciliator = NaiveConciliator(3)
        result = helpers.run_conciliator_once(conciliator, ["a", "b", "c"], seed=4)
        assert result.validity_holds({0: "a", 1: "b", 2: "c"})
