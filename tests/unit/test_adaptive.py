"""Unit tests for the adaptive-adversary runtime."""

import pytest

from repro.errors import SimulationError, StepLimitExceededError
from repro.memory.register import AtomicRegister
from repro.runtime.adaptive import (
    AdversaryView,
    LongestFirstAdversary,
    PendingKindAdversary,
    RandomAdaptiveAdversary,
    ShortestFirstAdversary,
    SiftKillerAdversary,
    run_adaptive_programs,
)
from repro.runtime.operations import Read, Write
from repro.runtime.rng import SeedTree


def write_then_read(register):
    def program(ctx):
        yield Write(register, ctx.pid)
        value = yield Read(register)
        return value

    return program


class TestRunAdaptive:
    def test_completes_and_counts_steps(self):
        register = AtomicRegister("r")
        result = run_adaptive_programs(
            [write_then_read(register)] * 3,
            RandomAdaptiveAdversary(1),
            SeedTree(0),
        )
        assert result.completed
        assert all(steps == 2 for steps in result.steps_by_pid.values())

    def test_deterministic_given_seeds(self):
        outcomes = []
        for _ in range(2):
            register = AtomicRegister("r")
            result = run_adaptive_programs(
                [write_then_read(register)] * 4,
                RandomAdaptiveAdversary(9),
                SeedTree(3),
            )
            outcomes.append(result.outputs)
        assert outcomes[0] == outcomes[1]

    def test_trace_recording(self):
        register = AtomicRegister("r")
        result = run_adaptive_programs(
            [write_then_read(register)] * 2,
            ShortestFirstAdversary(),
            SeedTree(0),
            record_trace=True,
        )
        assert len(result.trace) == result.total_steps

    def test_step_limit(self):
        register = AtomicRegister("r")

        def forever(ctx):
            while True:
                yield Read(register)

        with pytest.raises(StepLimitExceededError):
            run_adaptive_programs(
                [forever], ShortestFirstAdversary(), SeedTree(0),
                step_limit=50,
            )

    def test_input_length_checked(self):
        register = AtomicRegister("r")
        with pytest.raises(SimulationError):
            run_adaptive_programs(
                [write_then_read(register)] * 2,
                ShortestFirstAdversary(),
                SeedTree(0),
                inputs=[1],
            )


class TestStrategies:
    def test_pending_kind_prefers_listed_kind(self):
        register = AtomicRegister("r")

        def reader(ctx):
            value = yield Read(register)
            return ("read-first", value)

        def writer(ctx):
            yield Write(register, "w")
            return "wrote"

        # Readers scheduled before writers: the reader must see None.
        result = run_adaptive_programs(
            [writer, reader],
            PendingKindAdversary(["read"]),
            SeedTree(0),
        )
        assert result.outputs[1] == ("read-first", None)

    def test_pending_kind_write_priority(self):
        register = AtomicRegister("r")

        def reader(ctx):
            value = yield Read(register)
            return value

        def writer(ctx):
            yield Write(register, "w")
            return "wrote"

        result = run_adaptive_programs(
            [reader, writer],
            PendingKindAdversary(["write"]),
            SeedTree(0),
        )
        assert result.outputs[0] == "w"

    def test_longest_first_runs_one_process_to_completion(self):
        register = AtomicRegister("r")

        def program(ctx):
            for _ in range(5):
                yield Write(register, ctx.pid)
            value = yield Read(register)
            return value

        result = run_adaptive_programs(
            [program] * 3, LongestFirstAdversary(), SeedTree(0),
            record_trace=True,
        )
        # The first scheduled process keeps the lead and finishes before
        # anyone else starts.
        first_six = [event.pid for event in result.trace.events[:6]]
        assert len(set(first_six)) == 1

    def test_shortest_first_is_round_robin_like(self):
        register = AtomicRegister("r")

        def program(ctx):
            yield Write(register, ctx.pid)
            yield Write(register, ctx.pid)
            return "done"

        result = run_adaptive_programs(
            [program] * 3, ShortestFirstAdversary(), SeedTree(0),
            record_trace=True,
        )
        pids = [event.pid for event in result.trace.events[:3]]
        assert pids == [0, 1, 2]

    def test_sift_killer_runs_empty_readers_first(self):
        register = AtomicRegister("r")

        def reader(ctx):
            value = yield Read(register)
            return value

        def writer(ctx):
            yield Write(register, "w")
            return "wrote"

        result = run_adaptive_programs(
            [writer, reader], SiftKillerAdversary(), SeedTree(0),
        )
        # The reader ran while the register was still empty.
        assert result.outputs[1] is None


class TestAdversaryBreaksSifting:
    """The E18 punchline at unit-test scale: a content-aware adversary
    pushes Algorithm 2 below its oblivious floor, while Algorithm 1 is
    structurally immune (its two ops per round are the same kinds for
    everyone)."""

    def test_readers_first_defeats_the_sift(self):
        from repro.core.sifting_conciliator import SiftingConciliator

        # The attack strengthens with n (~0.30 at n=32 vs ~0.9 oblivious).
        n, trials = 32, 40
        agreed = 0
        for trial in range(trials):
            conciliator = SiftingConciliator(n)
            result = run_adaptive_programs(
                [conciliator.program] * n,
                PendingKindAdversary(["read"]),
                SeedTree(trial),
                inputs=list(range(n)),
            )
            agreed += result.agreement
        # Well below the 1 - eps = 0.5 oblivious floor.
        assert agreed / trials < 0.5

    def test_snapshot_conciliator_resists_the_same_adversary(self):
        from repro.core.snapshot_conciliator import SnapshotConciliator

        n, trials = 16, 30
        agreed = 0
        for trial in range(trials):
            conciliator = SnapshotConciliator(n)
            result = run_adaptive_programs(
                [conciliator.program] * n,
                PendingKindAdversary(["scan"]),
                SeedTree(trial),
                inputs=list(range(n)),
            )
            agreed += result.agreement
        assert agreed / trials >= 0.5

    def test_validity_and_termination_survive_any_adversary(self):
        from repro.core.sifting_conciliator import SiftingConciliator

        n = 8
        for adversary in (
            PendingKindAdversary(["read"]),
            SiftKillerAdversary(),
            LongestFirstAdversary(),
            ShortestFirstAdversary(),
        ):
            conciliator = SiftingConciliator(n)
            result = run_adaptive_programs(
                [conciliator.program] * n, adversary, SeedTree(5),
                inputs=list(range(n)),
            )
            assert result.completed
            assert result.validity_holds({pid: pid for pid in range(n)})


class TestAdaptiveUnderFullMonitorSuite:
    """Every adaptive adversary family, with the complete invariant-monitor
    suite riding along as hooks: no monitor may record a violation against
    an honest protocol, whatever the adversary does."""

    ADVERSARIES = (
        lambda: PendingKindAdversary(["read"]),
        lambda: PendingKindAdversary(["write"]),
        lambda: LongestFirstAdversary(),
        lambda: ShortestFirstAdversary(),
        lambda: RandomAdaptiveAdversary(7),
        lambda: SiftKillerAdversary(),
    )

    def run_under_monitors(self, conciliator, adversary, inputs, seed=3):
        from repro.runtime.monitors import (
            AdoptCommitCoherenceMonitor,
            RegisterSemanticsMonitor,
            ValidityMonitor,
            WaitFreedomWatchdog,
        )

        n = len(inputs)
        monitors = [
            ValidityMonitor(inputs, strict=False),
            AdoptCommitCoherenceMonitor(strict=False),
            WaitFreedomWatchdog(conciliator.step_bound(), strict=False),
            RegisterSemanticsMonitor(strict=False),
        ]
        result = run_adaptive_programs(
            [conciliator.program] * n,
            adversary,
            SeedTree(seed),
            inputs=list(inputs),
            hooks=monitors,
            record_trace=True,
        )
        return result, monitors

    def test_sifting_is_clean_under_every_adversary(self):
        from repro.core.sifting_conciliator import SiftingConciliator

        n = 6
        for make_adversary in self.ADVERSARIES:
            result, monitors = self.run_under_monitors(
                SiftingConciliator(n), make_adversary(), list(range(n)),
            )
            assert result.completed
            for monitor in monitors:
                assert monitor.violations == [], type(monitor).__name__

    def test_snapshot_is_clean_under_every_adversary(self):
        from repro.core.snapshot_conciliator import SnapshotConciliator

        n = 5
        for make_adversary in self.ADVERSARIES:
            result, monitors = self.run_under_monitors(
                SnapshotConciliator(n), make_adversary(), list(range(n)),
            )
            assert result.completed
            for monitor in monitors:
                assert monitor.violations == [], type(monitor).__name__

    def test_watchdog_exposes_a_planted_step_hog_under_adaptive(self):
        # Sanity-check the suite has teeth in the adaptive runtime too: an
        # absurdly tight step budget must be reported by the watchdog.
        from repro.core.sifting_conciliator import SiftingConciliator
        from repro.runtime.monitors import WaitFreedomWatchdog

        n = 4
        conciliator = SiftingConciliator(n)
        watchdog = WaitFreedomWatchdog(1, strict=False)
        result = run_adaptive_programs(
            [conciliator.program] * n,
            RandomAdaptiveAdversary(1),
            SeedTree(2),
            inputs=list(range(n)),
            hooks=[watchdog],
        )
        assert result.completed
        assert watchdog.violations
        assert all(v.monitor == "wait-freedom" for v in watchdog.violations)
