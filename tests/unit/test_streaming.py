"""Unit and property tests for the O(1)-memory streaming schedules."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import (
    ReversedRoundRobinSchedule,
    RoundRobinSchedule,
)
from repro.runtime.streaming import (
    FeistelPermutation,
    StreamingInterleavedSchedule,
    StreamingPermutedSchedule,
    StreamingRandomSchedule,
    StreamingReversedSchedule,
    StreamingRoundRobinSchedule,
)
from repro.workloads.schedules import (
    MATERIALIZED_FAMILIES,
    MAX_MATERIALIZED_N,
    STREAMING_FAMILIES,
    ScheduleSpec,
    make_schedule,
)


def _take(schedule, count):
    iterator = iter(schedule)
    return [next(iterator) for _ in range(count)]


class TestFeistelPermutation:
    @pytest.mark.parametrize("domain", [1, 2, 3, 7, 16, 100, 1000])
    @pytest.mark.parametrize("seed", [0, 1, 0xDEADBEEF])
    def test_is_a_permutation(self, domain, seed):
        table = FeistelPermutation(domain, seed).table()
        assert sorted(table) == list(range(domain))

    def test_deterministic_per_seed(self):
        assert (FeistelPermutation(50, 7).table()
                == FeistelPermutation(50, 7).table())

    def test_seeds_give_different_permutations(self):
        # With domain 100! possible orders, two seeds colliding would be
        # astronomically unlikely unless the keying were broken.
        assert (FeistelPermutation(100, 1).table()
                != FeistelPermutation(100, 2).table())

    def test_rejects_out_of_domain_index(self):
        prp = FeistelPermutation(10, 3)
        with pytest.raises(ConfigurationError, match="outside"):
            prp.apply(10)
        with pytest.raises(ConfigurationError, match="outside"):
            prp.apply(-1)

    def test_rejects_empty_domain(self):
        with pytest.raises(ConfigurationError, match="domain"):
            FeistelPermutation(0, 1)


class TestDropInIdenticalFamilies:
    """streaming-round-robin / streaming-reversed are bit-identical."""

    @pytest.mark.parametrize("n", [1, 2, 3, 8, 17])
    def test_round_robin_streams_match(self, n):
        count = 4 * n + 3
        assert (_take(StreamingRoundRobinSchedule(n), count)
                == _take(RoundRobinSchedule(n), count))

    @pytest.mark.parametrize("n", [1, 2, 3, 8, 17])
    def test_reversed_streams_match(self, n):
        count = 4 * n + 3
        assert (_take(StreamingReversedSchedule(n), count)
                == _take(ReversedRoundRobinSchedule(n), count))

    def test_finite_rounds_honored(self):
        assert list(StreamingRoundRobinSchedule(3, rounds=2)) == [
            0, 1, 2, 0, 1, 2,
        ]
        assert list(StreamingReversedSchedule(3, rounds=2)) == [
            2, 1, 0, 2, 1, 0,
        ]


class TestStreamingPermuted:
    @pytest.mark.parametrize("n", [1, 2, 5, 32, 100])
    def test_each_pass_is_a_permutation(self, n):
        schedule = StreamingPermutedSchedule(n, seed=42)
        stream = _take(schedule, 3 * n)
        for pass_index in range(3):
            window = stream[pass_index * n:(pass_index + 1) * n]
            assert sorted(window) == list(range(n))

    def test_passes_differ(self):
        n = 64
        stream = _take(StreamingPermutedSchedule(n, seed=9), 2 * n)
        assert stream[:n] != stream[n:]

    def test_matches_materialized_reference(self):
        # The slot stream must equal building each pass's permutation as
        # an explicit table through the same PRP — pid_at is a pure
        # function despite the one-entry memo, including random access.
        from repro.runtime.streaming import _mix64

        n, seed = 17, 5
        schedule = StreamingPermutedSchedule(n, seed)
        for pass_index in (0, 2, 1):  # out of order on purpose
            table = FeistelPermutation(
                n, _mix64(seed ^ (pass_index << 1) ^ 0x5EED)
            ).table()
            for offset in range(n):
                assert schedule.pid_at(pass_index * n + offset) == table[offset]

    def test_constant_memory_attributes_only(self):
        # No O(n) state: the schedule holds at most one pass's PRP, which
        # itself stores only round keys.
        schedule = StreamingPermutedSchedule(10**6, seed=1)
        assert schedule.pid_at(123456789) < 10**6
        assert not any(
            isinstance(value, (list, dict, set))
            for value in vars(schedule).values()
        )


class TestStreamingInterleaved:
    @pytest.mark.parametrize("n", [1, 2, 5, 16])
    def test_each_window_schedules_every_pid_twice(self, n):
        schedule = StreamingInterleavedSchedule(n, seed=3)
        stream = _take(schedule, 4 * n)
        for window_index in range(2):
            window = stream[window_index * 2 * n:(window_index + 1) * 2 * n]
            assert sorted(window) == sorted(list(range(n)) * 2)

    def test_windows_differ(self):
        n = 32
        stream = _take(StreamingInterleavedSchedule(n, seed=8), 4 * n)
        assert stream[:2 * n] != stream[2 * n:]


class TestStreamingRandom:
    def test_pids_in_range_and_deterministic(self):
        schedule = StreamingRandomSchedule(7, seed=11)
        stream = _take(schedule, 200)
        assert all(0 <= pid < 7 for pid in stream)
        assert stream == _take(StreamingRandomSchedule(7, seed=11), 200)
        assert stream != _take(StreamingRandomSchedule(7, seed=12), 200)

    def test_covers_all_pids(self):
        stream = _take(StreamingRandomSchedule(5, seed=2), 200)
        assert set(stream) == set(range(5))


class TestScheduleFamilyIntegration:
    @pytest.mark.parametrize("family", STREAMING_FAMILIES)
    def test_make_schedule_builds_streaming_families(self, family):
        schedule = make_schedule(family, 6, SeedTree(4).child("schedule"))
        stream = _take(schedule, 30)
        assert all(0 <= pid < 6 for pid in stream)

    def test_seeded_streaming_families_draw_private_seeds(self):
        seeds = SeedTree(4).child("schedule")
        first = make_schedule("streaming-permuted", 8, seeds)
        second = make_schedule("streaming-interleaved", 8, seeds)
        assert first.seed != second.seed

    def test_spec_round_trips_streaming_families(self):
        spec = ScheduleSpec("streaming-permuted", 9, seed=77)
        rebuilt = ScheduleSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert _take(rebuilt.build(), 18) == _take(spec.build(), 18)


class TestMaterializedScaleGuard:
    @pytest.mark.parametrize("family", MATERIALIZED_FAMILIES)
    def test_make_schedule_refuses_materialized_at_scale(self, family):
        with pytest.raises(ConfigurationError, match="streaming-"):
            make_schedule(
                family, MAX_MATERIALIZED_N + 1, SeedTree(1).child("schedule")
            )

    @pytest.mark.parametrize("family", MATERIALIZED_FAMILIES)
    def test_spec_refuses_materialized_at_scale(self, family):
        with pytest.raises(ConfigurationError, match="streaming-"):
            ScheduleSpec(family, MAX_MATERIALIZED_N + 1, seed=1)

    def test_limit_is_inclusive(self):
        # Exactly 2**20 processes is still allowed (the guard is >, not >=):
        # construction at the boundary only allocates one pid list.
        spec = ScheduleSpec("permuted", MAX_MATERIALIZED_N, seed=1)
        assert spec.n == MAX_MATERIALIZED_N

    def test_streaming_families_unlimited(self):
        schedule = make_schedule(
            "streaming-permuted", MAX_MATERIALIZED_N * 8,
            SeedTree(1).child("schedule"),
        )
        assert 0 <= schedule.pid_at(0) < MAX_MATERIALIZED_N * 8
