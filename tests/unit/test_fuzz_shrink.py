"""Unit tests for the delta-debugging scenario shrinker."""

import pytest

from repro.errors import ConfigurationError
from repro.fuzz import Scenario, shrink_scenario
from repro.fuzz.scenario import ScenarioOutcome, ViolationRecord
from repro.runtime.faults import CrashFault, FaultPlan, StallFault
from repro.workloads.schedules import ScheduleSpec


def scenario_with_noise(n=4):
    """A scenario padded with faults that are irrelevant to the 'bug'."""
    return Scenario(
        stack="sifting", n=n, workload="distinct", seed=3,
        schedule=ScheduleSpec("explicit", n, slots=tuple(range(n)) * 6),
        faults=FaultPlan(
            crashes=(CrashFault(pid=n - 1, after_steps=9),),
            stalls=(StallFault(pid=0, start_step=5, duration=7),),
        ),
    )


def fake_runner(predicate):
    """A run_scenario stand-in firing 'validity' when predicate(scenario)."""

    def run(scenario, wall_clock_seconds=None):
        if predicate(scenario):
            return ScenarioOutcome(
                scenario, "violation",
                violations=(ViolationRecord("validity", None, "planted"),),
            )
        return ScenarioOutcome(scenario, "ok")

    return run


class TestShrinkWithFakeOracle:
    def test_strips_everything_irrelevant(self):
        # The "bug" fires whenever pid 0 appears in the schedule at all, so
        # the minimum is: one process, no faults, a single slot.
        result = shrink_scenario(
            scenario_with_noise(),
            frozenset({"validity"}),
            run=fake_runner(lambda s: True),
        )
        assert result.scenario.n == 1
        assert result.scenario.faults.is_empty
        assert len(result.scenario.schedule.slots) == 1
        assert result.improvements > 0
        assert not result.stopped_early

    def test_keeps_the_load_bearing_fault(self):
        # The bug needs the crash: shrinking must not remove it.
        needs_crash = fake_runner(lambda s: bool(s.faults.crashes))
        result = shrink_scenario(
            scenario_with_noise(),
            frozenset({"validity"}),
            run=needs_crash,
        )
        assert result.scenario.faults.crashes
        assert not result.scenario.faults.stalls

    def test_non_reproducing_scenario_is_an_error(self):
        with pytest.raises(ConfigurationError, match="does not reproduce"):
            shrink_scenario(
                scenario_with_noise(),
                frozenset({"validity"}),
                run=fake_runner(lambda s: False),
            )

    def test_empty_oracle_set_is_an_error(self):
        with pytest.raises(ConfigurationError, match="oracle"):
            shrink_scenario(scenario_with_noise(), frozenset())

    def test_reproduction_budget_stops_early(self):
        result = shrink_scenario(
            scenario_with_noise(),
            frozenset({"validity"}),
            max_reproductions=2,
            run=fake_runner(lambda s: True),
        )
        assert result.stopped_early
        assert result.attempts <= 2

    def test_materializes_randomized_families_for_ddmin(self):
        scenario = Scenario(
            stack="sifting", n=3, workload="distinct", seed=3,
            schedule=ScheduleSpec("random", 3, seed=8),
        )
        result = shrink_scenario(
            scenario, frozenset({"validity"}), run=fake_runner(lambda s: True),
        )
        assert result.scenario.schedule.family == "explicit"
        assert len(result.scenario.schedule.slots) == 1

    def test_deterministic(self):
        first = shrink_scenario(
            scenario_with_noise(), frozenset({"validity"}),
            run=fake_runner(lambda s: True),
        )
        second = shrink_scenario(
            scenario_with_noise(), frozenset({"validity"}),
            run=fake_runner(lambda s: True),
        )
        assert first.scenario == second.scenario
        assert first.attempts == second.attempts


class TestShrinkRealPlantedBug:
    def test_planted_validity_bug_minimizes(self):
        # planted-validity corrupts outputs with probability 1/2 per pid;
        # find a seed that fires, then shrink for real.
        from repro.fuzz import run_scenario

        reproducer = None
        for seed in range(40):
            scenario = Scenario(
                stack="planted-validity", n=3, workload="distinct", seed=seed,
                schedule=ScheduleSpec("round-robin", 3),
            )
            outcome = run_scenario(scenario)
            if "validity" in outcome.oracle_names:
                reproducer = scenario
                break
        assert reproducer is not None
        result = shrink_scenario(
            reproducer, frozenset({"validity"}), max_reproductions=120,
        )
        assert "validity" in result.outcome.oracle_names
        assert result.scenario.n <= reproducer.n
        assert result.scenario.faults.is_empty
