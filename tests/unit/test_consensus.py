"""Unit tests for the consensus framework (conciliator + adopt-commit)."""

import pytest

from repro.adoptcommit.snapshot_ac import SnapshotAdoptCommit
from repro.core.consensus import (
    ConsensusProtocol,
    register_consensus,
    run_consensus,
    snapshot_consensus,
)
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RandomSchedule, RoundRobinSchedule


def run_once(protocol, inputs, seed=0, schedule=None):
    seeds = SeedTree(seed)
    if schedule is None:
        schedule = RandomSchedule(protocol.n, seeds.child("schedule").seed)
    return run_consensus(protocol, inputs, schedule, seeds)


class TestFramework:
    def test_phases_allocated_lazily(self):
        protocol = snapshot_consensus(4)
        assert protocol.phases_allocated == 0
        run_once(protocol, [0, 1, 2, 3], seed=1)
        assert protocol.phases_allocated >= 1

    def test_phase_objects_are_shared(self):
        protocol = snapshot_consensus(4)
        one = protocol.phase(0)
        two = protocol.phase(0)
        assert one[0] is two[0]
        assert one[1] is two[1]

    def test_rejects_zero_processes(self):
        with pytest.raises(ConfigurationError):
            ConsensusProtocol(
                0,
                lambda n, i: SnapshotConciliator(n),
                lambda n, i: SnapshotAdoptCommit(n),
            )

    def test_input_count_checked(self):
        protocol = snapshot_consensus(3)
        seeds = SeedTree(0)
        with pytest.raises(ConfigurationError):
            run_consensus(
                protocol, [1, 2], RoundRobinSchedule(3), seeds
            )

    def test_phases_used_recorded(self):
        protocol = snapshot_consensus(4)
        run_once(protocol, [0, 1, 2, 3], seed=2)
        assert set(protocol.phases_used) == {0, 1, 2, 3}
        assert all(count >= 1 for count in protocol.phases_used.values())


class TestSnapshotConsensus:
    def test_agreement_validity_many_seeds(self):
        n = 6
        inputs = [f"v{pid}" for pid in range(n)]
        for seed in range(15):
            protocol = snapshot_consensus(n)
            result = run_once(protocol, inputs, seed=seed)
            assert result.completed
            assert result.agreement
            assert result.validity_holds(dict(enumerate(inputs)))

    def test_unbounded_input_domain(self):
        # Corollary 1 allows arbitrarily many input values; no encoder.
        n = 4
        inputs = [("config", pid, tuple(range(pid))) for pid in range(n)]
        protocol = snapshot_consensus(n)
        result = run_once(protocol, inputs, seed=3)
        assert result.agreement
        assert result.validity_holds(dict(enumerate(inputs)))

    def test_unanimous_decides_in_one_phase(self):
        n = 4
        protocol = snapshot_consensus(n)
        result = run_once(protocol, ["same"] * n, seed=4)
        assert result.decided_values == {"same"}
        # Conciliator validity + adopt-commit convergence: phase 1 commits.
        assert max(protocol.phases_used.values()) == 1

    def test_max_register_variant(self):
        protocol = snapshot_consensus(4, use_max_registers=True)
        result = run_once(protocol, [0, 1, 2, 3], seed=5)
        assert result.agreement


class TestRegisterConsensus:
    def test_agreement_validity_many_seeds(self):
        n = 6
        inputs = [pid % 3 for pid in range(n)]
        for seed in range(15):
            protocol = register_consensus(n, value_domain=range(3))
            result = run_once(protocol, inputs, seed=seed)
            assert result.completed
            assert result.agreement
            assert result.validity_holds(dict(enumerate(inputs)))

    def test_linear_total_work_variant(self):
        n = 6
        inputs = [pid % 3 for pid in range(n)]
        for seed in range(10):
            protocol = register_consensus(
                n, value_domain=range(3), linear_total_work=True
            )
            result = run_once(protocol, inputs, seed=seed)
            assert result.agreement
            assert result.validity_holds(dict(enumerate(inputs)))

    def test_value_outside_domain_fails_loudly(self):
        protocol = register_consensus(2, value_domain=[0, 1])
        with pytest.raises(ConfigurationError):
            run_once(protocol, [0, 7], seed=6)

    def test_binary_consensus(self):
        n = 8
        protocol = register_consensus(n, value_domain=[0, 1])
        result = run_once(protocol, [pid % 2 for pid in range(n)], seed=7)
        assert result.agreement
        assert result.decided_values <= {0, 1}

    def test_expected_phase_count_is_small(self):
        # Each phase succeeds with probability >= 1/2; across seeds the
        # maximum phase count should stay modest.
        n = 6
        worst = 0
        for seed in range(20):
            protocol = register_consensus(n, value_domain=range(n))
            run_once(protocol, list(range(n)), seed=seed)
            worst = max(worst, max(protocol.phases_used.values()))
        assert worst <= 8

    def test_id_consensus(self):
        # m = n distinct inputs (the id-consensus case from the paper).
        n = 8
        protocol = register_consensus(n, value_domain=range(n))
        result = run_once(protocol, list(range(n)), seed=8)
        assert result.agreement


class TestDecisionStability:
    def test_all_processes_decide_same_single_value(self):
        # Run under several adversaries; consensus must never split.
        from repro.workloads.schedules import make_schedule

        n = 5
        for family in ("round-robin", "reversed", "random", "blocks",
                       "front-runner"):
            seeds = SeedTree(hash(family) % (2**31))
            protocol = register_consensus(n, value_domain=range(n))
            schedule = make_schedule(family, n, seeds.child("schedule"))
            result = run_consensus(protocol, list(range(n)), schedule, seeds)
            assert result.agreement, family
