"""Unit tests for Algorithm 1 (snapshot conciliator)."""

import pytest

import helpers
from repro.core.persona import Persona
from repro.core.rounds import snapshot_priority_range, snapshot_rounds
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.runtime.scheduler import (
    ExplicitSchedule,
    FrontRunnerSchedule,
    RoundRobinSchedule,
)


class TestConfiguration:
    def test_default_rounds_match_theorem(self):
        conciliator = SnapshotConciliator(16, epsilon=0.5)
        assert conciliator.rounds == snapshot_rounds(16, 0.5)

    def test_default_priority_range_matches_paper(self):
        conciliator = SnapshotConciliator(16, epsilon=0.5)
        assert conciliator.priority_range == snapshot_priority_range(
            16, 0.5, conciliator.rounds
        )

    def test_step_bound_is_two_per_round(self):
        conciliator = SnapshotConciliator(8)
        assert conciliator.step_bound() == 2 * conciliator.rounds

    def test_rounds_override(self):
        assert SnapshotConciliator(8, rounds=3).rounds == 3

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            SnapshotConciliator(8, rounds=0)


class TestExecution:
    def test_termination_validity_exact_steps(self):
        n = 8
        conciliator = SnapshotConciliator(n)
        inputs = [f"value-{pid}" for pid in range(n)]
        result = helpers.run_conciliator_once(conciliator, inputs, seed=1)
        assert result.completed
        assert result.validity_holds(dict(enumerate(inputs)))
        # Every process takes exactly 2R steps: 1 update + 1 scan per round.
        assert all(
            steps == conciliator.step_bound()
            for steps in result.steps_by_pid.values()
        )

    def test_single_process_returns_own_input(self):
        conciliator = SnapshotConciliator(1)
        result = helpers.run_conciliator_once(conciliator, ["only"], seed=2)
        assert result.outputs[0] == "only"

    def test_unanimous_inputs_return_that_value(self):
        conciliator = SnapshotConciliator(6)
        result = helpers.run_conciliator_once(conciliator, ["same"] * 6, seed=3)
        assert result.decided_values == {"same"}

    def test_sequential_schedule_agrees_deterministically(self):
        # Under a fully sequential schedule (each process runs all its steps
        # alone), the first round already collapses everyone onto the
        # highest-priority persona seen — and the last process sees all.
        n = 4
        conciliator = SnapshotConciliator(n)
        slots = []
        for pid in range(n):
            slots.extend([pid] * conciliator.step_bound())
        result = helpers.run_conciliator_once(
            conciliator,
            list(range(n)),
            schedule=ExplicitSchedule(slots, n=n),
            seed=4,
        )
        assert result.agreement

    def test_round_robin_many_seeds_always_valid(self):
        n = 5
        for seed in range(10):
            conciliator = SnapshotConciliator(n)
            result = helpers.run_conciliator_once(
                conciliator,
                list(range(n)),
                schedule=RoundRobinSchedule(n),
                seed=seed,
            )
            assert result.completed
            assert result.validity_holds({pid: pid for pid in range(n)})

    def test_front_runner_schedule_is_handled(self):
        n = 6
        conciliator = SnapshotConciliator(n)
        result = helpers.run_conciliator_once(
            conciliator,
            list(range(n)),
            schedule=FrontRunnerSchedule(n),
            seed=5,
        )
        assert result.completed

    def test_survivor_series_is_recorded_per_round(self):
        n = 8
        conciliator = SnapshotConciliator(n)
        helpers.run_conciliator_once(conciliator, list(range(n)), seed=6)
        series = conciliator.survivor_series()
        assert len(series) == conciliator.rounds
        assert all(1 <= count <= n for count in series)

    def test_survivors_never_increase(self):
        # Personae only get adopted, never created mid-run; under round-robin
        # the per-round survivor counts are non-increasing.
        n = 16
        conciliator = SnapshotConciliator(n)
        helpers.run_conciliator_once(
            conciliator, list(range(n)), schedule=RoundRobinSchedule(n), seed=7
        )
        series = conciliator.survivor_series()
        assert all(series[i] >= series[i + 1] for i in range(len(series) - 1))


class TestMaxRegisterVariant:
    def test_same_step_count(self):
        conciliator = SnapshotConciliator(8, use_max_registers=True)
        result = helpers.run_conciliator_once(
            conciliator, list(range(8)), seed=8
        )
        assert all(
            steps == conciliator.step_bound()
            for steps in result.steps_by_pid.values()
        )

    def test_validity_and_termination(self):
        conciliator = SnapshotConciliator(8, use_max_registers=True)
        result = helpers.run_conciliator_once(conciliator, list(range(8)), seed=9)
        assert result.completed
        assert result.validity_holds({pid: pid for pid in range(8)})

    def test_sequential_schedule_adopts_max_priority(self):
        # Process 0 runs entirely first and can only see itself; process 1
        # sees both writes and must adopt the globally max-priority persona.
        n = 2
        conciliator = SnapshotConciliator(n, use_max_registers=True, rounds=1)
        slots = [0] * 2 + [1] * 2
        result = helpers.run_conciliator_once(
            conciliator, ["a", "b"], schedule=ExplicitSchedule(slots, n=n), seed=10
        )
        assert result.outputs[0] == "a"
        top_persona = conciliator._max_registers[0].value[2]
        assert result.outputs[1] == top_persona.value


class TestDuplicatePriorities:
    def test_tiny_priority_range_still_terminates(self):
        # Forcing collisions (range=1) exercises the deterministic
        # origin-id tiebreak; the protocol must stay safe.
        n = 6
        conciliator = SnapshotConciliator(n, priority_range=1)
        result = helpers.run_conciliator_once(conciliator, list(range(n)), seed=11)
        assert result.completed
        assert result.validity_holds({pid: pid for pid in range(n)})

    def test_range_one_collapses_to_highest_origin_under_round_robin(self):
        n = 4
        conciliator = SnapshotConciliator(n, priority_range=1)
        result = helpers.run_conciliator_once(
            conciliator, list(range(n)), schedule=RoundRobinSchedule(n), seed=12
        )
        # All priorities equal; after a full synchronous round everyone sees
        # everyone and the origin tiebreak picks the max pid.
        assert result.decided_values == {n - 1}
