"""Unit tests for the deterministic open-loop load generator."""

import pytest

from repro.errors import ConfigurationError
from repro.service.loadgen import (
    PROFILES,
    ArrivalProfile,
    _draw_arrivals,
    run_loadtest,
)


class TestProfileValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0},
        {"burst_rate": -1.0},
        {"burst_every": 0.0},
        {"burst_every": 1.0, "burst_duration": 1.0},  # burst fills period
        {"stall_fraction": 1.5},
        {"drop_fraction": -0.1},
    ])
    def test_bad_profiles_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ArrivalProfile(name="bad", **kwargs)

    def test_stock_profiles_cover_the_issue_traffic_shapes(self):
        assert set(PROFILES) == {"steady", "burst", "slow-clients", "drops"}
        assert PROFILES["burst"].burst_rate > PROFILES["burst"].rate
        assert PROFILES["slow-clients"].stall_fraction > 0
        assert PROFILES["drops"].drop_fraction > 0


class TestRateAt:
    def test_no_burst_rate_means_a_flat_profile(self):
        profile = ArrivalProfile(name="flat", rate=100.0)
        assert profile.rate_at(0.0) == 100.0
        assert profile.rate_at(123.4) == 100.0

    def test_bursts_occupy_the_start_of_each_period(self):
        profile = ArrivalProfile(
            name="spiky", rate=100.0, burst_rate=1000.0,
            burst_every=4.0, burst_duration=1.0,
        )
        assert profile.rate_at(0.5) == 1000.0
        assert profile.rate_at(1.0) == 100.0
        assert profile.rate_at(3.9) == 100.0
        assert profile.rate_at(4.5) == 1000.0  # next period's burst


class TestArrivalTable:
    def draw(self, profile_name, sessions=50, seed=7):
        return _draw_arrivals(
            PROFILES[profile_name], sessions, seed,
            algorithm="sifting", n=4, schedule_family="round-robin",
            deadline=5.0,
        )

    def test_arrivals_are_pre_drawn_and_deterministic(self):
        assert self.draw("burst") == self.draw("burst")

    def test_different_seeds_draw_different_traffic(self):
        assert self.draw("steady", seed=1) != self.draw("steady", seed=2)

    def test_different_profiles_draw_different_traffic(self):
        steady = [a.at for a in self.draw("steady")]
        burst = [a.at for a in self.draw("burst")]
        assert steady != burst

    def test_arrival_times_increase_and_ids_are_sequential(self):
        arrivals = self.draw("steady")
        times = [arrival.at for arrival in arrivals]
        assert times == sorted(times)
        assert [a.request.session_id for a in arrivals] == list(range(50))

    def test_client_behaviors_follow_the_profile(self):
        plain = self.draw("steady", sessions=200)
        assert all(a.stall == 0.0 and a.drop_after is None for a in plain)
        stalled = self.draw("slow-clients", sessions=200)
        assert any(a.stall > 0 for a in stalled)
        dropping = self.draw("drops", sessions=200)
        assert any(a.drop_after is not None for a in dropping)

    def test_unknown_algorithm_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            _draw_arrivals(
                PROFILES["steady"], 1, 0,
                algorithm="no-such", n=4,
                schedule_family="round-robin", deadline=5.0,
            )


class TestRunLoadtest:
    def test_unknown_profile_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown profile"):
            run_loadtest(profile="no-such", sessions=1)

    def test_zero_sessions_is_rejected(self):
        with pytest.raises(ConfigurationError, match="sessions"):
            run_loadtest(sessions=0)

    def test_small_steady_run_serves_every_session(self):
        result = run_loadtest(
            profile="steady", sessions=40, seed=3,
            algorithm="sifting", n=4, schedule_family="round-robin",
        )
        assert result.unexpected_errors == 0
        assert len(result.responses) == 40
        assert all(r.ok for r in result.responses)
        assert result.duration > 0
        assert result.metrics.counter_value("service.admitted") == 40
