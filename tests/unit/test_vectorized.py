"""Unit tests for the vectorized mass-trial backend.

The end-to-end equivalence contracts live in
``tests/property/test_backend_equivalence.py``; this module pins the
configuration surface — the support matrix, every refusal path's
:class:`ConfigurationError`, the sweep container's invariants — and the
degradation story when NumPy is absent (via a subprocess whose import
machinery hides it).
"""

import subprocess
import sys
import textwrap

import pytest

from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.errors import ConfigurationError
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.vectorized import (
    BACKENDS,
    VECTOR_BACKENDS,
    VECTORIZED_BLOCK_TRIALS,
    numpy_available,
    supported_families,
)

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend requires numpy"
)

# Imported lazily above the guard would defeat the skip; safe here because
# pytestmark has already vouched for numpy.
from repro.runtime.vectorized import run_vectorized_sweep  # noqa: E402


class TestSupportMatrix:
    def test_backend_names(self):
        assert BACKENDS == ("generator", "vectorized", "vectorized-oracle")
        assert VECTOR_BACKENDS == ("vectorized", "vectorized-oracle")
        assert set(VECTOR_BACKENDS) < set(BACKENDS)

    def test_block_size_is_positive_power_of_two(self):
        assert VECTORIZED_BLOCK_TRIALS > 0
        assert VECTORIZED_BLOCK_TRIALS & (VECTORIZED_BLOCK_TRIALS - 1) == 0

    def test_cil_restricted_to_single_slot_families(self):
        for oracle in (False, True):
            assert supported_families("cil", oracle) == (
                "round-robin", "reversed", "permuted",
            )

    def test_fixed_sequence_kernels_gain_families_in_oracle_mode(self):
        for algorithm in ("sifting", "snapshot"):
            fast = supported_families(algorithm, oracle=False)
            oracle = supported_families(algorithm, oracle=True)
            assert "interleaved" in fast and "front-runner" in fast
            assert set(fast) < set(oracle)
            assert {"random", "blocks"} <= set(oracle) - set(fast)


class TestRefusals:
    def run(self, factory, n=3, **kwargs):
        kwargs.setdefault("trials", 2)
        return run_vectorized_sweep(factory, list(range(n)), **kwargs)

    def test_anonymous_sifting_refused(self):
        with pytest.raises(ConfigurationError, match="anonymous"):
            self.run(lambda: SiftingConciliator(3, anonymous=True))

    def test_unsupported_conciliator_type_refused(self):
        with pytest.raises(ConfigurationError, match="generator backend"):
            self.run(lambda: object())

    def test_snapshot_priority_overflow_refused(self):
        with pytest.raises(ConfigurationError, match="overflows"):
            self.run(lambda: SnapshotConciliator(3, priority_range=2**62))

    def test_trials_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="trials must be >= 1"):
            self.run(lambda: SiftingConciliator(3), trials=0)

    def test_input_count_must_match_n(self):
        with pytest.raises(ConfigurationError, match="4 inputs"):
            self.run(lambda: SiftingConciliator(3), n=4)

    def test_fast_mode_rejects_oracle_only_family_with_hint(self):
        with pytest.raises(
            ConfigurationError, match="vectorized-oracle"
        ) as excinfo:
            self.run(lambda: SiftingConciliator(3), schedule_family="random")
        assert "generator backend" in str(excinfo.value)

    def test_cil_rejects_interleaved_in_both_modes(self):
        for oracle in (False, True):
            with pytest.raises(ConfigurationError, match="not lockstep"):
                self.run(
                    lambda: DoublingCILConciliator(3),
                    schedule_family="interleaved",
                    oracle=oracle,
                )

    def test_decay_series_requires_collect_survivors(self):
        sweep = self.run(lambda: SiftingConciliator(3))
        with pytest.raises(ConfigurationError, match="collect_survivors"):
            sweep.decay_series()


class TestSweepContainer:
    def test_shapes_stats_and_agreement_flags(self):
        trials = 5
        sweep = run_vectorized_sweep(
            lambda: SiftingConciliator(3),
            ["a", "b", "a"],
            schedule_family="permuted",
            trials=trials,
            master_seed=17,
            collect_decisions=True,
            collect_survivors=True,
        )
        assert sweep.n == 3
        assert sweep.trials == trials
        assert len(sweep.agreement) == trials
        assert len(sweep.decisions) == trials
        assert len(sweep.survivor_series) == trials
        for flag, decisions in zip(sweep.agreement, sweep.decisions):
            assert set(decisions) <= {"a", "b"}
            assert flag == (len(set(decisions)) == 1)
        assert sweep.agreement_count == sum(sweep.agreement)
        stats = sweep.stats()
        assert stats.trials == trials
        assert stats.agreement_count == sweep.agreement_count
        assert stats.validity_failures == 0
        assert stats.kind == "sifting-conciliator"

    def test_cil_sweep_records_passes_not_rounds(self):
        sweep = run_vectorized_sweep(
            lambda: DoublingCILConciliator(2),
            [0, 1],
            schedule_family="round-robin",
            trials=3,
            master_seed=5,
            collect_survivors=True,
        )
        # CIL has no per-round survivor notion; the series stays empty and
        # decay folding yields no rounds.
        assert sweep.survivor_series == ((),) * 3
        assert sweep.decay_series() == []
        assert all(steps >= 1 for steps in sweep.individual_steps)

    def test_deterministic_for_fixed_seed(self):
        kwargs = dict(
            schedule_family="interleaved", trials=64, master_seed=99,
            collect_decisions=True,
        )
        first = run_vectorized_sweep(
            lambda: SnapshotConciliator(4), list(range(4)), **kwargs
        )
        second = run_vectorized_sweep(
            lambda: SnapshotConciliator(4), list(range(4)), **kwargs
        )
        assert first == second


_NO_NUMPY_SCRIPT = textwrap.dedent(
    """
    import sys

    # Poison the import: `import numpy` now raises ImportError, exactly as
    # on a machine without the optional dependency.
    sys.modules["numpy"] = None

    from repro.analysis.experiments import run_conciliator_trials
    from repro.errors import ConfigurationError
    from repro.core.sifting_conciliator import SiftingConciliator
    from repro.runtime.vectorized import numpy_available

    assert not numpy_available()

    factory = lambda: SiftingConciliator(3)

    # The default backend must be entirely unaffected.
    stats = run_conciliator_trials(
        factory, [0, 1, 2], trials=3, master_seed=1, workers=1
    )
    assert stats.trials == 3

    # The vectorized backend must fail loudly, with an install hint.
    try:
        run_conciliator_trials(
            factory, [0, 1, 2], trials=3, master_seed=1,
            backend="vectorized",
        )
    except ConfigurationError as error:
        assert "pip install numpy" in str(error), str(error)
        assert "generator backend" in str(error), str(error)
    else:
        raise AssertionError("vectorized backend ran without numpy")

    # The bench suite drops vectorized cases from the default selection
    # (with a log line) but honours explicit requests, which then fail
    # loudly with the install hint.
    from repro.obs.bench import VECTORIZED_SUITE_NAMES, _select_cases, run_bench_suite

    messages = []
    selected = _select_cases(None, messages.append)
    assert not set(selected) & set(VECTORIZED_SUITE_NAMES), selected
    assert any("skipping" in message for message in messages), messages
    try:
        run_bench_suite(quick=True, suites=["vectorized-sifting"])
    except ConfigurationError as error:
        assert "pip install numpy" in str(error), str(error)
    else:
        raise AssertionError("vectorized bench case ran without numpy")

    print("NO-NUMPY-OK")
    """
)


def test_missing_numpy_degrades_cleanly(tmp_path):
    """Without NumPy the vectorized backend raises ConfigurationError with
    an install hint, and the generator backend keeps working.

    Run in a subprocess so the poisoned ``sys.modules`` cannot leak into
    other tests (and so an already-imported numpy in this process does not
    mask the degradation path)."""
    script = tmp_path / "no_numpy_probe.py"
    script.write_text(_NO_NUMPY_SCRIPT)
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "NO-NUMPY-OK" in result.stdout
