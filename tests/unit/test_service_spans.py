"""Unit tests for the session span-tree schema and recorder.

The exactness contract (``phase_sum(attribute_phases(root, latency)) ==
latency`` bit-for-bit) is the foundation the SLO ``latency_attribution``
section and its CI byte-diff stand on, so it gets adversarial float
inputs here; the integration suite re-checks it over full loadtests.
"""

import hashlib
import json

import pytest

from repro.errors import ConfigurationError
from repro.service.spans import (
    PHASE_NAMES,
    SPAN_NAMES,
    SPAN_SCHEMA_VERSION,
    Span,
    SpanRecorder,
    attribute_phases,
    phase_sum,
    read_spans_jsonl,
    span_digest,
    tree_from_json,
    tree_to_json,
    write_spans_jsonl,
)


def sample_tree(session_id=7, shard=1):
    """A hand-built session tree with one retried attempt."""
    root = Span(name="session", start=10.0, end=10.5, status="completed",
                shard=shard, attrs={"session_id": session_id})
    root.child("breaker", 10.0, status="closed", shard=shard, probe=False)
    root.child("admission", 10.0, status="admitted")
    first = root.child("attempt", 10.0, 10.2, status="timeout", shard=shard,
                       attempt=0)
    first.child("queue-wait", 10.0, 10.05, status="acquired", shard=shard)
    first.child("worker-call", 10.05, 10.15, status="timeout", shard=shard,
                timeout=0.1, remaining=0.5)
    first.child("backoff", 10.15, 10.2, status="waited", shard=shard,
                delay=0.05)
    second = root.child("attempt", 10.2, 10.5, status="completed",
                        shard=shard, attempt=1)
    second.child("queue-wait", 10.2, 10.3, status="acquired", shard=shard)
    second.child("worker-call", 10.3, 10.5, status="completed", shard=shard,
                 timeout=0.1, remaining=0.3)
    root.attrs["phases"] = attribute_phases(root, root.duration)
    return root


class TestSchema:
    def test_roundtrip_is_lossless(self):
        root = sample_tree()
        back = tree_from_json(tree_to_json(root))
        assert tree_to_json(back) == tree_to_json(root)

    def test_envelope_carries_version_kind_and_session_id(self):
        data = tree_to_json(sample_tree(session_id=42))
        assert data["v"] == SPAN_SCHEMA_VERSION
        assert data["kind"] == "repro-session-spans"
        assert data["session_id"] == 42

    def test_foreign_version_is_rejected(self):
        data = tree_to_json(sample_tree())
        data["v"] = 99
        with pytest.raises(ConfigurationError, match="version 99"):
            tree_from_json(data)

    def test_foreign_kind_is_rejected(self):
        data = tree_to_json(sample_tree())
        data["kind"] = "something-else"
        with pytest.raises(ConfigurationError, match="kind"):
            tree_from_json(data)

    def test_unknown_span_name_is_rejected(self):
        data = tree_to_json(sample_tree())
        data["root"]["children"][0]["name"] = "mystery"
        with pytest.raises(ConfigurationError, match="mystery"):
            tree_from_json(data)

    def test_tree_must_be_rooted_at_a_session_span(self):
        orphan = Span(name="attempt", start=0.0, end=1.0)
        with pytest.raises(ConfigurationError, match="session"):
            tree_to_json(orphan)

    def test_find_returns_descendants_in_tree_order(self):
        root = sample_tree()
        attempts = root.find("attempt")
        assert [span.attrs["attempt"] for span in attempts] == [0, 1]
        assert len(root.find("worker-call")) == 2
        assert root.find("session") == [root]

    def test_span_names_are_a_closed_vocabulary(self):
        root = sample_tree()
        seen = {span.name for name in SPAN_NAMES for span in root.find(name)}
        assert seen <= set(SPAN_NAMES)


class TestExactAttribution:
    def test_phases_sum_exactly_to_latency(self):
        root = sample_tree()
        phases = attribute_phases(root, root.duration)
        assert phase_sum(phases) == root.duration

    def test_exactness_survives_adversarial_float_boundaries(self):
        # Timestamps chosen so the interval differences do NOT telescope
        # exactly under naive summation: the remainder must absorb it.
        root = Span(name="session", start=0.1, end=0.1 + 0.7,
                    status="completed", attrs={"session_id": 0})
        attempt = root.child("attempt", 0.1, 0.1 + 0.7, attempt=0)
        attempt.child("queue-wait", 0.1, 0.30000000000000004)
        attempt.child("worker-call", 0.30000000000000004, 0.1 + 0.7)
        latency = (0.1 + 0.7) - 0.1
        phases = attribute_phases(root, latency)
        assert phase_sum(phases) == latency

    def test_unattributed_names_the_uncovered_gap(self):
        root = Span(name="session", start=0.0, end=1.0, status="completed",
                    attrs={"session_id": 0})
        attempt = root.child("attempt", 0.0, 0.25, attempt=0)
        attempt.child("worker-call", 0.0, 0.25)
        phases = attribute_phases(root, 1.0)
        assert phases["worker-call"] == 0.25
        assert phases["unattributed"] == 0.75

    def test_phase_names_order_is_the_fold_order(self):
        assert PHASE_NAMES == ("stall", "queue-wait", "worker-call",
                               "backoff", "unattributed")


class TestDigestAndPersistence:
    def test_digest_matches_sha256_of_the_written_file(self, tmp_path):
        roots = [sample_tree(session_id=i) for i in range(3)]
        path = write_spans_jsonl(roots, tmp_path / "spans.jsonl")
        on_disk = hashlib.sha256(path.read_bytes()).hexdigest()
        assert span_digest(roots) == f"sha256:{on_disk}"

    def test_roundtrip_through_jsonl(self, tmp_path):
        roots = [sample_tree(session_id=i) for i in range(3)]
        path = write_spans_jsonl(roots, tmp_path / "spans.jsonl")
        back = read_spans_jsonl(path)
        assert span_digest(back) == span_digest(roots)

    def test_digest_is_order_sensitive(self):
        a, b = sample_tree(session_id=0), sample_tree(session_id=1)
        assert span_digest([a, b]) != span_digest([b, a])

    def test_read_rejects_foreign_version_with_line_number(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        lines = [json.dumps(tree_to_json(sample_tree()))]
        bad = tree_to_json(sample_tree())
        bad["v"] = 2
        lines.append(json.dumps(bad))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="line 2"):
            read_spans_jsonl(path)

    def test_read_rejects_non_json_with_line_number(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ConfigurationError, match="line 1"):
            read_spans_jsonl(path)


class TestSpanRecorder:
    def test_unbounded_recorder_keeps_everything(self):
        recorder = SpanRecorder()
        for i in range(5):
            recorder.record(sample_tree(session_id=i))
        assert len(recorder) == 5
        assert recorder.dropped == 0
        assert recorder.recorded_total == 5

    def test_bounded_recorder_evicts_oldest_and_counts_drops(self):
        recorder = SpanRecorder(capacity=2)
        for i in range(5):
            recorder.record(sample_tree(session_id=i))
        assert [t.attrs["session_id"] for t in recorder.trees] == [3, 4]
        assert recorder.dropped == 3
        assert recorder.recorded_total == 5
        assert recorder.to_json() == {
            "retained": 2, "recorded_total": 5, "dropped": 3,
        }

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            SpanRecorder(capacity=0)

    def test_tree_for_returns_the_newest_match(self):
        recorder = SpanRecorder()
        old = sample_tree(session_id=9)
        new = sample_tree(session_id=9)
        recorder.record(old)
        recorder.record(new)
        assert recorder.tree_for(9) is new
        assert recorder.tree_for(404) is None

    def test_calls_view_flattens_worker_calls_per_attempt(self):
        recorder = SpanRecorder()
        recorder.record(sample_tree(session_id=3, shard=1))
        calls = recorder.calls_view()
        assert len(calls) == 2
        assert calls[0] == {
            "session_id": 3, "shard": 1, "attempt": 0,
            "timeout": 0.1, "remaining": 0.5,
        }
        assert calls[1]["attempt"] == 1
        assert all(c["timeout"] <= c["remaining"] for c in calls)
