"""Unit tests for the append-only bench trend ledger."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.trend import (
    TREND_SCHEMA_VERSION,
    append_history,
    history_entry,
    load_history,
    render_trend,
    summarize_trend,
)


def report(label="t", sha="abc", **cases):
    return {
        "label": label,
        "quick": True,
        "seed": 2012,
        "git_sha": sha,
        "created_unix": 1000,
        "cases": {
            name: {"steps_per_sec": sps, "trials": 5}
            for name, sps in cases.items()
        },
    }


class TestHistoryEntry:
    def test_distills_report(self):
        entry = history_entry(report(sifting=100.0, snapshot=50.0))
        assert entry["v"] == TREND_SCHEMA_VERSION
        assert entry["kind"] == "repro-bench-history"
        assert entry["cases"] == {"sifting": 100.0, "snapshot": 50.0}
        assert entry["git_sha"] == "abc"

    def test_rejects_non_report(self):
        with pytest.raises(ConfigurationError, match="run_bench_suite"):
            history_entry({"cases": {}})


class TestAppendAndLoad:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "ledger" / "BENCH_history.jsonl"
        append_history(report(sha="a", x=10.0), path)
        append_history(report(sha="b", x=11.0), path)
        entries = load_history(path)
        assert [e["git_sha"] for e in entries] == ["a", "b"]
        assert [e["cases"]["x"] for e in entries] == [10.0, 11.0]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_torn_final_line_warns_and_drops(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history(report(x=10.0), path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v":1,"kind":"repro-bench-hi')  # crash mid-append
        with pytest.warns(RuntimeWarning, match="torn line"):
            entries = load_history(path)
        assert len(entries) == 1

    def test_torn_line_with_later_entries_raises(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"nope\n', encoding="utf-8")
        append_history(report(x=10.0), path)
        with pytest.raises(ConfigurationError, match="later entries exist"):
            load_history(path)

    def test_foreign_version_raises_even_at_tail(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history(report(x=10.0), path)
        entry = history_entry(report(x=11.0))
        entry["v"] = TREND_SCHEMA_VERSION + 1
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
        with pytest.raises(ConfigurationError, match="unsupported bench"):
            load_history(path)


class TestSummarize:
    def entries(self):
        return [
            history_entry(report(sha="a", x=100.0)),
            history_entry(report(sha="b", x=110.0, y=10.0)),
            history_entry(report(sha="c", x=55.0, y=20.0)),
        ]

    def test_latest_and_overall_changes(self):
        trends = {t.name: t for t in summarize_trend(self.entries())}
        x = trends["x"]
        assert x.points == 3
        assert x.first_steps_per_sec == 100.0
        assert x.last_steps_per_sec == 55.0
        assert x.latest_change == pytest.approx(-0.5)
        assert x.overall_change == pytest.approx(-0.45)
        # y appears in only two entries; both deltas still compute.
        assert trends["y"].latest_change == pytest.approx(1.0)

    def test_single_point_has_no_deltas(self):
        trends = summarize_trend(self.entries()[:1])
        assert trends[0].latest_change is None
        assert trends[0].overall_change is None

    def test_last_windows_the_ledger(self):
        trends = {t.name: t for t in summarize_trend(self.entries(), last=2)}
        assert trends["x"].first_steps_per_sec == 110.0
        assert trends["x"].points == 2

    def test_last_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="last"):
            summarize_trend(self.entries(), last=0)


class TestRender:
    def test_empty_history_hints_at_the_flag(self):
        assert "repro bench --history" in render_trend([])

    def test_table_names_cases_and_shas(self):
        entries = [
            history_entry(report(sha="aaaaaaaaaaaaaaaa", x=100.0)),
            history_entry(report(sha="bbbbbbbbbbbbbbbb", x=150.0)),
        ]
        text = render_trend(entries)
        assert "2 entries" in text
        assert "aaaaaaaaaaaa -> bbbbbbbbbbbb" in text
        assert "+50.0%" in text

    def test_deterministic(self):
        entries = [history_entry(report(x=100.0))]
        assert render_trend(entries) == render_trend(entries)
