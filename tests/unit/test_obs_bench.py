"""Unit tests for the bench harness: reports, files, and the compare gate."""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_THRESHOLD,
    SUITE_NAMES,
    VECTORIZED_SUITE_NAMES,
    bench_filename,
    compare_bench,
    load_bench_json,
    run_bench_suite,
    write_bench_json,
)


def _report(label="test", cases=None):
    """A structurally valid bench report without running anything."""
    cases = cases if cases is not None else {"alpha": 1000.0, "beta": 2000.0}
    return {
        "v": BENCH_SCHEMA_VERSION,
        "label": label,
        "quick": True,
        "seed": 1,
        "created_unix": 0.0,
        "git_sha": "deadbeef",
        "env": {},
        "elapsed_seconds": 0.0,
        "cases": {
            name: {
                "trials": 3,
                "n": 4,
                "total_steps": 100,
                "elapsed_seconds": 0.1,
                "steps_per_sec": sps,
                "latency_p50_s": 0.01,
                "latency_p95_s": 0.02,
                "metrics": None,
            }
            for name, sps in cases.items()
        },
    }


class TestSuiteRun:
    def test_single_case_quick_run(self):
        report = run_bench_suite(
            label="unit", quick=True, seed=3, suites=["consensus"]
        )
        assert report["v"] == BENCH_SCHEMA_VERSION
        assert report["label"] == "unit"
        assert report["quick"] is True
        assert list(report["cases"]) == ["consensus"]
        case = report["cases"]["consensus"]
        assert case["steps_per_sec"] > 0
        assert case["total_steps"] > 0
        assert case["latency_p50_s"] <= case["latency_p95_s"]
        assert case["metrics"]["v"] == 1
        assert case["metrics"]["counters"]["run.count"] == case["trials"]

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown bench case"):
            run_bench_suite(suites=["no-such-case"])

    def test_suite_names_cover_required_cases(self):
        for required in (
            "simulator-step", "snapshot-conciliator", "sifting-conciliator",
            "cil-embedded", "consensus",
        ):
            assert required in SUITE_NAMES


class TestBenchFiles:
    def test_write_to_directory_uses_canonical_name(self, tmp_path):
        path = write_bench_json(_report(label="ci"), tmp_path)
        assert path.name == bench_filename("ci") == "BENCH_ci.json"
        assert load_bench_json(path)["label"] == "ci"

    def test_write_creates_parent_dirs(self, tmp_path):
        path = write_bench_json(_report(), tmp_path / "deep" / "out.json")
        assert load_bench_json(path)["v"] == BENCH_SCHEMA_VERSION

    def test_trailing_slash_means_directory_and_creates_it(self, tmp_path):
        path = write_bench_json(_report(label="x"), f"{tmp_path}/new-dir/")
        assert path.name == "BENCH_x.json"
        assert path.parent.name == "new-dir"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot be read"):
            load_bench_json(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_bench_json(path)

    def test_load_foreign_version(self, tmp_path):
        report = _report()
        report["v"] = BENCH_SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(report))
        with pytest.raises(ConfigurationError, match="unsupported bench"):
            load_bench_json(path)


class TestCompareGate:
    def test_within_threshold_is_ok(self):
        old = _report(cases={"alpha": 1000.0})
        new = _report(cases={"alpha": 900.0})  # -10%
        comparison = compare_bench(old, new, threshold=0.4)
        assert comparison.ok
        assert comparison.regressions == []
        (case,) = comparison.cases
        assert case.change == pytest.approx(-0.1)

    def test_regression_past_threshold_fails(self):
        old = _report(cases={"alpha": 1000.0, "beta": 1000.0})
        new = _report(cases={"alpha": 500.0, "beta": 990.0})  # -50%, -1%
        comparison = compare_bench(old, new, threshold=0.4)
        assert not comparison.ok
        assert [case.name for case in comparison.regressions] == ["alpha"]

    def test_improvement_never_fails(self):
        old = _report(cases={"alpha": 1000.0})
        new = _report(cases={"alpha": 5000.0})
        assert compare_bench(old, new, threshold=0.01).ok

    def test_boundary_is_inclusive_of_threshold(self):
        old = _report(cases={"alpha": 1000.0})
        exactly = _report(cases={"alpha": 600.0})  # change == -threshold
        assert compare_bench(old, exactly, threshold=0.4).ok
        past = _report(cases={"alpha": 599.0})
        assert not compare_bench(old, past, threshold=0.4).ok

    def test_missing_case_in_new_is_a_regression(self):
        old = _report(cases={"alpha": 1000.0, "beta": 1000.0})
        new = _report(cases={"alpha": 1000.0})
        comparison = compare_bench(old, new)
        assert not comparison.ok
        (missing,) = comparison.regressions
        assert missing.name == "beta"
        assert "missing" in missing.note

    def test_new_only_case_is_informational(self):
        old = _report(cases={"alpha": 1000.0})
        new = _report(cases={"alpha": 1000.0, "gamma": 10.0})
        comparison = compare_bench(old, new)
        assert comparison.ok
        names = {case.name for case in comparison.cases}
        assert "gamma" in names

    def test_threshold_must_be_a_fraction(self):
        old, new = _report(), _report()
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError, match="threshold"):
                compare_bench(old, new, threshold=bad)

    def test_default_threshold_matches_ci_gate(self):
        assert DEFAULT_THRESHOLD == 0.4

    def test_change_pct_mirrors_change_in_json(self):
        old = _report(cases={"alpha": 1000.0, "beta": 1000.0})
        new = _report(cases={"alpha": 900.0})
        comparison = compare_bench(old, new, threshold=0.4)
        by_name = {case.name: case for case in comparison.cases}
        assert by_name["alpha"].change_pct == pytest.approx(-10.0)
        assert by_name["beta"].change_pct is None  # missing: no delta
        data = comparison.to_json()
        json_by_name = {case["name"]: case for case in data["cases"]}
        assert json_by_name["alpha"]["change_pct"] == pytest.approx(-10.0)
        assert json_by_name["beta"]["change_pct"] is None

    def test_json_and_render_forms(self):
        comparison = compare_bench(
            _report(cases={"alpha": 1000.0}),
            _report(cases={"alpha": 100.0}),
        )
        data = comparison.to_json()
        assert data["ok"] is False
        assert data["cases"][0]["name"] == "alpha"
        rendered = comparison.render()
        assert "alpha" in rendered
        assert "REGRESSED" in rendered


class TestVectorizedCases:
    def test_vectorized_cases_registered(self):
        for name in VECTORIZED_SUITE_NAMES:
            assert name in SUITE_NAMES

    def test_vectorized_quick_run(self):
        pytest.importorskip("numpy")
        report = run_bench_suite(
            label="unit", quick=True, seed=3,
            suites=["vectorized-sifting"],
        )
        case = report["cases"]["vectorized-sifting"]
        assert case["steps_per_sec"] > 0
        assert case["total_steps"] > 0
        assert case["metrics"] is None  # batched kernels expose no hooks

    def test_default_sweep_skips_vectorized_without_numpy(self, monkeypatch):
        import repro.obs.bench as bench_module

        monkeypatch.setattr(bench_module, "_numpy_available", lambda: False)
        selected = bench_module._select_cases(None)
        assert not any(name in selected for name in VECTORIZED_SUITE_NAMES)
        assert "simulator-step" in selected

    def test_explicit_vectorized_request_kept_without_numpy(self, monkeypatch):
        # An explicit request is honoured even without NumPy, so the run
        # fails loudly with the backend's install hint instead of silently
        # benching nothing.  (The actual failure is exercised in the
        # no-numpy subprocess test in tests/unit/test_vectorized.py.)
        import repro.obs.bench as bench_module

        monkeypatch.setattr(bench_module, "_numpy_available", lambda: False)
        selected = bench_module._select_cases(["vectorized-sifting"])
        assert selected == ["vectorized-sifting"]

    def test_select_rejects_unknown_names(self):
        import repro.obs.bench as bench_module

        with pytest.raises(ConfigurationError, match="unknown bench case"):
            bench_module._select_cases(["no-such-case"])


class TestCommittedBaseline:
    """Guards the committed artifact the CI perf gate compares against."""

    BASELINE = Path(__file__).resolve().parents[2] / "benchmarks" / "BENCH_baseline.json"

    def test_baseline_contains_all_cases(self):
        report = load_bench_json(self.BASELINE)
        assert set(SUITE_NAMES) <= set(report["cases"])

    def test_vectorized_baseline_speedup_is_at_least_50x(self):
        """ISSUE acceptance bar: the committed baseline must show the
        vectorized cases >= 50x the per-step simulator's throughput.
        (CI re-measures a fresh run with a looser 20x bar to absorb
        machine noise; this pin keeps the committed artifact honest.)"""
        report = load_bench_json(self.BASELINE)
        simulator = report["cases"]["simulator-step"]["steps_per_sec"]
        for name in VECTORIZED_SUITE_NAMES:
            vectorized = report["cases"][name]["steps_per_sec"]
            assert vectorized >= 50 * simulator, (
                f"{name}: {vectorized:.0f} steps/s is "
                f"{vectorized / simulator:.1f}x simulator-step ({simulator:.0f})"
            )


class TestNewCaseReporting:
    def test_new_cases_listed_and_not_gating(self):
        old = _report(cases={"alpha": 1000.0})
        new = _report(cases={"alpha": 1000.0, "gamma": 10.0, "delta": 5.0})
        comparison = compare_bench(old, new)
        assert comparison.ok
        assert {case.name for case in comparison.new_cases} == {"gamma", "delta"}
        assert not comparison.regressions

    def test_render_marks_new_cases_and_suggests_refresh(self):
        comparison = compare_bench(
            _report(cases={"alpha": 1000.0}),
            _report(cases={"alpha": 1000.0, "gamma": 10.0}),
        )
        rendered = comparison.render()
        assert "NEW" in rendered
        assert "gamma" in rendered
        assert "refresh the baseline" in rendered

    def test_regression_still_fails_alongside_new_case(self):
        comparison = compare_bench(
            _report(cases={"alpha": 1000.0}),
            _report(cases={"alpha": 100.0, "gamma": 10.0}),
        )
        assert not comparison.ok
        assert {case.name for case in comparison.new_cases} == {"gamma"}
