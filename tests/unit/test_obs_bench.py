"""Unit tests for the bench harness: reports, files, and the compare gate."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_THRESHOLD,
    SUITE_NAMES,
    bench_filename,
    compare_bench,
    load_bench_json,
    run_bench_suite,
    write_bench_json,
)


def _report(label="test", cases=None):
    """A structurally valid bench report without running anything."""
    cases = cases if cases is not None else {"alpha": 1000.0, "beta": 2000.0}
    return {
        "v": BENCH_SCHEMA_VERSION,
        "label": label,
        "quick": True,
        "seed": 1,
        "created_unix": 0.0,
        "git_sha": "deadbeef",
        "env": {},
        "elapsed_seconds": 0.0,
        "cases": {
            name: {
                "trials": 3,
                "n": 4,
                "total_steps": 100,
                "elapsed_seconds": 0.1,
                "steps_per_sec": sps,
                "latency_p50_s": 0.01,
                "latency_p95_s": 0.02,
                "metrics": None,
            }
            for name, sps in cases.items()
        },
    }


class TestSuiteRun:
    def test_single_case_quick_run(self):
        report = run_bench_suite(
            label="unit", quick=True, seed=3, suites=["consensus"]
        )
        assert report["v"] == BENCH_SCHEMA_VERSION
        assert report["label"] == "unit"
        assert report["quick"] is True
        assert list(report["cases"]) == ["consensus"]
        case = report["cases"]["consensus"]
        assert case["steps_per_sec"] > 0
        assert case["total_steps"] > 0
        assert case["latency_p50_s"] <= case["latency_p95_s"]
        assert case["metrics"]["v"] == 1
        assert case["metrics"]["counters"]["run.count"] == case["trials"]

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown bench case"):
            run_bench_suite(suites=["no-such-case"])

    def test_suite_names_cover_required_cases(self):
        for required in (
            "simulator-step", "snapshot-conciliator", "sifting-conciliator",
            "cil-embedded", "consensus",
        ):
            assert required in SUITE_NAMES


class TestBenchFiles:
    def test_write_to_directory_uses_canonical_name(self, tmp_path):
        path = write_bench_json(_report(label="ci"), tmp_path)
        assert path.name == bench_filename("ci") == "BENCH_ci.json"
        assert load_bench_json(path)["label"] == "ci"

    def test_write_creates_parent_dirs(self, tmp_path):
        path = write_bench_json(_report(), tmp_path / "deep" / "out.json")
        assert load_bench_json(path)["v"] == BENCH_SCHEMA_VERSION

    def test_trailing_slash_means_directory_and_creates_it(self, tmp_path):
        path = write_bench_json(_report(label="x"), f"{tmp_path}/new-dir/")
        assert path.name == "BENCH_x.json"
        assert path.parent.name == "new-dir"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot be read"):
            load_bench_json(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_bench_json(path)

    def test_load_foreign_version(self, tmp_path):
        report = _report()
        report["v"] = BENCH_SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(report))
        with pytest.raises(ConfigurationError, match="unsupported bench"):
            load_bench_json(path)


class TestCompareGate:
    def test_within_threshold_is_ok(self):
        old = _report(cases={"alpha": 1000.0})
        new = _report(cases={"alpha": 900.0})  # -10%
        comparison = compare_bench(old, new, threshold=0.4)
        assert comparison.ok
        assert comparison.regressions == []
        (case,) = comparison.cases
        assert case.change == pytest.approx(-0.1)

    def test_regression_past_threshold_fails(self):
        old = _report(cases={"alpha": 1000.0, "beta": 1000.0})
        new = _report(cases={"alpha": 500.0, "beta": 990.0})  # -50%, -1%
        comparison = compare_bench(old, new, threshold=0.4)
        assert not comparison.ok
        assert [case.name for case in comparison.regressions] == ["alpha"]

    def test_improvement_never_fails(self):
        old = _report(cases={"alpha": 1000.0})
        new = _report(cases={"alpha": 5000.0})
        assert compare_bench(old, new, threshold=0.01).ok

    def test_boundary_is_inclusive_of_threshold(self):
        old = _report(cases={"alpha": 1000.0})
        exactly = _report(cases={"alpha": 600.0})  # change == -threshold
        assert compare_bench(old, exactly, threshold=0.4).ok
        past = _report(cases={"alpha": 599.0})
        assert not compare_bench(old, past, threshold=0.4).ok

    def test_missing_case_in_new_is_a_regression(self):
        old = _report(cases={"alpha": 1000.0, "beta": 1000.0})
        new = _report(cases={"alpha": 1000.0})
        comparison = compare_bench(old, new)
        assert not comparison.ok
        (missing,) = comparison.regressions
        assert missing.name == "beta"
        assert "missing" in missing.note

    def test_new_only_case_is_informational(self):
        old = _report(cases={"alpha": 1000.0})
        new = _report(cases={"alpha": 1000.0, "gamma": 10.0})
        comparison = compare_bench(old, new)
        assert comparison.ok
        names = {case.name for case in comparison.cases}
        assert "gamma" in names

    def test_threshold_must_be_a_fraction(self):
        old, new = _report(), _report()
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError, match="threshold"):
                compare_bench(old, new, threshold=bad)

    def test_default_threshold_matches_ci_gate(self):
        assert DEFAULT_THRESHOLD == 0.4

    def test_change_pct_mirrors_change_in_json(self):
        old = _report(cases={"alpha": 1000.0, "beta": 1000.0})
        new = _report(cases={"alpha": 900.0})
        comparison = compare_bench(old, new, threshold=0.4)
        by_name = {case.name: case for case in comparison.cases}
        assert by_name["alpha"].change_pct == pytest.approx(-10.0)
        assert by_name["beta"].change_pct is None  # missing: no delta
        data = comparison.to_json()
        json_by_name = {case["name"]: case for case in data["cases"]}
        assert json_by_name["alpha"]["change_pct"] == pytest.approx(-10.0)
        assert json_by_name["beta"]["change_pct"] is None

    def test_json_and_render_forms(self):
        comparison = compare_bench(
            _report(cases={"alpha": 1000.0}),
            _report(cases={"alpha": 100.0}),
        )
        data = comparison.to_json()
        assert data["ok"] is False
        assert data["cases"][0]["name"] == "alpha"
        rendered = comparison.render()
        assert "alpha" in rendered
        assert "REGRESSED" in rendered
