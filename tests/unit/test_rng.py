"""Unit tests for the seed tree (randomness plumbing)."""

import pytest

from repro.runtime.rng import SeedTree, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_distinct_labels_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_distinct_masters_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_structure_matters(self):
        # ("a", "b") must differ from ("ab",): labels are delimited.
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")

    def test_empty_path_differs_from_any_label(self):
        assert derive_seed(5) != derive_seed(5, "")

    def test_non_negative(self):
        assert derive_seed(123, "x") >= 0


class TestSeedTree:
    def test_root_seed_is_master(self):
        assert SeedTree(99).seed == 99

    def test_child_path(self):
        tree = SeedTree(1).child("a").child("b")
        assert tree.path == ("a", "b")

    def test_same_path_same_stream(self):
        one = SeedTree(7).child("x").rng()
        two = SeedTree(7).child("x").rng()
        assert [one.random() for _ in range(5)] == [two.random() for _ in range(5)]

    def test_sibling_streams_differ(self):
        one = SeedTree(7).child("x").rng()
        two = SeedTree(7).child("y").rng()
        assert [one.random() for _ in range(5)] != [two.random() for _ in range(5)]

    def test_schedule_and_algorithm_branches_are_independent(self):
        # The structural independence the oblivious model relies on.
        tree = SeedTree(42)
        schedule = tree.child("schedule").rng()
        algorithm = tree.child("algorithm").rng()
        assert schedule.getrandbits(64) != algorithm.getrandbits(64)

    def test_children_generator(self):
        tree = SeedTree(3)
        kids = list(tree.children("proc", 4))
        assert len(kids) == 4
        assert len({kid.seed for kid in kids}) == 4

    def test_equality_and_hash(self):
        assert SeedTree(1).child("a") == SeedTree(1).child("a")
        assert hash(SeedTree(1).child("a")) == hash(SeedTree(1).child("a"))
        assert SeedTree(1).child("a") != SeedTree(1).child("b")

    def test_equality_not_implemented_for_other_types(self):
        assert SeedTree(1) != "not a tree"

    def test_tree_is_immutable_by_branching(self):
        root = SeedTree(5)
        child = root.child("x")
        assert root.path == ()
        assert child.path == ("x",)
