"""Unit tests for the per-shard circuit breaker state machine."""

import pytest

from repro.errors import ConfigurationError
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker


def make(threshold=3, cooldown=1.0, probes=2):
    return CircuitBreaker(BreakerConfig(
        failure_threshold=threshold,
        cooldown=cooldown,
        half_open_probes=probes,
    ))


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"cooldown": 0.0},
        {"half_open_probes": 0},
    ])
    def test_bad_config_is_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BreakerConfig(**kwargs)


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = make()
        assert breaker.state == CLOSED
        assert breaker.allow(0.0)

    def test_consecutive_failures_trip_at_the_threshold(self):
        breaker = make(threshold=3)
        breaker.record_failure(0.1)
        breaker.record_failure(0.2)
        assert breaker.state == CLOSED
        breaker.record_failure(0.3)
        assert breaker.state == OPEN
        assert breaker.opened == 1

    def test_a_success_resets_the_failure_streak(self):
        breaker = make(threshold=3)
        breaker.record_failure(0.1)
        breaker.record_failure(0.2)
        breaker.record_success(0.3)
        breaker.record_failure(0.4)
        breaker.record_failure(0.5)
        assert breaker.state == CLOSED  # streak broken at 2


class TestOpen:
    def test_open_refuses_until_the_cooldown(self):
        breaker = make(cooldown=1.0)
        for t in (0.1, 0.2, 0.3):
            breaker.record_failure(t)
        assert breaker.state == OPEN
        assert not breaker.allow(0.5)
        assert not breaker.allow(1.2)
        # Cooldown elapses 1.0s after the trip at t=0.3.
        assert breaker.allow(1.3)
        assert breaker.state == HALF_OPEN
        assert breaker.half_opened == 1

    def test_late_failures_while_open_do_not_extend_the_cooldown(self):
        breaker = make(cooldown=1.0)
        for t in (0.1, 0.2, 0.3):
            breaker.record_failure(t)
        breaker.record_failure(0.9)  # in-flight result landing late
        assert breaker.allow(1.3)   # still measured from the trip


class TestHalfOpen:
    def trip(self, breaker, at=0.0):
        for index in range(breaker.config.failure_threshold):
            breaker.record_failure(at + index * 0.01)

    def test_probe_budget_limits_concurrent_admissions(self):
        breaker = make(cooldown=1.0, probes=2)
        self.trip(breaker)
        assert breaker.allow(2.0)
        assert breaker.allow(2.0)
        assert not breaker.allow(2.0)  # only 2 probes in flight

    def test_enough_probe_successes_close_the_breaker(self):
        breaker = make(cooldown=1.0, probes=2)
        self.trip(breaker)
        assert breaker.allow(2.0)
        assert breaker.allow(2.0)
        breaker.record_success(2.1)
        assert breaker.state == HALF_OPEN
        breaker.record_success(2.2)
        assert breaker.state == CLOSED
        assert breaker.closed_again == 1

    def test_one_probe_failure_reopens_with_a_fresh_cooldown(self):
        breaker = make(cooldown=1.0, probes=2)
        self.trip(breaker)
        assert breaker.allow(2.0)
        breaker.record_failure(2.1)
        assert breaker.state == OPEN
        assert breaker.opened == 2
        assert not breaker.allow(2.9)   # fresh cooldown from t=2.1
        assert breaker.allow(3.2)

    def test_abandoned_probes_release_their_slots(self):
        """A probe that ends without an outcome (deadline death before
        any attempt) must free its slot, or the breaker wedges half-open
        once every slot has leaked."""
        breaker = make(cooldown=1.0, probes=1)
        self.trip(breaker)
        assert breaker.allow(2.0)          # the only probe slot
        assert not breaker.allow(2.1)      # budget exhausted
        breaker.probe_abandoned(2.2)       # probe died with no outcome
        assert breaker.state == HALF_OPEN  # abandonment is not a failure
        assert breaker.allow(2.3)          # slot is admittable again
        breaker.record_success(2.4)
        assert breaker.state == CLOSED

    def test_abandonment_does_not_count_toward_closing(self):
        breaker = make(cooldown=1.0, probes=2)
        self.trip(breaker)
        assert breaker.allow(2.0)
        assert breaker.allow(2.0)
        breaker.probe_abandoned(2.1)
        breaker.record_success(2.2)
        assert breaker.state == HALF_OPEN  # one success, not two
        assert breaker.allow(2.3)
        breaker.record_success(2.4)
        assert breaker.state == CLOSED

    def test_probe_abandoned_outside_half_open_is_a_no_op(self):
        breaker = make()
        breaker.probe_abandoned(0.1)
        assert breaker.state == CLOSED
        self.trip(breaker, at=1.0)
        breaker.probe_abandoned(1.5)
        assert breaker.state == OPEN
        assert breaker.allow(2.1)  # cooldown re-entry unaffected

    def test_full_cycle_counters(self):
        """open -> half-open -> closed transitions all land in counters
        (the SLO report's evidence that the cycle really happened)."""
        breaker = make(cooldown=1.0, probes=1)
        self.trip(breaker)
        assert breaker.allow(2.0)
        breaker.record_success(2.1)
        snapshot = breaker.to_json()
        assert snapshot == {
            "state": CLOSED,
            "opened": 1,
            "half_opened": 1,
            "closed_again": 1,
        }
