"""Unit tests for trace recording and semantics checkers."""

import pytest

from repro.errors import ProtocolViolationError
from repro.runtime.trace import (
    TraceEvent,
    TraceRecorder,
    check_max_register_semantics,
    check_register_semantics,
    check_snapshot_semantics,
    steps_by_object,
)


def event(step, pid, kind, obj_name="r", value=None, result=None):
    return TraceEvent(step=step, pid=pid, kind=kind, obj_name=obj_name,
                      value=value, result=result)


class TestTraceRecorder:
    def test_records_in_order(self):
        recorder = TraceRecorder()
        recorder.record(event(0, 0, "write", value=1))
        recorder.record(event(1, 1, "read", result=1))
        assert len(recorder) == 2
        assert recorder.events[0].kind == "write"

    def test_filter_by_object(self):
        recorder = TraceRecorder()
        recorder.record(event(0, 0, "write", obj_name="a"))
        recorder.record(event(1, 0, "write", obj_name="b"))
        assert len(recorder.for_object("a")) == 1

    def test_filter_by_pid(self):
        recorder = TraceRecorder()
        recorder.record(event(0, 0, "write"))
        recorder.record(event(1, 1, "write"))
        assert len(recorder.for_pid(1)) == 1

    def test_steps_by_object(self):
        events = [event(0, 0, "write", obj_name="a"),
                  event(1, 0, "read", obj_name="a"),
                  event(2, 0, "read", obj_name="b")]
        assert steps_by_object(events) == {"a": 2, "b": 1}


class TestRegisterChecker:
    def test_accepts_valid_history(self):
        events = [
            event(0, 0, "read", result=None),
            event(1, 0, "write", value=3),
            event(2, 1, "read", result=3),
            event(3, 1, "write", value=4),
            event(4, 0, "read", result=4),
        ]
        check_register_semantics(events)

    def test_rejects_stale_read(self):
        events = [
            event(0, 0, "write", value=3),
            event(1, 1, "read", result=None),
        ]
        with pytest.raises(ProtocolViolationError, match="read at step 1"):
            check_register_semantics(events)

    def test_respects_initial_value(self):
        events = [event(0, 0, "read", result="init")]
        check_register_semantics(events, initial="init")


class TestSnapshotChecker:
    def test_accepts_valid_history(self):
        events = [
            event(0, 0, "update", value="x"),
            event(1, 1, "scan", result=("x", None)),
            event(2, 1, "update", value="y"),
            event(3, 0, "scan", result=("x", "y")),
        ]
        check_snapshot_semantics(events, n=2)

    def test_rejects_wrong_view(self):
        events = [
            event(0, 0, "update", value="x"),
            event(1, 1, "scan", result=(None, None)),
        ]
        with pytest.raises(ProtocolViolationError, match="scan at step 1"):
            check_snapshot_semantics(events, n=2)


class TestMaxRegisterChecker:
    def test_accepts_monotone_history(self):
        events = [
            event(0, 0, "maxwrite", value=2),
            event(1, 1, "maxwrite", value=1),
            event(2, 1, "maxread", result=2),
        ]
        check_max_register_semantics(events)

    def test_rejects_non_max_read(self):
        events = [
            event(0, 0, "maxwrite", value=2),
            event(1, 1, "maxread", result=1),
        ]
        with pytest.raises(ProtocolViolationError):
            check_max_register_semantics(events)


class TestSimulatedTracesSatisfyCheckers:
    def test_full_run_trace_passes_register_checker(self):
        from repro.memory.register import AtomicRegister
        from repro.runtime.operations import Read, Write
        from repro.runtime.rng import SeedTree
        from repro.runtime.scheduler import RandomSchedule
        from repro.runtime.simulator import run_programs

        register = AtomicRegister("shared")

        def program(ctx):
            yield Write(register, ctx.pid)
            value = yield Read(register)
            yield Write(register, value)
            return value

        result = run_programs(
            [program] * 4,
            RandomSchedule(4, 123),
            SeedTree(9),
            record_trace=True,
        )
        check_register_semantics(result.trace.for_object("shared"))

    def test_full_run_trace_passes_snapshot_checker(self):
        from repro.memory.snapshot import SnapshotObject
        from repro.runtime.operations import Scan, Update
        from repro.runtime.rng import SeedTree
        from repro.runtime.scheduler import RandomSchedule
        from repro.runtime.simulator import run_programs

        snapshot = SnapshotObject(4, "A")

        def program(ctx):
            yield Update(snapshot, ctx.pid * 10)
            view = yield Scan(snapshot)
            return view

        result = run_programs(
            [program] * 4,
            RandomSchedule(4, 321),
            SeedTree(9),
            record_trace=True,
        )
        check_snapshot_semantics(result.trace.for_object("A"), n=4)
