"""Unit tests for shared-memory objects (register, snapshot, max register)."""

import pytest

from repro.errors import InvalidOperationError
from repro.memory.base import SharedObject
from repro.memory.max_register import MaxRegister
from repro.memory.register import AtomicRegister
from repro.memory.register_array import ObjectArray, RegisterArray, SnapshotArray
from repro.memory.snapshot import SnapshotObject
from repro.runtime.operations import (
    MaxRead,
    MaxWrite,
    Read,
    Scan,
    Update,
    Write,
)


class TestAtomicRegister:
    def test_initial_value(self):
        register = AtomicRegister("r", initial="empty")
        assert register.apply(Read(register), pid=0) == "empty"

    def test_write_then_read(self):
        register = AtomicRegister("r")
        register.apply(Write(register, 17), pid=0)
        assert register.apply(Read(register), pid=1) == 17

    def test_last_write_wins(self):
        register = AtomicRegister("r")
        register.apply(Write(register, "a"), pid=0)
        register.apply(Write(register, "b"), pid=1)
        assert register.apply(Read(register), pid=2) == "b"

    def test_counts_operations(self):
        register = AtomicRegister("r")
        register.apply(Write(register, 1), pid=0)
        register.apply(Read(register), pid=0)
        register.apply(Read(register), pid=0)
        assert register.write_count == 1
        assert register.read_count == 2

    def test_reset_restores_initial(self):
        register = AtomicRegister("r", initial=None)
        register.apply(Write(register, 5), pid=0)
        register.reset()
        assert register.value is None
        assert register.write_count == 0

    def test_rejects_scan(self):
        register = AtomicRegister("r")
        with pytest.raises(InvalidOperationError):
            register.apply(Scan(register), pid=0)

    def test_unbounded_values(self):
        # The paper assumes no register size limit; whole structures fit.
        register = AtomicRegister("r")
        payload = {"vector": list(range(100)), "tag": ("persona", 3)}
        register.apply(Write(register, payload), pid=0)
        assert register.apply(Read(register), pid=1) == payload


class TestSnapshotObject:
    def test_scan_empty(self):
        snapshot = SnapshotObject(3, "A")
        assert snapshot.apply(Scan(snapshot), pid=0) == (None, None, None)

    def test_update_own_component(self):
        snapshot = SnapshotObject(3, "A")
        snapshot.apply(Update(snapshot, "x"), pid=1)
        assert snapshot.apply(Scan(snapshot), pid=0) == (None, "x", None)

    def test_scan_is_entire_vector(self):
        snapshot = SnapshotObject(2, "A")
        snapshot.apply(Update(snapshot, 10), pid=0)
        snapshot.apply(Update(snapshot, 20), pid=1)
        assert snapshot.apply(Scan(snapshot), pid=0) == (10, 20)

    def test_scan_returns_immutable_view(self):
        snapshot = SnapshotObject(2, "A")
        view = snapshot.apply(Scan(snapshot), pid=0)
        assert isinstance(view, tuple)

    def test_later_updates_do_not_mutate_old_views(self):
        snapshot = SnapshotObject(2, "A")
        snapshot.apply(Update(snapshot, "old"), pid=0)
        view = snapshot.apply(Scan(snapshot), pid=1)
        snapshot.apply(Update(snapshot, "new"), pid=0)
        assert view == ("old", None)

    def test_view_sizes_recorded_and_nest(self):
        snapshot = SnapshotObject(3, "A")
        snapshot.apply(Scan(snapshot), pid=0)
        snapshot.apply(Update(snapshot, 1), pid=0)
        snapshot.apply(Scan(snapshot), pid=1)
        snapshot.apply(Update(snapshot, 2), pid=1)
        snapshot.apply(Scan(snapshot), pid=2)
        assert snapshot.view_sizes == [0, 1, 2]
        assert snapshot.views_nest()

    def test_update_out_of_range_pid_rejected(self):
        snapshot = SnapshotObject(2, "A")
        with pytest.raises(InvalidOperationError):
            snapshot.apply(Update(snapshot, 1), pid=2)

    def test_rejects_register_read(self):
        snapshot = SnapshotObject(2, "A")
        with pytest.raises(InvalidOperationError):
            snapshot.apply(Read(snapshot), pid=0)

    def test_rejects_zero_size(self):
        with pytest.raises(InvalidOperationError):
            SnapshotObject(0, "A")


class TestMaxRegister:
    def test_empty_reads_none(self):
        register = MaxRegister("m")
        assert register.apply(MaxRead(register), pid=0) is None

    def test_keeps_maximum(self):
        register = MaxRegister("m")
        register.apply(MaxWrite(register, 5), pid=0)
        register.apply(MaxWrite(register, 3), pid=1)
        assert register.apply(MaxRead(register), pid=2) == 5

    def test_larger_write_replaces(self):
        register = MaxRegister("m")
        register.apply(MaxWrite(register, 3), pid=0)
        register.apply(MaxWrite(register, 9), pid=1)
        assert register.apply(MaxRead(register), pid=2) == 9

    def test_tuple_ordering(self):
        register = MaxRegister("m")
        register.apply(MaxWrite(register, (2, 0, "low")), pid=0)
        register.apply(MaxWrite(register, (2, 1, "high")), pid=1)
        assert register.apply(MaxRead(register), pid=2) == (2, 1, "high")

    def test_rejects_plain_write(self):
        register = MaxRegister("m")
        with pytest.raises(InvalidOperationError):
            register.apply(Write(register, 1), pid=0)


class TestObjectArrays:
    def test_register_array_lazy_allocation(self):
        array = RegisterArray("r")
        assert len(array) == 0
        register = array[3]
        assert array.allocated() == [3]
        assert array[3] is register

    def test_register_array_names_indexed(self):
        array = RegisterArray("rounds")
        assert array[2].name == "rounds[2]"

    def test_snapshot_array_builds_n_sized_snapshots(self):
        array = SnapshotArray(4, "A")
        assert array[0].n == 4

    def test_negative_index_rejected(self):
        with pytest.raises(IndexError):
            RegisterArray("r")[-1]

    def test_iteration_in_index_order(self):
        array = RegisterArray("r")
        array[5]
        array[1]
        names = [register.name for register in array]
        assert names == ["r[1]", "r[5]"]


class TestSharedObjectBase:
    def test_anonymous_objects_get_unique_names(self):
        one, two = AtomicRegister(), AtomicRegister()
        assert one.name != two.name

    def test_base_apply_not_implemented(self):
        obj = SharedObject("base")
        with pytest.raises(NotImplementedError):
            obj.apply(Read(obj), pid=0)
