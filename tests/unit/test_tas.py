"""Unit tests for the sifting test-and-set (Alistarh-Aspnes structure)."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import ExplicitSchedule, RandomSchedule
from repro.runtime.simulator import run_programs
from repro.tas.sifting_tas import LOSER, WINNER, SiftingTestAndSet
from repro.workloads.schedules import make_schedule


def run_tas(n, seed, schedule=None, tas=None):
    seeds = SeedTree(seed)
    tas = tas if tas is not None else SiftingTestAndSet(n)
    if schedule is None:
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
    result = run_programs([tas.program] * n, schedule, seeds)
    return tas, result


class TestWinnerUniqueness:
    @pytest.mark.parametrize("n", [1, 2, 4, 16, 64])
    def test_exactly_one_winner(self, n):
        for seed in range(10):
            _, result = run_tas(n, seed)
            winners = [pid for pid, out in result.outputs.items()
                       if out == WINNER]
            assert len(winners) == 1, (n, seed)

    def test_solo_process_wins(self):
        _, result = run_tas(1, seed=5)
        assert result.outputs[0] == WINNER

    def test_outputs_are_binary(self):
        _, result = run_tas(8, seed=6)
        assert set(result.outputs.values()) <= {WINNER, LOSER}

    @pytest.mark.parametrize(
        "family", ["round-robin", "reversed", "blocks", "front-runner"]
    )
    def test_unique_winner_per_adversary_family(self, family):
        n = 8
        for seed in range(5):
            seeds = SeedTree(seed)
            tas = SiftingTestAndSet(n)
            schedule = make_schedule(family, n, seeds.child("schedule"))
            result = run_programs([tas.program] * n, schedule, seeds)
            winners = [pid for pid, out in result.outputs.items()
                       if out == WINNER]
            assert len(winners) == 1, (family, seed)


class TestFilterBehaviour:
    def test_losers_and_survivors_partition(self):
        tas, result = run_tas(16, seed=7)
        assert tas.filter_survivors + tas.filter_losers == 16
        assert tas.filter_survivors >= 1

    def test_filter_sifts_most_processes(self):
        # Across seeds, the mean survivor count must be far below n.
        n = 64
        survivor_counts = []
        for seed in range(20):
            tas, _ = run_tas(n, seed=100 + seed)
            survivor_counts.append(tas.filter_survivors)
        assert sum(survivor_counts) / len(survivor_counts) < n / 4

    def test_all_writers_schedule_everyone_survives(self):
        # p = 1 in every round: nobody ever reads, so nobody loses the
        # filter and the backup consensus decides among all n.
        n = 4
        tas = SiftingTestAndSet(n, rounds=3, p_schedule=[1.0] * 3)
        tas_obj, result = run_tas(n, seed=8, tas=tas)
        assert tas_obj.filter_survivors == n
        winners = [pid for pid, out in result.outputs.items() if out == WINNER]
        assert len(winners) == 1

    def test_sequential_schedule_later_readers_lose(self):
        # Round 1 with p favoring writes for pid 0 only is not directly
        # controllable (coins are private), so use p=1 then p=0: with
        # p_schedule [1.0, 0.0] everyone writes round 0; in round 1 all
        # read.  Sequential schedule: pid 0 reads r_1 empty and survives;
        # later pids read r_1... also empty (readers never write), so all
        # survive and the backup decides.
        n = 3
        tas = SiftingTestAndSet(n, rounds=2, p_schedule=[1.0, 0.0])
        tas_obj, result = run_tas(
            n, seed=9,
            schedule=ExplicitSchedule([0] * 40 + [1] * 40 + [2] * 40, n=n),
            tas=tas,
        )
        assert tas_obj.filter_survivors == n

    def test_loser_steps_bounded_by_filter(self):
        n = 32
        tas, result = run_tas(n, seed=10)
        losers = [pid for pid, out in result.outputs.items() if out == LOSER]
        filter_only = [
            pid for pid in losers
            if result.steps_by_pid[pid] <= tas.filter_step_bound()
        ]
        # Most losers exit inside the filter without touching the backup.
        assert len(filter_only) >= len(losers) // 2


class TestConfiguration:
    def test_rejects_zero_processes(self):
        with pytest.raises(ConfigurationError):
            SiftingTestAndSet(0)

    def test_schedule_length_checked(self):
        with pytest.raises(ConfigurationError):
            SiftingTestAndSet(4, rounds=3, p_schedule=[0.5])

    def test_default_rounds_track_sifting_formula(self):
        from repro.core.rounds import sifting_rounds

        assert SiftingTestAndSet(64).rounds == sifting_rounds(64, 0.5)
