"""Unit tests for oblivious schedules."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import (
    BlockSchedule,
    CrashSchedule,
    ExplicitSchedule,
    FrontRunnerSchedule,
    InterleavedLockstepSchedule,
    LimitedSchedule,
    PermutedRoundRobinSchedule,
    RandomSchedule,
    ReversedRoundRobinSchedule,
    RoundRobinSchedule,
    StutterSchedule,
    standard_gallery,
)


class TestExplicitSchedule:
    def test_yields_given_slots(self):
        assert ExplicitSchedule([0, 1, 1, 0]).take(10) == [0, 1, 1, 0]

    def test_infers_n(self):
        assert ExplicitSchedule([0, 2, 1]).n == 3

    def test_rejects_out_of_range_pid(self):
        with pytest.raises(ConfigurationError):
            ExplicitSchedule([0, 5], n=2)

    def test_empty_schedule_allowed(self):
        assert ExplicitSchedule([]).take(3) == []


class TestRoundRobin:
    def test_cycles_in_order(self):
        assert RoundRobinSchedule(3).take(7) == [0, 1, 2, 0, 1, 2, 0]

    def test_finite_rounds(self):
        assert RoundRobinSchedule(2, rounds=2).take(100) == [0, 1, 0, 1]

    def test_reversed_order(self):
        assert ReversedRoundRobinSchedule(3).take(6) == [2, 1, 0, 2, 1, 0]

    def test_rejects_zero_processes(self):
        with pytest.raises(ConfigurationError):
            RoundRobinSchedule(0)


class TestRandomSchedule:
    def test_deterministic_per_seed(self):
        assert RandomSchedule(4, 9).take(50) == RandomSchedule(4, 9).take(50)

    def test_different_seeds_differ(self):
        assert RandomSchedule(4, 1).take(50) != RandomSchedule(4, 2).take(50)

    def test_pids_in_range(self):
        assert all(0 <= pid < 5 for pid in RandomSchedule(5, 3).take(200))

    def test_restartable(self):
        schedule = RandomSchedule(4, 9)
        assert schedule.take(20) == schedule.take(20)

    def test_covers_all_processes_eventually(self):
        assert set(RandomSchedule(6, 0).take(500)) == set(range(6))


class TestBlockSchedule:
    def test_blocks_are_consecutive(self):
        slots = BlockSchedule(4, 3, seed=1).take(30)
        for start in range(0, 30, 3):
            block = slots[start : start + 3]
            assert len(set(block)) == 1

    def test_rejects_bad_block_size(self):
        with pytest.raises(ConfigurationError):
            BlockSchedule(4, 0, seed=1)


class TestFrontRunner:
    def test_leader_runs_first(self):
        slots = FrontRunnerSchedule(4, leader=2, lead_steps=5).take(9)
        assert slots[:5] == [2] * 5
        assert slots[5:] == [0, 1, 2, 3]

    def test_default_lead_is_4n(self):
        schedule = FrontRunnerSchedule(8)
        assert schedule.take(32) == [0] * 32

    def test_rejects_bad_leader(self):
        with pytest.raises(ConfigurationError):
            FrontRunnerSchedule(3, leader=3)


class TestCrashSchedule:
    def test_crashed_pid_disappears_after_budget(self):
        base = RoundRobinSchedule(3)
        slots = CrashSchedule(base, {1: 2}).take(10)
        assert slots.count(1) == 2
        # Remaining slots keep other pids alive.
        assert slots[:4] == [0, 1, 2, 0]

    def test_zero_budget_never_scheduled(self):
        slots = CrashSchedule(RoundRobinSchedule(2), {0: 0}).take(6)
        assert slots == [1] * 6

    def test_rejects_unknown_pid(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule(RoundRobinSchedule(2), {5: 1})

    def test_rejects_negative_budget(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule(RoundRobinSchedule(2), {0: -1})


class TestStutterAndLimited:
    def test_stutter_repeats_slots(self):
        slots = StutterSchedule(RoundRobinSchedule(2), 3).take(8)
        assert slots == [0, 0, 0, 1, 1, 1, 0, 0]

    def test_stutter_rejects_zero_repeat(self):
        with pytest.raises(ConfigurationError):
            StutterSchedule(RoundRobinSchedule(2), 0)

    def test_limited_truncates(self):
        slots = LimitedSchedule(RoundRobinSchedule(3), 4).take(100)
        assert slots == [0, 1, 2, 0]

    def test_limited_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            LimitedSchedule(RoundRobinSchedule(2), -1)


class TestGallery:
    def test_gallery_members_cover_n(self):
        gallery = standard_gallery(4, SeedTree(0))
        for name, schedule in gallery.items():
            assert schedule.n == 4, name
            assert all(0 <= pid < 4 for pid in schedule.take(50)), name

    def test_gallery_includes_crash_only_for_n_above_one(self):
        assert "crash-half" not in standard_gallery(1, SeedTree(0))
        assert "crash-half" in standard_gallery(4, SeedTree(0))

    def test_schedules_are_oblivious_to_reiteration(self):
        # Iterating twice gives the same sequence: the schedule is a fixed
        # object, not a reactive one.
        for name, schedule in standard_gallery(3, SeedTree(1)).items():
            assert schedule.take(40) == schedule.take(40), name


class TestExplicitScheduleValueSemantics:
    def test_equality_and_hash(self):
        assert ExplicitSchedule([0, 1, 0]) == ExplicitSchedule([0, 1, 0])
        assert hash(ExplicitSchedule([0, 1, 0])) == hash(
            ExplicitSchedule([0, 1, 0])
        )
        assert ExplicitSchedule([0, 1, 0]) != ExplicitSchedule([0, 1, 1])
        assert ExplicitSchedule([0, 1], n=2) != ExplicitSchedule([0, 1], n=3)
        assert ExplicitSchedule([0]) != "not a schedule"

    def test_json_round_trip(self):
        schedule = ExplicitSchedule([0, 2, 1, 1], n=4)
        restored = ExplicitSchedule.from_json(schedule.to_json())
        assert restored == schedule
        assert restored.n == 4

    def test_unknown_version_rejected(self):
        data = ExplicitSchedule([0, 1]).to_json()
        data["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            ExplicitSchedule.from_json(data)

    def test_wrong_kind_rejected(self):
        data = ExplicitSchedule([0, 1]).to_json()
        data["kind"] = "random"
        with pytest.raises(ConfigurationError, match="kind"):
            ExplicitSchedule.from_json(data)

    def test_from_json_revalidates_slots(self):
        data = ExplicitSchedule([0, 1]).to_json()
        data["slots"] = [0, 7]
        with pytest.raises(ConfigurationError):
            ExplicitSchedule.from_json(data)


class TestPermutedRoundRobin:
    def test_every_pass_is_a_permutation(self):
        n = 5
        slots = PermutedRoundRobinSchedule(n, seed=3).take(n * 20)
        for start in range(0, len(slots), n):
            assert sorted(slots[start : start + n]) == list(range(n))

    def test_passes_are_not_all_identical(self):
        n = 6
        slots = PermutedRoundRobinSchedule(n, seed=1).take(n * 30)
        passes = {tuple(slots[start : start + n]) for start in range(0, len(slots), n)}
        assert len(passes) > 1

    def test_deterministic_per_seed_and_restartable(self):
        schedule = PermutedRoundRobinSchedule(4, seed=9)
        assert schedule.take(40) == schedule.take(40)
        assert schedule.take(40) == PermutedRoundRobinSchedule(4, seed=9).take(40)
        assert schedule.take(40) != PermutedRoundRobinSchedule(4, seed=10).take(40)

    def test_rejects_zero_processes(self):
        with pytest.raises(ConfigurationError):
            PermutedRoundRobinSchedule(0, seed=0)


class TestInterleavedLockstep:
    def test_every_window_has_each_pid_twice(self):
        n = 4
        slots = InterleavedLockstepSchedule(n, seed=2).take(2 * n * 20)
        for start in range(0, len(slots), 2 * n):
            window = slots[start : start + 2 * n]
            assert sorted(window) == sorted(list(range(n)) * 2)

    def test_splits_some_processs_pair(self):
        # The point of this family: some window runs one process's *second*
        # step before another process's *first* (permuted round-robin can't).
        n = 3
        slots = InterleavedLockstepSchedule(n, seed=0).take(2 * n * 50)
        interleaved = False
        for start in range(0, len(slots), 2 * n):
            window = slots[start : start + 2 * n]
            first = {pid: window.index(pid) for pid in range(n)}
            second = {
                pid: len(window) - 1 - window[::-1].index(pid)
                for pid in range(n)
            }
            if any(
                second[p] < first[q]
                for p in range(n)
                for q in range(n)
                if p != q
            ):
                interleaved = True
        assert interleaved

    def test_deterministic_per_seed_and_restartable(self):
        schedule = InterleavedLockstepSchedule(4, seed=7)
        assert schedule.take(48) == schedule.take(48)
        assert schedule.take(48) == InterleavedLockstepSchedule(4, seed=7).take(48)

    def test_rejects_zero_processes(self):
        with pytest.raises(ConfigurationError):
            InterleavedLockstepSchedule(0, seed=0)
