"""Unit tests for Algorithm 1 over register-emulated snapshots (E15)."""

import pytest

import helpers
from repro.core.emulated_conciliator import EmulatedSnapshotConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError


class TestBehaviour:
    def test_terminates_valid(self):
        n = 6
        conciliator = EmulatedSnapshotConciliator(n)
        result = helpers.run_conciliator_once(conciliator, list(range(n)), seed=1)
        assert result.completed
        assert result.validity_holds({pid: pid for pid in range(n)})

    def test_same_round_structure_as_unit_cost(self):
        n = 8
        emulated = EmulatedSnapshotConciliator(n)
        unit = SnapshotConciliator(n)
        assert emulated.rounds == unit.rounds
        assert emulated.priority_range == unit.priority_range

    def test_agreement_rate_matches_unit_cost_guarantee(self):
        n = 8
        rate = helpers.agreement_rate(
            lambda: EmulatedSnapshotConciliator(n),
            list(range(n)), trials=30, seed=2,
        )
        assert rate >= 0.5

    def test_unit_cost_gap_is_real(self):
        n = 8
        conciliator = EmulatedSnapshotConciliator(n)
        result = helpers.run_conciliator_once(conciliator, list(range(n)), seed=3)
        # Emulation costs at least an order of magnitude more steps than
        # the 2-steps-per-round unit-cost model.
        assert result.max_individual_steps > 5 * conciliator.unit_cost_steps()
        assert result.max_individual_steps <= conciliator.step_bound()

    def test_survivor_series_recorded(self):
        n = 6
        conciliator = EmulatedSnapshotConciliator(n)
        helpers.run_conciliator_once(conciliator, list(range(n)), seed=4)
        series = conciliator.survivor_series()
        assert len(series) == conciliator.rounds

    def test_unanimous_inputs(self):
        n = 4
        conciliator = EmulatedSnapshotConciliator(n)
        result = helpers.run_conciliator_once(conciliator, ["v"] * n, seed=5)
        assert result.decided_values == {"v"}

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            EmulatedSnapshotConciliator(4, rounds=0)

    def test_solo_process(self):
        conciliator = EmulatedSnapshotConciliator(1)
        result = helpers.run_conciliator_once(conciliator, ["solo"], seed=6)
        assert result.outputs[0] == "solo"
