"""Unit tests for the footnote-2 indirection variant of Algorithm 1."""

import pytest

import helpers
from repro.core.indirect_conciliator import IndirectSnapshotConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.runtime.scheduler import RoundRobinSchedule


class TestIndirectConciliator:
    def test_terminates_valid_exact_steps(self):
        n = 8
        conciliator = IndirectSnapshotConciliator(n)
        inputs = [f"value-{pid}" for pid in range(n)]
        result = helpers.run_conciliator_once(conciliator, inputs, seed=1)
        assert result.completed
        assert result.validity_holds(dict(enumerate(inputs)))
        assert all(
            steps == conciliator.step_bound()
            for steps in result.steps_by_pid.values()
        )

    def test_two_extra_steps_over_plain_variant(self):
        n = 16
        indirect = IndirectSnapshotConciliator(n)
        plain = SnapshotConciliator(n)
        assert indirect.step_bound() == plain.step_bound() + 2

    def test_components_carry_no_values(self):
        """The whole point of the footnote: snapshot components hold only
        (origin, priorities) tokens, never the input values."""
        n = 6
        conciliator = IndirectSnapshotConciliator(n)
        inputs = [f"big-config-{pid}" * 10 for pid in range(n)]
        helpers.run_conciliator_once(conciliator, inputs, seed=2)
        for array in conciliator._arrays:
            for component in array.components:
                if component is not None:
                    assert component.value is None

    def test_announce_registers_hold_the_values(self):
        n = 4
        conciliator = IndirectSnapshotConciliator(n)
        inputs = ["a", "b", "c", "d"]
        helpers.run_conciliator_once(conciliator, inputs, seed=3)
        announced = [register.value for register in conciliator.announce]
        assert announced == inputs

    def test_agreement_rate_matches_guarantee(self):
        n = 8
        rate = helpers.agreement_rate(
            lambda: IndirectSnapshotConciliator(n),
            list(range(n)), trials=40, seed=4,
        )
        assert rate >= 0.5

    def test_unanimous_inputs(self):
        n = 5
        conciliator = IndirectSnapshotConciliator(n)
        result = helpers.run_conciliator_once(conciliator, ["v"] * n, seed=5)
        assert result.decided_values == {"v"}

    def test_round_robin_schedule(self):
        n = 6
        conciliator = IndirectSnapshotConciliator(n)
        result = helpers.run_conciliator_once(
            conciliator, list(range(n)),
            schedule=RoundRobinSchedule(n), seed=6,
        )
        assert result.completed
        assert result.validity_holds({pid: pid for pid in range(n)})

    def test_solo_process(self):
        conciliator = IndirectSnapshotConciliator(1)
        result = helpers.run_conciliator_once(conciliator, ["solo"], seed=7)
        assert result.outputs[0] == "solo"

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            IndirectSnapshotConciliator(4, rounds=0)

    def test_survivor_series_recorded(self):
        n = 8
        conciliator = IndirectSnapshotConciliator(n)
        helpers.run_conciliator_once(conciliator, list(range(n)), seed=8)
        series = conciliator.survivor_series()
        assert len(series) == conciliator.rounds
        assert series[-1] >= 1
