"""Unit tests for Algorithm 2 (sifting conciliator)."""

import pytest

import helpers
from repro.core.probabilities import sift_p_schedule
from repro.core.rounds import sifting_rounds
from repro.core.sifting_conciliator import SiftingConciliator
from repro.errors import ConfigurationError
from repro.runtime.scheduler import ExplicitSchedule, RoundRobinSchedule


class TestConfiguration:
    def test_default_rounds_match_theorem(self):
        conciliator = SiftingConciliator(64, epsilon=0.5)
        assert conciliator.rounds == sifting_rounds(64, 0.5)

    def test_default_schedule_is_tuned(self):
        conciliator = SiftingConciliator(64)
        assert conciliator.p_schedule == sift_p_schedule(64, conciliator.rounds)

    def test_one_step_per_round(self):
        conciliator = SiftingConciliator(16)
        assert conciliator.step_bound() == conciliator.rounds

    def test_custom_schedule_length_checked(self):
        with pytest.raises(ConfigurationError):
            SiftingConciliator(8, rounds=4, p_schedule=[0.5, 0.5])

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            SiftingConciliator(8, rounds=0)


class TestExecution:
    def test_termination_validity_exact_steps(self):
        n = 12
        conciliator = SiftingConciliator(n)
        inputs = [f"v{pid}" for pid in range(n)]
        result = helpers.run_conciliator_once(conciliator, inputs, seed=1)
        assert result.completed
        assert result.validity_holds(dict(enumerate(inputs)))
        assert all(
            steps == conciliator.rounds for steps in result.steps_by_pid.values()
        )

    def test_single_process(self):
        conciliator = SiftingConciliator(1)
        result = helpers.run_conciliator_once(conciliator, ["solo"], seed=2)
        assert result.outputs[0] == "solo"

    def test_two_processes(self):
        conciliator = SiftingConciliator(2)
        result = helpers.run_conciliator_once(conciliator, ["a", "b"], seed=3)
        assert result.completed
        assert result.decided_values <= {"a", "b"}

    def test_unanimous_inputs(self):
        conciliator = SiftingConciliator(8)
        result = helpers.run_conciliator_once(conciliator, ["same"] * 8, seed=4)
        assert result.decided_values == {"same"}

    def test_all_writers_keep_their_values(self):
        # p = 1 in every round: everyone always writes, nobody ever reads,
        # so every process keeps its own input (worst case, no sifting).
        n = 4
        conciliator = SiftingConciliator(n, rounds=3, p_schedule=[1.0] * 3)
        result = helpers.run_conciliator_once(conciliator, list(range(n)), seed=5)
        assert result.outputs == {pid: pid for pid in range(n)}

    def test_all_readers_keep_their_values(self):
        # p = 0: everyone reads an empty register every round.
        n = 4
        conciliator = SiftingConciliator(n, rounds=3, p_schedule=[0.0] * 3)
        result = helpers.run_conciliator_once(conciliator, list(range(n)), seed=6)
        assert result.outputs == {pid: pid for pid in range(n)}

    def test_reader_adopts_earlier_writer(self):
        # Deterministic interleaving: pid 0 writes round-0 register, then
        # pid 1 (a reader in round 0) must adopt pid 0's persona and carry
        # it through the remaining rounds.
        n = 2
        rounds = 2
        conciliator = SiftingConciliator(
            n, rounds=rounds, p_schedule=[0.0] * rounds
        )

        # Override personae bits by forcing p=0 then manually making pid 0 a
        # writer via a custom schedule is impossible — instead use p=1 for
        # round 0 via a mixed schedule and check adoption in round 1.
        conciliator = SiftingConciliator(n, rounds=2, p_schedule=[1.0, 0.0])
        # Round 0: both write (p=1). Round 1: both read (p=0) an empty
        # register, keep personas. Schedule: 0 fully first.
        result = helpers.run_conciliator_once(
            conciliator,
            ["zero", "one"],
            schedule=ExplicitSchedule([0, 0, 1, 1], n=2),
            seed=7,
        )
        assert result.outputs == {0: "zero", 1: "one"}

    def test_survivor_series_recorded(self):
        n = 32
        conciliator = SiftingConciliator(n)
        helpers.run_conciliator_once(conciliator, list(range(n)), seed=8)
        series = conciliator.survivor_series()
        assert len(series) == conciliator.rounds
        assert all(1 <= count <= n for count in series)

    def test_round_robin_survivors_non_increasing(self):
        n = 32
        conciliator = SiftingConciliator(n)
        helpers.run_conciliator_once(
            conciliator, list(range(n)), schedule=RoundRobinSchedule(n), seed=9
        )
        series = conciliator.survivor_series()
        assert all(series[i] >= series[i + 1] for i in range(len(series) - 1))


class TestPersonaPropagation:
    def test_adopted_persona_bits_drive_behavior(self):
        """All copies of a persona act identically: after full adoption in
        round 0, the round-1 register receives at most one distinct persona.
        """
        n = 8
        # Round 0: p=0.5 mixes writers/readers; rounds 1-2: p=1 everyone
        # writes whatever persona they hold.
        conciliator = SiftingConciliator(n, rounds=3, p_schedule=[0.5, 1.0, 1.0])
        helpers.run_conciliator_once(
            conciliator, list(range(n)), schedule=RoundRobinSchedule(n), seed=10
        )
        # After round 0 under round-robin, every reader saw the last writer
        # of round 0's register... the invariant we check is weaker and
        # structural: survivor counts only shrink between rounds 1 and 2
        # (pure-write rounds cannot create new personae).
        series = conciliator.survivor_series()
        assert series[1] >= series[2]

    def test_register_contains_personae_not_raw_values(self):
        n = 2
        conciliator = SiftingConciliator(n, rounds=1, p_schedule=[1.0])
        helpers.run_conciliator_once(conciliator, ["x", "y"], seed=11)
        stored = conciliator.registers[0].value
        from repro.core.persona import Persona

        assert isinstance(stored, Persona)


class TestAnonymousVariant:
    """Section 3's remark: ids are for the analysis only."""

    def test_personae_carry_no_id(self):
        n = 4
        conciliator = SiftingConciliator(n, rounds=1, p_schedule=[1.0],
                                         anonymous=True)
        helpers.run_conciliator_once(conciliator, list(range(n)), seed=20)
        stored = conciliator.registers[0].value
        assert stored.origin == -1

    def test_safety_properties_unchanged(self):
        n = 8
        for seed in range(5):
            conciliator = SiftingConciliator(n, anonymous=True)
            result = helpers.run_conciliator_once(
                conciliator, list(range(n)), seed=seed
            )
            assert result.completed
            assert result.validity_holds({pid: pid for pid in range(n)})

    def test_agreement_rate_unaffected(self):
        n = 16
        rate = helpers.agreement_rate(
            lambda: SiftingConciliator(n, anonymous=True),
            list(range(n)), trials=40, seed=21,
        )
        assert rate >= 0.5
