"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    InvalidOperationError,
    ProtocolViolationError,
    ReproError,
    ScheduleExhaustedError,
    SimulationError,
    StepLimitExceededError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for error_type in (
            SimulationError,
            ScheduleExhaustedError,
            StepLimitExceededError,
            ProtocolViolationError,
            InvalidOperationError,
            ConfigurationError,
        ):
            assert issubclass(error_type, ReproError), error_type

    def test_simulation_errors_group(self):
        assert issubclass(ScheduleExhaustedError, SimulationError)
        assert issubclass(StepLimitExceededError, SimulationError)
        assert issubclass(InvalidOperationError, SimulationError)

    def test_protocol_violation_is_not_a_simulation_error(self):
        # A violated invariant is an algorithm bug, not a scheduling issue.
        assert not issubclass(ProtocolViolationError, SimulationError)

    def test_catchable_at_boundary(self):
        with pytest.raises(ReproError):
            raise ScheduleExhaustedError("starved")

    def test_library_raises_only_repro_errors_for_bad_config(self):
        from repro.core.rounds import snapshot_rounds

        with pytest.raises(ReproError):
            snapshot_rounds(0, 0.5)
