"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    InvalidOperationError,
    ProtocolViolationError,
    ReproError,
    ScheduleExhaustedError,
    SimulationError,
    StepLimitExceededError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for error_type in (
            SimulationError,
            ScheduleExhaustedError,
            StepLimitExceededError,
            ProtocolViolationError,
            InvalidOperationError,
            ConfigurationError,
        ):
            assert issubclass(error_type, ReproError), error_type

    def test_simulation_errors_group(self):
        assert issubclass(ScheduleExhaustedError, SimulationError)
        assert issubclass(StepLimitExceededError, SimulationError)
        assert issubclass(InvalidOperationError, SimulationError)

    def test_protocol_violation_is_not_a_simulation_error(self):
        # A violated invariant is an algorithm bug, not a scheduling issue.
        assert not issubclass(ProtocolViolationError, SimulationError)

    def test_catchable_at_boundary(self):
        with pytest.raises(ReproError):
            raise ScheduleExhaustedError("starved")

    def test_library_raises_only_repro_errors_for_bad_config(self):
        from repro.core.rounds import snapshot_rounds

        with pytest.raises(ReproError):
            snapshot_rounds(0, 0.5)

    def test_checkpoint_error_is_a_repro_error(self):
        assert issubclass(CheckpointError, ReproError)
        assert not issubclass(CheckpointError, SimulationError)


class TestRunDiagnostics:
    """Schedule/step-limit errors carry who was unfinished and how far
    everyone got, so a failed sweep is debuggable from its message alone."""

    def test_schedule_exhausted_reports_unfinished_pids_and_steps(self):
        error = ScheduleExhaustedError(
            "schedule ended",
            unfinished_pids={2, 0},
            steps_by_pid={0: 5, 1: 9, 2: 0},
        )
        assert error.unfinished_pids == (0, 2)
        assert error.steps_by_pid == {0: 5, 1: 9, 2: 0}
        message = str(error)
        assert "unfinished pids: [0, 2]" in message
        assert "steps executed: {0: 5, 1: 9, 2: 0}" in message

    def test_step_limit_error_reports_the_same_diagnostics(self):
        error = StepLimitExceededError(
            "limit hit", unfinished_pids={1}, steps_by_pid={0: 3, 1: 100}
        )
        assert error.unfinished_pids == (1,)
        assert "unfinished pids: [1]" in str(error)

    def test_diagnostics_are_optional(self):
        error = ScheduleExhaustedError("plain message")
        assert error.unfinished_pids == ()
        assert error.steps_by_pid == {}
        assert str(error) == "plain message"

    def test_simulator_populates_diagnostics(self):
        from repro.memory.register import AtomicRegister
        from repro.runtime.operations import Read
        from repro.runtime.rng import SeedTree
        from repro.runtime.scheduler import ExplicitSchedule
        from repro.runtime.simulator import run_programs

        register = AtomicRegister("r")

        def two_reads(ctx):
            yield Read(register)
            yield Read(register)

        with pytest.raises(ScheduleExhaustedError) as excinfo:
            run_programs(
                [two_reads] * 2, ExplicitSchedule([0, 0], n=2), SeedTree(0)
            )
        assert excinfo.value.unfinished_pids == (1,)
        assert excinfo.value.steps_by_pid == {0: 2, 1: 0}
