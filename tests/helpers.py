"""Shared test utilities: running protocols and adopt-commit objects."""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.adoptcommit.base import AdoptCommitObject, AdoptCommitResult
from repro.core.conciliator import Conciliator
from repro.runtime.results import RunResult
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RandomSchedule, Schedule
from repro.runtime.simulator import run_programs


def run_adopt_commit(
    ac: AdoptCommitObject,
    values: Sequence[Any],
    schedule: Optional[Schedule] = None,
    seed: int = 0,
) -> List[AdoptCommitResult]:
    """Run one process per value through ``ac`` and return results by pid."""
    n = len(values)
    seeds = SeedTree(seed)
    if schedule is None:
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
    programs = [lambda ctx: ac.invoke(ctx, ctx.input_value)] * n
    result = run_programs(programs, schedule, seeds, inputs=list(values))
    assert result.completed
    return [result.outputs[pid] for pid in range(n)]


def run_conciliator_once(
    conciliator: Conciliator,
    inputs: Sequence[Any],
    schedule: Optional[Schedule] = None,
    seed: int = 0,
    record_trace: bool = False,
) -> RunResult:
    """One conciliator execution with a random oblivious schedule."""
    n = len(inputs)
    seeds = SeedTree(seed)
    if schedule is None:
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
    programs = [conciliator.program] * n
    return run_programs(
        programs, schedule, seeds, inputs=list(inputs), record_trace=record_trace
    )


def agreement_rate(
    factory: Callable[[], Conciliator],
    inputs: Sequence[Any],
    trials: int,
    seed: int = 0,
) -> float:
    """Fraction of trials in which all outputs were equal."""
    agreed = 0
    for trial in range(trials):
        result = run_conciliator_once(factory(), inputs, seed=seed * 10_000 + trial)
        agreed += result.agreement
    return agreed / trials
