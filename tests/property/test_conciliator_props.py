"""Property tests: conciliator guarantees under fuzzed configurations.

Termination and validity must hold in *every* execution — not just with
high probability — for all three conciliators, any input assignment, any
adversary family, and any seed.  Step counts must equal the closed forms.
"""

from hypothesis import given, settings, strategies as st

import helpers
from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.rng import SeedTree
from repro.runtime.simulator import run_programs
from repro.workloads.schedules import SCHEDULE_FAMILIES, make_schedule

FAMILIES = [family for family in SCHEDULE_FAMILIES if family != "crash-half"]


@st.composite
def conciliator_cases(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    inputs = draw(
        st.lists(
            st.integers(min_value=0, max_value=5), min_size=n, max_size=n
        )
    )
    family = draw(st.sampled_from(FAMILIES))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return n, inputs, family, seed


def run_under(conciliator, inputs, family, seed):
    n = len(inputs)
    seeds = SeedTree(seed)
    schedule = make_schedule(family, n, seeds.child("schedule"))
    programs = [conciliator.program] * n
    return run_programs(programs, schedule, seeds, inputs=list(inputs))


class TestSnapshotConciliator:
    @given(conciliator_cases())
    @settings(max_examples=60, deadline=None)
    def test_terminates_valid_exact_steps(self, case):
        n, inputs, family, seed = case
        conciliator = SnapshotConciliator(n)
        result = run_under(conciliator, inputs, family, seed)
        assert result.completed
        assert result.validity_holds(dict(enumerate(inputs)))
        assert all(
            steps == conciliator.step_bound()
            for steps in result.steps_by_pid.values()
        )

    @given(conciliator_cases())
    @settings(max_examples=40, deadline=None)
    def test_max_register_variant_same_guarantees(self, case):
        n, inputs, family, seed = case
        conciliator = SnapshotConciliator(n, use_max_registers=True)
        result = run_under(conciliator, inputs, family, seed)
        assert result.completed
        assert result.validity_holds(dict(enumerate(inputs)))


class TestSiftingConciliator:
    @given(conciliator_cases())
    @settings(max_examples=60, deadline=None)
    def test_terminates_valid_exact_steps(self, case):
        n, inputs, family, seed = case
        conciliator = SiftingConciliator(n)
        result = run_under(conciliator, inputs, family, seed)
        assert result.completed
        assert result.validity_holds(dict(enumerate(inputs)))
        assert all(
            steps == conciliator.rounds
            for steps in result.steps_by_pid.values()
        )

    @given(conciliator_cases(),
           st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_any_p_schedule_is_safe(self, case, p_schedule):
        # Lemma 2 holds "for any choice of p_i"; so do safety properties.
        n, inputs, family, seed = case
        conciliator = SiftingConciliator(
            n, rounds=len(p_schedule), p_schedule=p_schedule
        )
        result = run_under(conciliator, inputs, family, seed)
        assert result.completed
        assert result.validity_holds(dict(enumerate(inputs)))


class TestEmbeddedConciliator:
    @given(conciliator_cases())
    @settings(max_examples=40, deadline=None)
    def test_terminates_valid_bounded_steps(self, case):
        n, inputs, family, seed = case
        conciliator = CILEmbeddedConciliator(n)
        result = run_under(conciliator, inputs, family, seed)
        assert result.completed
        assert result.validity_holds(dict(enumerate(inputs)))
        bound = 2 * (conciliator.inner.step_bound() + 1) + 7
        assert result.max_individual_steps <= bound
        assert conciliator.fallback_count == 0


class TestBaseline:
    @given(conciliator_cases())
    @settings(max_examples=40, deadline=None)
    def test_doubling_cil_terminates_within_log_bound(self, case):
        n, inputs, family, seed = case
        conciliator = DoublingCILConciliator(n)
        result = run_under(conciliator, inputs, family, seed)
        assert result.completed
        assert result.validity_holds(dict(enumerate(inputs)))
        assert result.max_individual_steps <= conciliator.step_bound()


class TestPersonaInvariant:
    @given(conciliator_cases())
    @settings(max_examples=40, deadline=None)
    def test_survivor_counts_non_increasing_under_round_robin(self, case):
        n, inputs, _family, seed = case
        conciliator = SiftingConciliator(n)
        result = run_under(conciliator, inputs, "round-robin", seed)
        assert result.completed
        series = conciliator.survivor_series()
        assert all(series[i] >= series[i + 1] for i in range(len(series) - 1))
