"""Property tests on the analytic formulas (the paper's math itself)."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.analysis.theory import harmonic
from repro.core.probabilities import (
    iterate_snapshot_f,
    sift_p,
    sift_x,
    snapshot_f,
)
from repro.core.rounds import (
    ceil_log2,
    log_star,
    sifting_rounds,
    sifting_switch_round,
    snapshot_priority_range,
    snapshot_rounds,
)

ns = st.integers(min_value=1, max_value=10**9)
small_ns = st.integers(min_value=2, max_value=100_000)
epsilons = st.floats(min_value=1e-6, max_value=0.999)
xs = st.floats(min_value=0.0, max_value=1e9)


class TestLogStarProperties:
    @given(st.integers(min_value=2, max_value=10**18))
    @settings(max_examples=100, deadline=None)
    def test_recurrence(self, n):
        assert log_star(n) == 1 + log_star(math.log2(n))

    @given(st.integers(min_value=1, max_value=10**18))
    @settings(max_examples=100, deadline=None)
    def test_tiny_for_practical_n(self, n):
        assert 0 <= log_star(n) <= 5


class TestSnapshotFProperties:
    @given(xs)
    @settings(max_examples=100, deadline=None)
    def test_contraction(self, x):
        assert snapshot_f(x) <= x / 2 + 1e-9

    @given(xs, xs)
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, a, b):
        low, high = min(a, b), max(a, b)
        assert snapshot_f(low) <= snapshot_f(high) + 1e-9

    @given(st.floats(min_value=2.0, max_value=1e9))
    @settings(max_examples=100, deadline=None)
    def test_below_log2(self, x):
        # The inequality Theorem 1 chains through log* n.
        assert snapshot_f(x) <= math.log2(x) + 1e-9

    @given(st.floats(min_value=0.0, max_value=1e6),
           st.integers(min_value=0, max_value=60))
    @settings(max_examples=100, deadline=None)
    def test_iteration_monotone_in_count(self, x, k):
        assert iterate_snapshot_f(x, k + 1) <= iterate_snapshot_f(x, k) + 1e-9


class TestSiftScheduleProperties:
    @given(small_ns, st.integers(min_value=0, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_x_recurrence(self, n, i):
        expected = 2 * math.sqrt(sift_x(i, n))
        assert sift_x(i + 1, n) == pytest_approx(expected)

    @given(small_ns, st.integers(min_value=1, max_value=30))
    @settings(max_examples=100, deadline=None)
    def test_p_is_probability(self, n, i):
        assert 0.0 < sift_p(i, n) <= 1.0

    @given(small_ns)
    @settings(max_examples=100, deadline=None)
    def test_switch_lands_under_eight(self, n):
        assert sift_x(sifting_switch_round(n), n) < 8.0 + 1e-9

    @given(small_ns, epsilons)
    @settings(max_examples=100, deadline=None)
    def test_round_counts_positive_and_monotone_in_eps(self, n, epsilon):
        rounds = sifting_rounds(n, epsilon)
        assert rounds >= 1
        assert sifting_rounds(n, epsilon / 2) >= rounds


class TestRoundFormulas:
    @given(small_ns, epsilons)
    @settings(max_examples=100, deadline=None)
    def test_snapshot_rounds_formula(self, n, epsilon):
        rounds = snapshot_rounds(n, epsilon)
        assert rounds == log_star(n) + math.ceil(math.log2(1 / epsilon)) + 1

    @given(small_ns, epsilons)
    @settings(max_examples=60, deadline=None)
    def test_priority_range_large_enough(self, n, epsilon):
        # Union bound from Section 2: with range ceil(R n^2 / eps), the
        # expected number of duplicate pairs is at most eps/2.
        rounds = snapshot_rounds(n, epsilon)
        rng = snapshot_priority_range(n, epsilon, rounds)
        pairs = n * (n - 1) / 2
        expected_duplicates = rounds * pairs / rng
        assert expected_duplicates <= epsilon / 2 + 1e-9

    @given(st.integers(min_value=1, max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_ceil_log2_is_ceiling(self, x):
        assert 2 ** ceil_log2(x) >= x
        if ceil_log2(x) > 0:
            assert 2 ** (ceil_log2(x) - 1) < x


class TestHarmonicProperties:
    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_log_bounds(self, m):
        assert math.log(m) < harmonic(m) <= math.log(m) + 1


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9)
