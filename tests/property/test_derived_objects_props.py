"""Property tests for the derived objects (emulated snapshot, bounded max,
test-and-set) under fuzzed schedules and configurations."""

from hypothesis import given, settings, strategies as st

from repro.memory.bounded_max_register import BoundedMaxRegister
from repro.memory.emulated_snapshot import EmulatedSnapshot
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RandomSchedule
from repro.runtime.simulator import run_programs
from repro.tas.sifting_tas import WINNER, SiftingTestAndSet


@st.composite
def small_runs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return n, seed


class TestEmulatedSnapshotProperties:
    @given(small_runs())
    @settings(max_examples=40, deadline=None)
    def test_own_update_visible_and_values_genuine(self, case):
        n, seed = case
        snapshot = EmulatedSnapshot(n)

        def program(ctx):
            yield from snapshot.update_program(ctx, ("val", ctx.pid))
            view = yield from snapshot.scan_program(ctx)
            return view

        result = run_programs(
            [program] * n, RandomSchedule(n, seed), SeedTree(seed)
        )
        assert result.completed
        for pid in range(n):
            view = result.outputs[pid]
            assert view[pid] == ("val", pid)
            for component, entry in enumerate(view):
                assert entry is None or entry == ("val", component)

    @given(small_runs())
    @settings(max_examples=40, deadline=None)
    def test_views_form_a_chain(self, case):
        n, seed = case
        snapshot = EmulatedSnapshot(n)

        def program(ctx):
            yield from snapshot.update_program(ctx, ctx.pid)
            view = yield from snapshot.scan_program(ctx)
            return view

        result = run_programs(
            [program] * n, RandomSchedule(n, seed), SeedTree(seed)
        )
        supports = sorted(
            (frozenset(i for i in range(n) if result.outputs[p][i] is not None)
             for p in range(n)),
            key=len,
        )
        for smaller, larger in zip(supports, supports[1:]):
            assert smaller <= larger

    @given(small_runs())
    @settings(max_examples=30, deadline=None)
    def test_step_bounds(self, case):
        n, seed = case
        snapshot = EmulatedSnapshot(n)

        def program(ctx):
            yield from snapshot.update_program(ctx, ctx.pid)
            view = yield from snapshot.scan_program(ctx)
            return view

        result = run_programs(
            [program] * n, RandomSchedule(n, seed), SeedTree(seed)
        )
        bound = snapshot.update_step_bound() + snapshot.scan_step_bound()
        assert result.max_individual_steps <= bound


class TestBoundedMaxProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_reads_bracketed_by_own_write_and_global_max(
        self, n, seed, capacity
    ):
        register = BoundedMaxRegister(capacity)
        import random as random_module

        assignment = [
            random_module.Random(seed + pid).randrange(capacity)
            for pid in range(n)
        ]

        def program(ctx):
            yield from register.write_program(ctx, assignment[ctx.pid])
            value = yield from register.read_program(ctx)
            return value

        result = run_programs(
            [program] * n, RandomSchedule(n, seed), SeedTree(seed)
        )
        for pid in range(n):
            assert assignment[pid] <= result.outputs[pid] <= max(assignment)

    @given(
        st.lists(st.integers(min_value=0, max_value=127), min_size=1,
                 max_size=25),
    )
    @settings(max_examples=50, deadline=None)
    def test_sequential_is_running_max(self, writes):
        register = BoundedMaxRegister(128)

        def program(ctx):
            observed = []
            for value in writes:
                yield from register.write_program(ctx, value)
                current = yield from register.read_program(ctx)
                observed.append(current)
            return observed

        from repro.runtime.scheduler import RoundRobinSchedule

        result = run_programs([program], RoundRobinSchedule(1), SeedTree(0))
        running = []
        best = 0
        for value in writes:
            best = max(best, value)
            running.append(best)
        assert result.outputs[0] == running


class TestTestAndSetProperties:
    @given(small_runs())
    @settings(max_examples=50, deadline=None)
    def test_exactly_one_winner_always(self, case):
        n, seed = case
        tas = SiftingTestAndSet(n)
        result = run_programs(
            [tas.program] * n, RandomSchedule(n, seed), SeedTree(seed)
        )
        winners = [pid for pid, out in result.outputs.items()
                   if out == WINNER]
        assert len(winners) == 1

    @given(
        small_runs(),
        st.lists(st.sampled_from([0.0, 0.5, 1.0]), min_size=1, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_p_schedule_keeps_unique_winner(self, case, p_schedule):
        n, seed = case
        tas = SiftingTestAndSet(
            n, rounds=len(p_schedule), p_schedule=p_schedule
        )
        result = run_programs(
            [tas.program] * n, RandomSchedule(n, seed), SeedTree(seed)
        )
        winners = [pid for pid, out in result.outputs.items()
                   if out == WINNER]
        assert len(winners) == 1
