"""Hypothesis fuzzing of the emulated snapshot with arbitrary scripts.

Random per-process sequences of updates and scans under random schedules:
every resulting history must pass the exact Wing-Gong linearizability
search against the snapshot specification.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.linearizability import (
    HistoryOp,
    SnapshotSpec,
    count_and_run,
    is_linearizable,
)
from repro.memory.emulated_snapshot import EmulatedSnapshot
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RandomSchedule
from repro.runtime.simulator import run_programs


@st.composite
def snapshot_workloads(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    scripts = []
    for _ in range(n):
        script = draw(
            st.lists(
                st.sampled_from(["update", "scan"]),
                min_size=1,
                max_size=3,
            )
        )
        scripts.append(script)
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return scripts, seed


def run_history(scripts, seed):
    n = len(scripts)
    snapshot = EmulatedSnapshot(n)

    def program(ctx):
        records = []
        for index, action in enumerate(scripts[ctx.pid]):
            if action == "update":
                value = (ctx.pid, index)
                _, steps = yield from count_and_run(
                    snapshot.update_program(ctx, value)
                )
                records.append(("update", value, None, steps))
            else:
                view, steps = yield from count_and_run(
                    snapshot.scan_program(ctx)
                )
                records.append(("scan", None, view, steps))
        return records

    seeds = SeedTree(seed)
    result = run_programs(
        [program] * n,
        RandomSchedule(n, seeds.child("schedule").seed),
        seeds,
        record_trace=True,
    )
    history = []
    for pid, records in result.outputs.items():
        events = result.trace.for_pid(pid)
        offset = 0
        for kind, value, outcome, steps in records:
            history.append(HistoryOp(
                pid=pid, kind=kind, value=value, result=outcome,
                start=events[offset].step,
                end=events[offset + steps - 1].step,
            ))
            offset += steps
    return n, history


class TestEmulatedSnapshotFuzz:
    @given(snapshot_workloads())
    @settings(max_examples=50, deadline=None)
    def test_every_history_linearizes(self, case):
        scripts, seed = case
        n, history = run_history(scripts, seed)
        assert is_linearizable(history, SnapshotSpec(n)), (scripts, seed)

    @given(snapshot_workloads())
    @settings(max_examples=30, deadline=None)
    def test_scans_contain_only_written_values(self, case):
        scripts, seed = case
        n, history = run_history(scripts, seed)
        legal = {None}
        for pid, script in enumerate(scripts):
            for index, action in enumerate(script):
                if action == "update":
                    legal.add((pid, index))
        for op in history:
            if op.kind == "scan":
                for component in op.result:
                    assert component in legal
