"""Differential property tests: vectorized backend vs the generator oracle.

The generator :mod:`repro.runtime.simulator` stays the semantic oracle for
the NumPy mass-trial backend, through two complementary contracts:

- **Oracle mode** (``backend="vectorized-oracle"``) replays the generator's
  exact per-trial seed streams through the batched kernels, so per-trial
  decision vectors, survivor series, step counts, and the aggregated stats
  object must be **bit-identical** to the generator sweep.  This is checked
  on fuzzed ``(algorithm, family, n, trials, master_seed)`` configurations,
  including the non-lockstep ``random``/``blocks`` families that only the
  oracle mode supports.
- **Fast mode** (``backend="vectorized"``) draws from per-block streams, so
  per-trial outcomes differ from the generator's; the two backends sample
  the *same distribution*, which is checked statistically (see
  :class:`TestStatisticalEquivalence` for the exact test and its power).

Fast-mode determinism contracts are also pinned: results are a pure
function of ``(master_seed, absolute trial index)`` — invariant to the
total trial count (prefix property, including across the 4096-trial block
boundary) and to worker/chunk sharding.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

pytest.importorskip("numpy")

from repro.analysis.experiments import (
    decay_series,
    run_conciliator_trials,
    trial_seed_tree,
)
from repro.analysis.stats import fisher_exact_two_sided
from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.core.conciliator import run_conciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.parallel import supports_fork
from repro.runtime.vectorized import (
    run_vectorized_sweep,
    supported_families,
)
from repro.workloads.schedules import make_schedule

needs_fork = pytest.mark.skipif(
    not supports_fork(), reason="sharded execution requires the fork start method"
)

FACTORIES = {
    "sifting": lambda n: SiftingConciliator(n),
    "snapshot": lambda n: SnapshotConciliator(n),
    "snapshot-maxreg": lambda n: SnapshotConciliator(n, use_max_registers=True),
    "cil": lambda n: DoublingCILConciliator(n),
}

#: Conciliator kind -> kernel algorithm (for supported_families lookups).
ALGORITHMS = {
    "sifting": "sifting",
    "snapshot": "snapshot",
    "snapshot-maxreg": "snapshot",
    "cil": "cil",
}

EQUIVALENCE_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def generator_trial(factory, inputs, family, master_seed, trial):
    """One generator-backend trial, exactly as the sweep runners drive it."""
    n = len(inputs)
    conciliator = factory()
    seeds = trial_seed_tree(master_seed, trial)
    schedule = make_schedule(family, n, seeds.child("schedule"))
    result = run_conciliator(conciliator, inputs, schedule, seeds)
    decisions = tuple(result.outputs[pid] for pid in range(n))
    return decisions, tuple(conciliator.survivor_series()), result


@st.composite
def oracle_cases(draw):
    kind = draw(st.sampled_from(sorted(FACTORIES)))
    family = draw(
        st.sampled_from(supported_families(ALGORITHMS[kind], oracle=True))
    )
    n = draw(st.integers(min_value=2, max_value=6))
    trials = draw(st.integers(min_value=1, max_value=6))
    master_seed = draw(st.integers(min_value=0, max_value=2**32))
    return kind, family, n, trials, master_seed


class TestOracleBitIdentity:
    """Oracle mode must reproduce the generator trial-for-trial."""

    @EQUIVALENCE_SETTINGS
    @given(case=oracle_cases())
    def test_decisions_survivors_steps_bit_identical(self, case):
        kind, family, n, trials, master_seed = case
        inputs = [f"v{i % 3}" for i in range(n)]
        factory = lambda: FACTORIES[kind](n)
        sweep = run_vectorized_sweep(
            factory, inputs, schedule_family=family, trials=trials,
            master_seed=master_seed, oracle=True,
            collect_decisions=True, collect_survivors=True,
        )
        for trial in range(trials):
            decisions, survivors, result = generator_trial(
                factory, inputs, family, master_seed, trial
            )
            assert sweep.decisions[trial] == decisions
            if ALGORITHMS[kind] != "cil":
                assert sweep.survivor_series[trial] == survivors
            assert sweep.individual_steps[trial] == float(
                result.max_individual_steps
            )
            assert sweep.total_steps[trial] == float(result.total_steps)

    @EQUIVALENCE_SETTINGS
    @given(case=oracle_cases())
    def test_runner_stats_bit_identical(self, case):
        """`backend="vectorized-oracle"` through the public sweep runner
        produces the *same frozen stats object* as the generator backend —
        plain `==`, every float bit-for-bit, like the parallel contract."""
        kind, family, n, trials, master_seed = case
        inputs = list(range(n))
        factory = lambda: FACTORIES[kind](n)
        kwargs = dict(
            schedule_family=family, trials=trials, master_seed=master_seed,
            workers=1,
        )
        generator = run_conciliator_trials(factory, inputs, **kwargs)
        oracle = run_conciliator_trials(
            factory, inputs, backend="vectorized-oracle", **kwargs
        )
        assert oracle == generator

    def test_decay_series_bit_identical(self):
        for kind, family in (("sifting", "permuted"),
                             ("snapshot", "interleaved")):
            factory = lambda: FACTORIES[kind](6)
            kwargs = dict(
                schedule_family=family, trials=9, master_seed=13, workers=1,
            )
            generator = decay_series(factory, list(range(6)), **kwargs)
            oracle = decay_series(
                factory, list(range(6)), backend="vectorized-oracle", **kwargs
            )
            assert oracle == generator


class TestFastModeDeterminism:
    """Fast mode: pure function of (master_seed, absolute trial index)."""

    @EQUIVALENCE_SETTINGS
    @given(
        kind=st.sampled_from(["sifting", "snapshot", "cil"]),
        n=st.integers(min_value=2, max_value=6),
        small=st.integers(min_value=1, max_value=20),
        extra=st.integers(min_value=1, max_value=30),
        master_seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_trial_count_prefix(self, kind, n, small, extra, master_seed):
        family = "permuted"
        factory = lambda: FACTORIES[kind](n)
        kwargs = dict(
            schedule_family=family, master_seed=master_seed,
            collect_decisions=True,
        )
        head = run_vectorized_sweep(
            factory, list(range(n)), trials=small, **kwargs
        )
        full = run_vectorized_sweep(
            factory, list(range(n)), trials=small + extra, **kwargs
        )
        assert full.decisions[:small] == head.decisions
        assert full.agreement[:small] == head.agreement
        assert full.individual_steps[:small] == head.individual_steps

    def test_prefix_across_block_boundary(self):
        """Trials 0..4089 must not change when the sweep grows past the
        4096-trial block boundary (the partial final block is a prefix of
        the full block's C-order draws)."""
        from repro.runtime.vectorized import VECTORIZED_BLOCK_TRIALS

        boundary = VECTORIZED_BLOCK_TRIALS
        factory = lambda: SiftingConciliator(4)
        kwargs = dict(
            schedule_family="permuted", master_seed=7, collect_decisions=True,
        )
        head = run_vectorized_sweep(
            factory, list(range(4)), trials=boundary - 6, **kwargs
        )
        full = run_vectorized_sweep(
            factory, list(range(4)), trials=boundary + 4, **kwargs
        )
        assert full.decisions[:boundary - 6] == head.decisions
        assert full.agreement[:boundary - 6] == head.agreement

    @needs_fork
    def test_worker_invariance(self):
        factory = lambda: SnapshotConciliator(5)
        kwargs = dict(
            schedule_family="interleaved", trials=9000, master_seed=3,
        )
        serial = run_vectorized_sweep(
            factory, list(range(5)), workers=1, **kwargs
        )
        sharded = run_vectorized_sweep(
            factory, list(range(5)), workers=2, chunk_size=1, **kwargs
        )
        assert sharded == serial

    @needs_fork
    def test_oracle_worker_invariance_through_runner(self):
        """The ISSUE's pinned grid: the differential suite must hold under
        workers=1 and workers=2 alike."""
        factory = lambda: SiftingConciliator(5)
        kwargs = dict(
            schedule_family="permuted", trials=20, master_seed=11,
        )
        generator = run_conciliator_trials(
            factory, list(range(5)), workers=1, **kwargs
        )
        for workers in (1, 2):
            oracle = run_conciliator_trials(
                factory, list(range(5)), workers=workers,
                backend="vectorized-oracle", **kwargs
            )
            assert oracle == generator


class TestStatisticalEquivalence:
    """Fast mode vs generator: same agreement distribution.

    Fast mode deliberately does not replay generator streams, so per-trial
    outcomes differ; the contract is that both backends sample the same
    Bernoulli agreement probability for a fixed (algorithm, family, n).
    Each test runs both backends on fresh seeds and applies the two-sided
    Fisher exact test to the 2x2 table (agreements, disagreements) x
    (generator, vectorized).

    **Significance**: alpha = 1e-3.  All seeds are fixed, so each test is
    fully deterministic — a pass is a pass forever; the alpha describes the
    a-priori false-alarm rate of the *design* (the chance a true-null seed
    pair would have been rejected), not a rerun flake rate.

    **Power**: with 300 generator trials against 3000 vectorized trials,
    the test has ~80% power at alpha=1e-3 to detect an absolute
    agreement-rate shift of ~0.08 near p=0.9 (sifting/snapshot) and ~0.12
    near p=0.33 (the CIL baseline) — comfortably below the gap any real
    kernel/coin bug produces (miscounted writers, shifted probability
    schedules, or biased permutations move agreement by far more).
    """

    GENERATOR_TRIALS = 300
    VECTORIZED_TRIALS = 3000
    ALPHA = 1e-3

    @pytest.mark.parametrize("kind,family", [
        ("sifting", "permuted"),
        ("snapshot", "interleaved"),
        ("cil", "permuted"),
    ])
    def test_agreement_rates_indistinguishable(self, kind, family):
        n = 6
        factory = lambda: FACTORIES[kind](n)
        generator = run_conciliator_trials(
            factory, list(range(n)), schedule_family=family,
            trials=self.GENERATOR_TRIALS, master_seed=20120716, workers=1,
        )
        vectorized = run_conciliator_trials(
            factory, list(range(n)), schedule_family=family,
            trials=self.VECTORIZED_TRIALS, master_seed=20120716,
            backend="vectorized",
        )
        p_value = fisher_exact_two_sided(
            generator.agreement_count,
            generator.trials - generator.agreement_count,
            vectorized.agreement_count,
            vectorized.trials - vectorized.agreement_count,
        )
        assert p_value > self.ALPHA, (
            f"{kind}/{family}: generator agreement "
            f"{generator.agreement_rate:.3f} vs vectorized "
            f"{vectorized.agreement_rate:.3f} (p={p_value:.2e})"
        )
