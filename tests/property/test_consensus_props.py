"""Property tests: consensus safety under fuzzed stacks and workloads.

Agreement and validity of full consensus must hold in every execution —
for every protocol stack, input assignment, adversary family and seed that
hypothesis throws at it.
"""

from hypothesis import given, settings, strategies as st

from repro.core.consensus import (
    register_consensus,
    snapshot_consensus,
)
from repro.runtime.rng import SeedTree
from repro.runtime.simulator import run_programs
from repro.workloads.schedules import SCHEDULE_FAMILIES, make_schedule

FAMILIES = [family for family in SCHEDULE_FAMILIES if family != "crash-half"]
M = 4


@st.composite
def consensus_cases(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    inputs = draw(
        st.lists(
            st.integers(min_value=0, max_value=M - 1), min_size=n, max_size=n
        )
    )
    family = draw(st.sampled_from(FAMILIES))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    stack = draw(st.sampled_from(["register", "register-linear", "snapshot",
                                  "snapshot-maxreg"]))
    return n, inputs, family, seed, stack


def build(stack, n):
    if stack == "register":
        return register_consensus(n, value_domain=range(M))
    if stack == "register-linear":
        return register_consensus(n, value_domain=range(M),
                                  linear_total_work=True)
    if stack == "snapshot-maxreg":
        return snapshot_consensus(n, use_max_registers=True)
    return snapshot_consensus(n)


class TestConsensusSafetyFuzz:
    @given(consensus_cases())
    @settings(max_examples=60, deadline=None)
    def test_agreement_validity_always(self, case):
        n, inputs, family, seed, stack = case
        protocol = build(stack, n)
        seeds = SeedTree(seed)
        schedule = make_schedule(family, n, seeds.child("schedule"))
        result = run_programs(
            [protocol.program] * n, schedule, seeds, inputs=list(inputs)
        )
        assert result.completed
        assert result.agreement, (stack, family, inputs, seed)
        assert result.validity_holds(dict(enumerate(inputs)))

    @given(consensus_cases())
    @settings(max_examples=30, deadline=None)
    def test_unanimity_decides_that_value(self, case):
        n, inputs, family, seed, stack = case
        unanimous = [inputs[0]] * n
        protocol = build(stack, n)
        seeds = SeedTree(seed)
        schedule = make_schedule(family, n, seeds.child("schedule"))
        result = run_programs(
            [protocol.program] * n, schedule, seeds, inputs=unanimous
        )
        assert result.decided_values == {inputs[0]}

    @given(consensus_cases())
    @settings(max_examples=30, deadline=None)
    def test_phase_counts_bounded(self, case):
        # Runaway phase counts indicate a broken conciliator/AC interaction
        # long before the step limit trips.
        n, inputs, family, seed, stack = case
        protocol = build(stack, n)
        seeds = SeedTree(seed)
        schedule = make_schedule(family, n, seeds.child("schedule"))
        run_programs(
            [protocol.program] * n, schedule, seeds, inputs=list(inputs)
        )
        assert max(protocol.phases_used.values()) <= 30
