"""Property tests: shared objects obey their sequential specifications
under arbitrary operation sequences."""

from hypothesis import given, settings, strategies as st

from repro.memory.max_register import MaxRegister
from repro.memory.register import AtomicRegister
from repro.memory.snapshot import SnapshotObject
from repro.runtime.operations import MaxRead, MaxWrite, Read, Scan, Update, Write

values = st.integers(min_value=-1000, max_value=1000)


@st.composite
def register_histories(draw):
    """A sequence of ('write', v) / ('read',) operations."""
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("write"), values),
                st.tuples(st.just("read")),
            ),
            max_size=60,
        )
    )
    return ops


class TestRegisterProperties:
    @given(register_histories())
    @settings(max_examples=60, deadline=None)
    def test_reads_return_last_write(self, history):
        register = AtomicRegister("r")
        last = None
        for op in history:
            if op[0] == "write":
                register.apply(Write(register, op[1]), pid=0)
                last = op[1]
            else:
                assert register.apply(Read(register), pid=0) == last

    @given(st.lists(values, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_final_value_is_last_written(self, writes):
        register = AtomicRegister("r")
        for value in writes:
            register.apply(Write(register, value), pid=0)
        assert register.value == writes[-1]


@st.composite
def snapshot_histories(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("update"),
                    st.integers(min_value=0, max_value=n - 1),
                    values,
                ),
                st.tuples(st.just("scan")),
            ),
            max_size=60,
        )
    )
    return n, ops


class TestSnapshotProperties:
    @given(snapshot_histories())
    @settings(max_examples=60, deadline=None)
    def test_scans_return_latest_components(self, case):
        n, history = case
        snapshot = SnapshotObject(n, "A")
        model = [None] * n
        for op in history:
            if op[0] == "update":
                _, pid, value = op
                snapshot.apply(Update(snapshot, value), pid=pid)
                model[pid] = value
            else:
                assert snapshot.apply(Scan(snapshot), pid=0) == tuple(model)

    @given(snapshot_histories())
    @settings(max_examples=60, deadline=None)
    def test_views_always_nest(self, case):
        n, history = case
        snapshot = SnapshotObject(n, "A")
        for op in history:
            if op[0] == "update":
                snapshot.apply(Update(snapshot, op[2]), pid=op[1])
            else:
                snapshot.apply(Scan(snapshot), pid=0)
        assert snapshot.views_nest()


class TestMaxRegisterProperties:
    @given(st.lists(values, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_read_is_running_maximum(self, writes):
        register = MaxRegister("m")
        for prefix_end in range(1, len(writes) + 1):
            register.apply(MaxWrite(register, writes[prefix_end - 1]), pid=0)
            observed = register.apply(MaxRead(register), pid=0)
            assert observed == max(writes[:prefix_end])

    @given(st.lists(values, min_size=1, max_size=40), st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_write_order_does_not_matter(self, writes, rng):
        one = MaxRegister("m1")
        for value in writes:
            one.apply(MaxWrite(one, value), pid=0)
        shuffled = list(writes)
        rng.shuffle(shuffled)
        two = MaxRegister("m2")
        for value in shuffled:
            two.apply(MaxWrite(two, value), pid=0)
        assert one.value == two.value
