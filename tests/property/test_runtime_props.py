"""Property tests for the runtime: schedules, seed tree, simulator."""

from hypothesis import given, settings, strategies as st

from repro.memory.register import AtomicRegister
from repro.runtime.operations import Read, Write
from repro.runtime.rng import SeedTree, derive_seed
from repro.runtime.scheduler import (
    BlockSchedule,
    CrashSchedule,
    LimitedSchedule,
    RandomSchedule,
    RoundRobinSchedule,
    StutterSchedule,
)
from repro.runtime.simulator import run_programs

labels = st.text(min_size=0, max_size=12)


class TestSeedTreeProperties:
    @given(st.integers(min_value=0, max_value=2**62), labels, labels)
    @settings(max_examples=100, deadline=None)
    def test_distinct_labels_distinct_seeds(self, master, a, b):
        if a == b:
            assert derive_seed(master, a) == derive_seed(master, b)
        else:
            assert derive_seed(master, a) != derive_seed(master, b)

    @given(st.integers(min_value=0, max_value=2**62), labels)
    @settings(max_examples=60, deadline=None)
    def test_child_streams_reproducible(self, master, label):
        one = SeedTree(master).child(label).rng().getrandbits(64)
        two = SeedTree(master).child(label).rng().getrandbits(64)
        assert one == two


class TestScheduleProperties:
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=60, deadline=None)
    def test_random_schedule_range_and_determinism(self, n, seed):
        schedule = RandomSchedule(n, seed)
        slots = schedule.take(100)
        assert all(0 <= pid < n for pid in slots)
        assert slots == schedule.take(100)

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=60, deadline=None)
    def test_block_schedule_block_structure(self, n, block, seed):
        slots = BlockSchedule(n, block, seed).take(block * 10)
        for start in range(0, len(slots), block):
            assert len(set(slots[start:start + block])) == 1

    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=60, deadline=None)
    def test_crash_budget_respected(self, n, budget, seed):
        schedule = CrashSchedule(RandomSchedule(n, seed), {0: budget})
        slots = schedule.take(500)
        assert slots.count(0) <= budget

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_stutter_multiplies_runs(self, n, repeat):
        base = RoundRobinSchedule(n)
        slots = StutterSchedule(base, repeat).take(n * repeat)
        expected = [pid for pid in range(n) for _ in range(repeat)]
        assert slots == expected

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_limited_length(self, n, limit):
        assert len(LimitedSchedule(RoundRobinSchedule(n), limit).take(1000)) == limit


class TestSimulatorProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=40, deadline=None)
    def test_every_process_charged_its_own_operations(self, n, seed):
        register = AtomicRegister("r")

        def program(ctx):
            yield Write(register, ctx.pid)
            yield Read(register)
            yield Write(register, ctx.pid)
            return ctx.pid

        result = run_programs(
            [program] * n, RandomSchedule(n, seed), SeedTree(seed)
        )
        assert result.completed
        assert all(steps == 3 for steps in result.steps_by_pid.values())
        assert result.outputs == {pid: pid for pid in range(n)}

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=40, deadline=None)
    def test_trace_length_equals_total_steps(self, n, seed):
        register = AtomicRegister("r")

        def program(ctx):
            yield Write(register, ctx.pid)
            value = yield Read(register)
            return value

        result = run_programs(
            [program] * n,
            RandomSchedule(n, seed),
            SeedTree(seed),
            record_trace=True,
        )
        assert len(result.trace) == result.total_steps

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=40, deadline=None)
    def test_rerun_identical(self, n, seed):
        def make_register_and_run():
            register = AtomicRegister("r")

            def program(ctx):
                if ctx.rng.random() < 0.5:
                    yield Write(register, ctx.pid)
                value = yield Read(register)
                return value

            return run_programs(
                [program] * n, RandomSchedule(n, seed), SeedTree(seed)
            )

        one = make_register_and_run()
        two = make_register_and_run()
        assert one.outputs == two.outputs
        assert one.steps_by_pid == two.steps_by_pid
