"""Property tests: a killed, resumed sweep is bit-identical to an unbroken one.

This is the crash-safety contract of the checkpoint journal
(:mod:`repro.runtime.checkpoint`): no matter where a sweep dies — after any
number of durable chunk records, even mid-append with a torn final line —
re-running it with ``resume=True`` replays the journal, executes only the
remainder, and produces *exactly* the same statistics object (``==`` on the
frozen dataclasses compares every float bit-for-bit).

Two layers of evidence:

- a deterministic property over *all* kill points: the journal of a complete
  sweep is truncated to an arbitrary record prefix (optionally with torn
  garbage appended, simulating a crash mid-write) and the resumed sweep must
  equal the uninterrupted one;
- a live integration test that SIGTERMs a real 2-worker sweep subprocess
  mid-run and resumes it (the CI workflow repeats the same drill through the
  CLI).
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.experiments import run_conciliator_trials
from repro.core.sifting_conciliator import SiftingConciliator
from repro.runtime.parallel import supports_fork

needs_fork = pytest.mark.skipif(
    not supports_fork(), reason="sharded execution requires the fork start method"
)

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def sweep(tmp_journal=None, resume=False, workers=1, trials=12, chunk_size=3):
    return run_conciliator_trials(
        lambda: SiftingConciliator(4),
        list(range(4)),
        trials=trials,
        master_seed=2012,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_path=tmp_journal,
        resume=resume,
    )


class TestKillPointProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    @given(
        survivors=st.integers(min_value=0, max_value=5),
        torn_tail=st.booleans(),
        resume_workers=st.sampled_from([1, 2]),
    )
    def test_resume_from_any_kill_point_is_bit_identical(
        self, tmp_path, survivors, torn_tail, resume_workers
    ):
        """Truncate a finished journal to ``survivors`` chunk records (the
        durable state after a kill) and resume; stats must match the
        uninterrupted sweep exactly."""
        if resume_workers > 1 and not supports_fork():
            resume_workers = 1
        baseline = sweep()
        journal_path = str(
            tmp_path / f"kill-{survivors}-{int(torn_tail)}-{resume_workers}.journal"
        )
        finished = sweep(tmp_journal=journal_path)
        assert finished == baseline

        with open(journal_path) as handle:
            lines = handle.readlines()
        header, chunk_records = lines[0], lines[1:]
        durable = chunk_records[: min(survivors, len(chunk_records))]
        with open(journal_path, "w") as handle:
            handle.write(header)
            handle.writelines(durable)
            if torn_tail:
                handle.write('{"kind": "chunk", "start": 9, "sto')  # mid-append kill

        resumed = sweep(
            tmp_journal=journal_path, resume=True, workers=resume_workers
        )
        assert resumed == baseline

    def test_resume_of_a_complete_journal_runs_nothing(self, tmp_path):
        journal_path = str(tmp_path / "complete.journal")
        baseline = sweep(tmp_journal=journal_path)

        calls = []

        def exploding_factory():
            calls.append(1)
            return SiftingConciliator(4)

        replayed = run_conciliator_trials(
            exploding_factory,
            list(range(4)),
            trials=12,
            master_seed=2012,
            workers=1,
            chunk_size=3,
            checkpoint_path=journal_path,
            resume=True,
        )
        assert replayed == baseline
        # One factory call for the run key; zero trials re-executed.
        assert len(calls) == 1


_WORKER_SCRIPT = textwrap.dedent(
    """
    import os, sys, time
    sys.path.insert(0, {src!r})
    from repro.analysis.experiments import run_conciliator_trials
    from repro.core.sifting_conciliator import SiftingConciliator

    class MaybeSlow(SiftingConciliator):
        # A per-trial delay outside the simulated execution: gives SIGTERM a
        # window to land mid-sweep without touching any random state.
        def __init__(self, n):
            if os.environ.get("REPRO_TEST_SLOW") == "1":
                time.sleep(0.15)
            super().__init__(n)

    journal = sys.argv[1]
    stats = run_conciliator_trials(
        lambda: MaybeSlow(4),
        list(range(4)),
        trials=30,
        master_seed=7,
        workers=2,
        chunk_size=2,
        checkpoint_path=journal,
        resume=os.path.exists(journal),
    )
    print(repr(stats))
    """
)


@needs_fork
class TestSigtermResume:
    def test_sigterm_mid_sweep_then_resume_matches_uninterrupted(self, tmp_path):
        """Kill a live 2-worker sweep with SIGTERM, resume it, and compare
        against the same sweep run without interruption."""
        journal_path = str(tmp_path / "sweep.journal")
        script_path = tmp_path / "sweep_script.py"
        script_path.write_text(_WORKER_SCRIPT.format(src=os.path.abspath(REPO_SRC)))

        slow_env = dict(os.environ, REPRO_TEST_SLOW="1")
        victim = subprocess.Popen(
            [sys.executable, str(script_path), journal_path],
            env=slow_env,
            start_new_session=True,  # so the kill reaches the pool workers too
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
        )
        time.sleep(1.0)  # let some chunks become durable
        os.killpg(os.getpgid(victim.pid), signal.SIGTERM)
        victim.wait(timeout=30)
        assert victim.returncode != 0, "the sweep survived the kill window"
        assert os.path.exists(journal_path), "no journal was written before the kill"
        with open(journal_path) as handle:
            durable_lines = sum(1 for _ in handle)
        # Header plus at least one durable chunk, else the resume is a
        # vacuous full re-run (per-chunk journaling has regressed).
        assert durable_lines > 1, "no chunks were durable before the kill"

        resumed = subprocess.run(
            [sys.executable, str(script_path), journal_path],
            capture_output=True,
            text=True,
            timeout=120,
            check=True,
        )

        uninterrupted = subprocess.run(
            [sys.executable, str(script_path), str(tmp_path / "reference.journal")],
            capture_output=True,
            text=True,
            timeout=120,
            check=True,
        )
        # repr round-trips floats exactly: equal reprs == bit-identical stats.
        assert resumed.stdout == uninterrupted.stdout
        assert "ConciliatorTrialStats" in resumed.stdout
