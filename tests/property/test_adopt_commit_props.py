"""Property tests: adopt-commit specification under arbitrary schedules.

For random input assignments and random oblivious schedules, every
implementation must satisfy termination, validity, convergence and
coherence.  Coherence in particular is the property whose violation silently
breaks consensus, so it gets the heaviest fuzzing.
"""

from hypothesis import given, settings, strategies as st

import helpers
from repro.adoptcommit.base import check_coherence, check_convergence
from repro.adoptcommit.collect_ac import CollectAdoptCommit
from repro.adoptcommit.encoders import IntEncoder
from repro.adoptcommit.flag_ac import FlagAdoptCommit
from repro.adoptcommit.snapshot_ac import SnapshotAdoptCommit
from repro.runtime.scheduler import ExplicitSchedule

M = 4

FACTORIES = {
    "snapshot": lambda n: SnapshotAdoptCommit(n),
    "collect": lambda n: CollectAdoptCommit(n),
    "flag": lambda n: FlagAdoptCommit(n, IntEncoder(M)),
}


@st.composite
def adopt_commit_cases(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    inputs = draw(
        st.lists(
            st.integers(min_value=0, max_value=M - 1), min_size=n, max_size=n
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return n, inputs, seed


@st.composite
def explicit_schedule_cases(draw):
    """A hand-built schedule interleaving per-process step budgets."""
    n = draw(st.integers(min_value=1, max_value=4))
    inputs = draw(
        st.lists(
            st.integers(min_value=0, max_value=M - 1), min_size=n, max_size=n
        )
    )
    # Enough slots for the costliest implementation (collect: 2 + 2n).
    budget = (2 + 2 * n + 4) * n
    slots = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=budget,
            max_size=budget,
        )
    )
    return n, inputs, slots


def spec_holds(inputs, results):
    assert all(result.value in inputs for result in results), "validity"
    assert check_convergence(list(inputs), results), "convergence"
    assert check_coherence(results), "coherence"


class TestRandomSchedules:
    @given(adopt_commit_cases())
    @settings(max_examples=80, deadline=None)
    def test_snapshot_ac_spec(self, case):
        n, inputs, seed = case
        results = helpers.run_adopt_commit(FACTORIES["snapshot"](n), inputs, seed=seed)
        spec_holds(inputs, results)

    @given(adopt_commit_cases())
    @settings(max_examples=80, deadline=None)
    def test_collect_ac_spec(self, case):
        n, inputs, seed = case
        results = helpers.run_adopt_commit(FACTORIES["collect"](n), inputs, seed=seed)
        spec_holds(inputs, results)

    @given(adopt_commit_cases())
    @settings(max_examples=80, deadline=None)
    def test_flag_ac_spec(self, case):
        n, inputs, seed = case
        results = helpers.run_adopt_commit(FACTORIES["flag"](n), inputs, seed=seed)
        spec_holds(inputs, results)


class TestAdversarialExplicitSchedules:
    """Hypothesis drives the interleaving directly, including pathological
    solo runs and ping-pong patterns a random schedule rarely produces."""

    @given(explicit_schedule_cases())
    @settings(max_examples=80, deadline=None)
    def test_flag_ac_spec_under_chosen_interleavings(self, case):
        n, inputs, slots = case
        schedule = ExplicitSchedule(slots, n=n)
        try:
            results = helpers.run_adopt_commit(
                FACTORIES["flag"](n), inputs, schedule=schedule
            )
        except Exception as error:
            from repro.errors import ScheduleExhaustedError

            assert isinstance(error, ScheduleExhaustedError)
            return
        spec_holds(inputs, results)

    @given(explicit_schedule_cases())
    @settings(max_examples=80, deadline=None)
    def test_snapshot_ac_spec_under_chosen_interleavings(self, case):
        n, inputs, slots = case
        schedule = ExplicitSchedule(slots, n=n)
        try:
            results = helpers.run_adopt_commit(
                FACTORIES["snapshot"](n), inputs, schedule=schedule
            )
        except Exception as error:
            from repro.errors import ScheduleExhaustedError

            assert isinstance(error, ScheduleExhaustedError)
            return
        spec_holds(inputs, results)

    @given(explicit_schedule_cases())
    @settings(max_examples=60, deadline=None)
    def test_collect_ac_spec_under_chosen_interleavings(self, case):
        n, inputs, slots = case
        schedule = ExplicitSchedule(slots, n=n)
        try:
            results = helpers.run_adopt_commit(
                FACTORIES["collect"](n), inputs, schedule=schedule
            )
        except Exception as error:
            from repro.errors import ScheduleExhaustedError

            assert isinstance(error, ScheduleExhaustedError)
            return
        spec_holds(inputs, results)


class TestCrossImplementationAgreementOnCommit:
    @given(adopt_commit_cases())
    @settings(max_examples=40, deadline=None)
    def test_unanimous_inputs_commit_everywhere(self, case):
        n, inputs, seed = case
        unanimous = [inputs[0]] * n
        for name, factory in FACTORIES.items():
            results = helpers.run_adopt_commit(factory(n), unanimous, seed=seed)
            assert all(r.committed and r.value == inputs[0] for r in results), name
