"""Hypothesis-driven linearizability fuzzing of the derived objects.

Random per-process operation scripts, random schedules: every resulting
history of the bounded max register must pass the exact Wing-Gong search.
This is the closest thing to model checking the repository runs at scale.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.linearizability import (
    HistoryOp,
    MaxRegisterSpec,
    count_and_run,
    is_linearizable,
)
from repro.memory.bounded_max_register import BoundedMaxRegister
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RandomSchedule
from repro.runtime.simulator import run_programs

CAPACITY = 8


@st.composite
def max_register_workloads(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    scripts = []
    for _ in range(n):
        script = draw(
            st.lists(
                st.one_of(
                    st.tuples(st.just("write"),
                              st.integers(min_value=0, max_value=CAPACITY - 1)),
                    st.tuples(st.just("read")),
                ),
                min_size=1,
                max_size=4,
            )
        )
        scripts.append(script)
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return scripts, seed


def run_history(scripts, seed):
    register = BoundedMaxRegister(CAPACITY)
    n = len(scripts)

    def program(ctx):
        records = []
        for action in scripts[ctx.pid]:
            if action[0] == "write":
                _, steps = yield from count_and_run(
                    register.write_program(ctx, action[1])
                )
                if steps > 0:
                    records.append(("write", action[1], None, steps))
            else:
                value, steps = yield from count_and_run(
                    register.read_program(ctx)
                )
                if steps > 0:
                    records.append(("read", None, value, steps))
        return records

    seeds = SeedTree(seed)
    result = run_programs(
        [program] * n,
        RandomSchedule(n, seeds.child("schedule").seed),
        seeds,
        record_trace=True,
    )
    history = []
    for pid, records in result.outputs.items():
        events = result.trace.for_pid(pid)
        offset = 0
        for kind, value, outcome, steps in records:
            history.append(HistoryOp(
                pid=pid, kind=kind, value=value, result=outcome,
                start=events[offset].step,
                end=events[offset + steps - 1].step,
            ))
            offset += steps
    return history


class TestBoundedMaxFuzzedLinearizability:
    @given(max_register_workloads())
    @settings(max_examples=60, deadline=None)
    def test_every_history_linearizes(self, case):
        scripts, seed = case
        history = run_history(scripts, seed)
        assert is_linearizable(history, MaxRegisterSpec(initial=0)), (
            scripts, seed, history,
        )

    @given(max_register_workloads())
    @settings(max_examples=30, deadline=None)
    def test_reads_never_exceed_global_max_written(self, case):
        scripts, seed = case
        history = run_history(scripts, seed)
        writes = [op.value for op in history if op.kind == "write"]
        ceiling = max(writes) if writes else 0
        for op in history:
            if op.kind == "read":
                assert 0 <= op.result <= ceiling
