"""Property tests: the sharded trial engine is bit-identical to serial.

This is the contract every future performance PR is held to: for the same
master seed, a sweep sharded across any number of workers with any chunk
size must produce *exactly* the same statistics object as the serial loop —
agreement counts, step summaries, every float bit-for-bit.  Equality is
checked with plain ``==`` on the frozen stats dataclasses, which compares
all float fields exactly (no tolerance).

The guarantee rests on two design rules pinned down here:

- trial seeds derive from the trial *index* (``trial_seed_tree``), never
  from worker or chunk placement, keeping schedule/algorithm randomness
  independent per trial exactly as the oblivious-adversary model demands;
- workers ship back per-trial outcomes that the coordinator re-orders by
  index before aggregating, so floating-point reductions happen in serial
  order.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.experiments import (
    decay_series,
    run_conciliator_trials,
    run_consensus_trials,
)
from repro.core.consensus import register_consensus, snapshot_consensus
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.parallel import parallelism, supports_fork

needs_fork = pytest.mark.skipif(
    not supports_fork(), reason="sharded execution requires the fork start method"
)

CONCILIATOR_FACTORIES = {
    "snapshot": SnapshotConciliator,
    "sifting": SiftingConciliator,
}

# Families kept cheap; "crash-half" exercises the allow_partial path.
FAMILIES = ["random", "round-robin", "crash-half"]

EQUIVALENCE_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def sweep_cases(draw):
    kind = draw(st.sampled_from(sorted(CONCILIATOR_FACTORIES)))
    n = draw(st.integers(min_value=2, max_value=6))
    trials = draw(st.integers(min_value=1, max_value=9))
    workers = draw(st.sampled_from([2, 4]))
    chunk_size = draw(st.sampled_from([None, 1, 2, 3]))
    family = draw(st.sampled_from(FAMILIES))
    master_seed = draw(st.integers(min_value=0, max_value=2**32))
    return kind, n, trials, workers, chunk_size, family, master_seed


@needs_fork
class TestConciliatorEquivalence:
    @EQUIVALENCE_SETTINGS
    @given(case=sweep_cases())
    def test_parallel_sweep_is_bit_identical(self, case):
        kind, n, trials, workers, chunk_size, family, master_seed = case
        factory = CONCILIATOR_FACTORIES[kind]
        serial = run_conciliator_trials(
            lambda: factory(n),
            list(range(n)),
            schedule_family=family,
            trials=trials,
            master_seed=master_seed,
            workers=1,
        )
        parallel = run_conciliator_trials(
            lambda: factory(n),
            list(range(n)),
            schedule_family=family,
            trials=trials,
            master_seed=master_seed,
            workers=workers,
            chunk_size=chunk_size,
        )
        assert parallel == serial

    @pytest.mark.parametrize("kind", sorted(CONCILIATOR_FACTORIES))
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("chunk_size", [1, 3])
    def test_acceptance_grid(self, kind, workers, chunk_size):
        """The ISSUE's pinned grid: 2/4 workers x two chunk sizes x both
        conciliator types, one fixed master seed."""
        factory = CONCILIATOR_FACTORIES[kind]
        kwargs = dict(trials=12, master_seed=20120716)
        serial = run_conciliator_trials(
            lambda: factory(8), list(range(8)), workers=1, **kwargs
        )
        parallel = run_conciliator_trials(
            lambda: factory(8),
            list(range(8)),
            workers=workers,
            chunk_size=chunk_size,
            **kwargs,
        )
        assert parallel == serial

    def test_chunking_never_changes_results(self):
        """Fixed worker count, sweep of chunk sizes incl. degenerate ones."""
        reference = None
        for chunk_size in (1, 2, 5, 7, 100):
            stats = run_conciliator_trials(
                lambda: SiftingConciliator(4),
                list(range(4)),
                trials=7,
                master_seed=99,
                workers=3,
                chunk_size=chunk_size,
            )
            if reference is None:
                reference = stats
            assert stats == reference


@needs_fork
class TestConsensusEquivalence:
    @EQUIVALENCE_SETTINGS
    @given(
        protocol=st.sampled_from(["register", "snapshot"]),
        trials=st.integers(min_value=1, max_value=6),
        workers=st.sampled_from([2, 4]),
        chunk_size=st.sampled_from([None, 1, 2]),
        master_seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_parallel_sweep_is_bit_identical(
        self, protocol, trials, workers, chunk_size, master_seed
    ):
        n = 4
        if protocol == "register":
            factory = lambda: register_consensus(n, value_domain=range(n))
        else:
            factory = lambda: snapshot_consensus(n)
        kwargs = dict(trials=trials, master_seed=master_seed)
        serial = run_consensus_trials(
            factory, list(range(n)), workers=1, **kwargs
        )
        parallel = run_consensus_trials(
            factory, list(range(n)), workers=workers, chunk_size=chunk_size,
            **kwargs,
        )
        assert parallel == serial
        assert parallel.all_safe


@needs_fork
class TestDecayAndDefaults:
    def test_decay_series_is_bit_identical(self):
        serial = decay_series(
            lambda: SnapshotConciliator(8),
            list(range(8)),
            trials=9,
            master_seed=5,
            workers=1,
        )
        parallel = decay_series(
            lambda: SnapshotConciliator(8),
            list(range(8)),
            trials=9,
            master_seed=5,
            workers=4,
            chunk_size=2,
        )
        assert parallel == serial

    def test_session_default_parallelism_is_equivalent(self):
        """workers=None defers to the session default (the benchmark path)."""
        serial = run_conciliator_trials(
            lambda: SiftingConciliator(4), list(range(4)),
            trials=8, master_seed=3,
        )
        with parallelism(workers=2, chunk_size=3):
            sharded = run_conciliator_trials(
                lambda: SiftingConciliator(4), list(range(4)),
                trials=8, master_seed=3,
            )
        assert sharded == serial
