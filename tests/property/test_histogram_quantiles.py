"""Property tests pinning Histogram quantile error under decimation/merge.

The histogram keeps exact moments but only a bounded, stride-decimated
subsample for quantiles, so ``quantile(q)`` is an estimate once the
observation count exceeds ``max_samples``.  These tests pin how wrong it
is allowed to be, in *rank* terms: the returned value's rank in the full
observation multiset must be within a tolerance of ``q``.

Rank error is the right metric because it is distribution-free: a value
bound would depend on the data's spacing, while rank error only depends
on which observations the decimation kept.  Tolerances differ by stream
shape — a sorted stream's systematic subsample is order-exact (tight
tolerance), a shuffled stream's behaves like a uniform random subsample
(statistical tolerance) — and merge pooling must not bias ranks toward
the finer-stride side (the drift this PR fixed: before the stride
normalization in ``merge_from``, a 100-observation stride-1 histogram
merged into a 10^4-observation stride-64 histogram contributed ~39% of
the pooled samples while representing under 1% of the mass, dragging
p95 from 0.0 to 1.0 in the regression case below).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import Histogram


def rank_error(values, estimate, q):
    """How far ``estimate``'s rank in ``values`` is from target ``q``.

    Zero when the estimate's rank interval [fraction strictly below,
    fraction at-or-below] covers ``q`` (ties make ranks intervals).
    """
    ordered = sorted(values)
    below = sum(1 for value in ordered if value < estimate)
    at_or_below = sum(1 for value in ordered if value <= estimate)
    lo = below / len(ordered)
    hi = at_or_below / len(ordered)
    if lo <= q <= hi:
        return 0.0
    return min(abs(q - lo), abs(q - hi))


class TestExactRegime:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=1, max_size=200,
        ),
        st.sampled_from([0.5, 0.99]),
    )
    @settings(max_examples=100, deadline=None)
    def test_quantile_is_exact_below_max_samples(self, values, q):
        """With no decimation the estimate IS the nearest-rank quantile."""
        histogram = Histogram(max_samples=256)
        for value in values:
            histogram.observe(value)
        ordered = sorted(values)
        expected = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
        assert histogram.quantile(q) == expected


class TestDecimatedRegime:
    @given(
        st.integers(min_value=2_000, max_value=20_000),
        st.integers(min_value=0, max_value=2**32),
        st.sampled_from([0.5, 0.99]),
    )
    @settings(max_examples=25, deadline=None)
    def test_sorted_stream_rank_error_is_tight(self, count, seed, q):
        """A sorted stream's systematic subsample preserves order exactly,
        so rank error is bounded by ~1/retained-samples (< 0.02 here)."""
        rng = random.Random(seed)
        values = sorted(rng.uniform(0, 1000) for _ in range(count))
        histogram = Histogram(max_samples=256)
        for value in values:
            histogram.observe(value)
        assert len(histogram.samples) <= 256
        assert rank_error(values, histogram.quantile(q), q) <= 0.02

    @given(
        st.integers(min_value=2_000, max_value=20_000),
        st.integers(min_value=0, max_value=2**32),
        st.sampled_from([0.5, 0.99]),
    )
    @settings(max_examples=25, deadline=None)
    def test_shuffled_stream_rank_error_is_statistical(self, count, seed, q):
        """A shuffled stream's systematic subsample behaves like a uniform
        random subsample of >= 128 points: rank error stays within a
        3-sigma-ish 0.15 of the target (sigma ~ 0.044 at p50 with the
        worst-case ~128 retained samples just after a decimation)."""
        rng = random.Random(seed)
        values = [rng.uniform(0, 1000) for _ in range(count)]
        histogram = Histogram(max_samples=256)
        for value in values:
            histogram.observe(value)
        assert rank_error(values, histogram.quantile(q), q) <= 0.15


class TestMergeRegime:
    def test_merge_regression_skewed_strides(self):
        """THE drift this PR fixed, pinned exactly: a big stride-64
        histogram of zeros absorbs a small stride-1 histogram of ones.
        Pre-fix pooling kept all 100 stride-1 samples next to ~157
        stride-64 ones — a ~39% sample share for under 1% of the mass —
        which dragged p95 from 0.0 to 1.0.  Post-fix, both sides are
        normalized to the coarser stride first, so the ones' sample share
        matches their mass share and p95 stays 0.0."""
        big = Histogram(max_samples=256)
        for _ in range(10_000):
            big.observe(0.0)
        small = Histogram(max_samples=256)
        for _ in range(100):
            small.observe(1.0)
        assert big.stride > small.stride
        big.merge_from(small)
        ones = sum(1 for value in big.samples if value == 1.0)
        # Mass share of the ones is ~0.0099; their sample share must be
        # of the same order, not the pre-fix ~0.39.
        assert ones / len(big.samples) <= 0.05
        assert big.quantile(0.95) == 0.0
        assert big.quantile(0.5) == 0.0
        # p99 straddles the 1% mass boundary exactly; either side is an
        # acceptable nearest-rank answer, but only just.
        union = [0.0] * 10_000 + [1.0] * 100
        assert rank_error(union, big.quantile(0.99), 0.99) <= 0.005
        # Exact moments are unaffected by sample pooling.
        assert big.count == 10_100
        assert big.total == 100.0
        assert big.max == 1.0

    @given(
        st.integers(min_value=100, max_value=8_000),
        st.integers(min_value=100, max_value=8_000),
        st.integers(min_value=0, max_value=2**32),
        st.sampled_from([0.5, 0.99]),
    )
    @settings(max_examples=25, deadline=None)
    def test_merged_rank_error_is_bounded(self, count_a, count_b, seed, q):
        """Merging two shuffled streams keeps rank error within the same
        statistical tolerance as observing the union directly."""
        rng = random.Random(seed)
        values_a = [rng.uniform(0, 1000) for _ in range(count_a)]
        values_b = [rng.uniform(500, 1500) for _ in range(count_b)]
        one = Histogram(max_samples=256)
        for value in values_a:
            one.observe(value)
        two = Histogram(max_samples=256)
        for value in values_b:
            two.observe(value)
        one.merge_from(two)
        union = values_a + values_b
        assert one.count == len(union)
        assert rank_error(union, one.quantile(q), q) <= 0.15

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sampled_from([0.5, 0.99]),
    )
    @settings(max_examples=15, deadline=None)
    def test_merge_direction_does_not_bias_ranks(self, seed, q):
        """Folding small-into-big and big-into-small both stay within
        tolerance of the union's quantile (they need not be equal — the
        pooled sample sets differ — but neither may drift)."""
        rng = random.Random(seed)
        big_values = [rng.uniform(0, 100) for _ in range(9_000)]
        small_values = [rng.uniform(200, 300) for _ in range(300)]
        union = big_values + small_values

        def build(values):
            histogram = Histogram(max_samples=256)
            for value in values:
                histogram.observe(value)
            return histogram

        forward = build(big_values)
        forward.merge_from(build(small_values))
        backward = build(small_values)
        backward.merge_from(build(big_values))
        assert rank_error(union, forward.quantile(q), q) <= 0.15
        assert rank_error(union, backward.quantile(q), q) <= 0.15
