"""Shared fixtures for the test suite."""

import sys
from pathlib import Path

import pytest

# Make `tests.helpers` importable as plain `helpers` from any test module.
sys.path.insert(0, str(Path(__file__).parent))

from repro.runtime.rng import SeedTree  # noqa: E402


@pytest.fixture
def seeds() -> SeedTree:
    """A fixed master seed tree; branch per test via .child()."""
    return SeedTree(20120716)  # PODC 2012 conference date
