"""Survivor-decay experiments: the engines of Lemmas 1 and 3/4.

The measured mean number of *excess* personae after each round must sit at
or below the paper's analytic bound (up to sampling slack).  These are the
integration-level counterparts of experiments E1 and E3.
"""

import pytest

from repro.analysis.experiments import decay_series
from repro.analysis.theory import sifting_decay_bound, snapshot_decay_bound
from repro.core.probabilities import sift_x
from repro.core.rounds import sifting_switch_round
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator

SLACK = 1.35  # multiplicative allowance for sampling noise
TRIALS = 40


class TestSnapshotDecay:
    @pytest.mark.parametrize("n", [16, 64])
    def test_excess_below_lemma1_bound(self, n):
        series = decay_series(
            lambda: SnapshotConciliator(n),
            list(range(n)),
            trials=TRIALS,
            master_seed=501,
        )
        bounds = snapshot_decay_bound(n, len(series))
        for round_index, survivors in enumerate(series):
            excess = survivors - 1.0
            # X must sit under the analytic bound (which can be < 1 late;
            # excess can't go below 0, so compare against max(bound, small)).
            allowance = SLACK * bounds[round_index] + 0.25
            assert excess <= allowance, (n, round_index)

    def test_first_round_logarithmic_collapse(self):
        # Lemma 1: E[Y_1] <= H_{Y_0} = ln(n) + O(1): one round crushes n
        # personae to a handful.
        n = 128
        series = decay_series(
            lambda: SnapshotConciliator(n),
            list(range(n)),
            trials=TRIALS,
            master_seed=502,
        )
        import math

        assert series[0] <= SLACK * (math.log(n) + 1)

    def test_max_register_variant_decays_similarly(self):
        n = 64
        snap = decay_series(
            lambda: SnapshotConciliator(n),
            list(range(n)), trials=TRIALS, master_seed=503,
        )
        maxreg = decay_series(
            lambda: SnapshotConciliator(n, use_max_registers=True),
            list(range(n)), trials=TRIALS, master_seed=503,
        )
        # Same length and similar first-round collapse (footnote 1 / E11).
        assert len(snap) == len(maxreg)
        assert abs(snap[0] - maxreg[0]) <= 2.5


class TestSiftingDecay:
    @pytest.mark.parametrize("n", [32, 128])
    def test_excess_below_lemma3_bound(self, n):
        series = decay_series(
            lambda: SiftingConciliator(n),
            list(range(n)),
            trials=TRIALS,
            master_seed=504,
        )
        bounds = sifting_decay_bound(n, len(series))
        for round_index, survivors in enumerate(series):
            excess = survivors - 1.0
            allowance = SLACK * bounds[round_index] + 0.3
            assert excess <= allowance, (n, round_index)

    def test_first_round_sqrt_collapse(self):
        # Lemma 3 base step: E[X_1] <= 2 sqrt(n-1).
        n = 256
        series = decay_series(
            lambda: SiftingConciliator(n),
            list(range(n)), trials=TRIALS, master_seed=505,
        )
        assert series[0] - 1 <= SLACK * sift_x(1, n)

    def test_under_eight_at_switch(self):
        # Lemma 3's punchline: expected excess < 8 after the tuned prefix.
        n = 256
        switch = sifting_switch_round(n)
        series = decay_series(
            lambda: SiftingConciliator(n),
            list(range(n)), trials=TRIALS, master_seed=506,
        )
        assert series[switch - 1] - 1 <= 8 * SLACK

    def test_tail_rounds_keep_shrinking(self):
        # Lemma 4: expectation contracts by 3/4 per tail round; over the
        # whole tail the mean must not grow.
        n = 64
        switch = sifting_switch_round(n)
        series = decay_series(
            lambda: SiftingConciliator(n),
            list(range(n)), trials=TRIALS, master_seed=507,
        )
        tail = series[switch:]
        assert tail[-1] <= tail[0] + 1e-9
