"""Crash-robustness sweep: every conciliator survives every crash subset.

Wait-freedom is a per-process guarantee: whatever subset of processes
fail-stops, and whenever they do, the *survivors* must still terminate and
the values they return must still be valid.  This sweep exercises every
conciliator in the library against every subset of crashed processes on a
small ``n``, realizing the crashes both ways the repository supports:

- :class:`~repro.runtime.scheduler.CrashSchedule` — the adversary stops
  scheduling the victims (crash as a schedule property);
- :class:`~repro.runtime.faults.CrashFault` via a
  :class:`~repro.runtime.faults.FaultPlan` — the fault injector fail-stops
  the victims mid-run (crash as an injected fault).

Both realizations are in-model and must agree: the survivors see the same
subsequence of slots either way, so their outputs are identical.
"""

from itertools import chain, combinations

import pytest

from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.conciliator import run_conciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.faults import CrashFault, FaultPlan
from repro.runtime.monitors import ValidityMonitor
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import CrashSchedule, RoundRobinSchedule

N = 3
INPUTS = list(range(N))

CONCILIATORS = {
    "snapshot": lambda: SnapshotConciliator(N),
    "snapshot-maxreg": lambda: SnapshotConciliator(N, use_max_registers=True),
    "sifting": lambda: SiftingConciliator(N),
    "cil-embedded": lambda: CILEmbeddedConciliator(N),
    "doubling-cil": lambda: DoublingCILConciliator(N),
}

# Every subset of processes, including nobody and everybody.
CRASH_SUBSETS = list(
    chain.from_iterable(
        combinations(range(N), size) for size in range(N + 1)
    )
)


def run_with_fault_plan(factory, crashed, after_steps, seed):
    plan = FaultPlan(
        crashes=tuple(CrashFault(pid, after_steps=after_steps) for pid in crashed)
    )
    monitor = ValidityMonitor(allowed_inputs=INPUTS, strict=False)
    seeds = SeedTree(seed)
    result = run_conciliator(
        factory(),
        INPUTS,
        RoundRobinSchedule(N),
        seeds,
        hooks=[plan.injector(), monitor],
        allow_partial=True,
        skip_guard=5_000,
    )
    return result, monitor


def run_with_crash_schedule(factory, crashed, after_steps, seed):
    schedule = CrashSchedule(
        RoundRobinSchedule(N), {pid: after_steps for pid in crashed}
    )
    monitor = ValidityMonitor(allowed_inputs=INPUTS, strict=False)
    seeds = SeedTree(seed)
    result = run_conciliator(
        factory(),
        INPUTS,
        schedule,
        seeds,
        hooks=[monitor],
        allow_partial=True,
        skip_guard=200,  # survivors finish long before this many free slots
    )
    return result, monitor


@pytest.mark.parametrize("name", sorted(CONCILIATORS))
class TestCrashSubsets:
    def test_survivors_terminate_and_validity_holds(self, name):
        factory = CONCILIATORS[name]
        for crashed in CRASH_SUBSETS:
            for after_steps in (0, 2):
                result, monitor = run_with_fault_plan(
                    factory, crashed, after_steps, seed=17
                )
                assert result.crashed == frozenset(crashed), (crashed, after_steps)
                assert result.survivors_completed, (crashed, after_steps)
                assert set(result.outputs) == set(range(N)) - set(crashed)
                assert monitor.ok, monitor.violations
                for value in result.outputs.values():
                    assert value in INPUTS

    def test_crash_schedule_realization_agrees_with_fault_plan(self, name):
        """Crash-as-schedule and crash-as-fault are the same adversary:
        survivors receive the identical slot subsequence and must return
        identical values."""
        factory = CONCILIATORS[name]
        for crashed in CRASH_SUBSETS:
            if len(crashed) == N:
                continue  # no survivors: nothing to compare
            via_plan, _ = run_with_fault_plan(factory, crashed, 2, seed=23)
            via_schedule, schedule_monitor = run_with_crash_schedule(
                factory, crashed, 2, seed=23
            )
            survivors = set(range(N)) - set(crashed)
            assert set(via_schedule.outputs) >= survivors, crashed
            for pid in survivors:
                assert via_plan.outputs[pid] == via_schedule.outputs[pid], crashed
                assert (
                    via_plan.steps_by_pid[pid] == via_schedule.steps_by_pid[pid]
                ), crashed
            assert schedule_monitor.ok


class TestNoCrashBaseline:
    @pytest.mark.parametrize("name", sorted(CONCILIATORS))
    def test_empty_crash_set_is_a_normal_run(self, name):
        result, monitor = run_with_fault_plan(
            CONCILIATORS[name], (), after_steps=0, seed=31
        )
        assert result.completed
        assert result.crashed == frozenset()
        assert len(result.outputs) == N
        assert monitor.ok
