"""Million-process regime: memory-footprint regression + growth end-to-end.

The sparse/lazy state layer and the streaming samplers exist so that a
round at ``n = 10^6`` costs memory proportional to the *touched* cells
and scheduled slots, not to the namespace.  These tests pin that with
``tracemalloc``: a sparse sifting-style round over a million pids must
stay orders of magnitude below the dense extrapolation (a dense snapshot
component list alone is ~8 MB of pointers; one materialized permuted
pass is another ~40 MB of boxed ints — the sparse path measures in
kilobytes).

The growth experiment itself is gated end to end at a small ``max_n``:
two runs must agree byte for byte on the deterministic view (the CI
scale-smoke contract), and every curve point must sit inside its
``theory.py`` envelope.
"""

import json
import tracemalloc

import pytest

from repro.analysis.growth import sparse_round_probe

pytest.importorskip("numpy")


#: Generous ceilings, still ~1000x under the dense extrapolation.
_PROBE_PEAK_BYTES = 2 * 1024 * 1024
_SAMPLER_PEAK_BYTES = 256 * 1024


class TestMemoryFootprint:
    def test_million_process_sparse_round_stays_tiny(self):
        tracemalloc.start()
        try:
            probe = sparse_round_probe(10**6, seed=7, slots=50_000)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < _PROBE_PEAK_BYTES, (
            f"sparse round peaked at {peak} bytes; the sparse/lazy state "
            "layer should keep a million-process round in the kilobytes"
        )
        # Memory followed the work, not the namespace: one round register,
        # a handful of touched snapshot components, n untouched.
        assert probe["n"] == 10**6
        assert probe["registers_allocated"] == 1
        assert probe["snapshot_sparse"] is True
        assert probe["snapshot_components_touched"] < 100

    def test_streaming_sampler_is_constant_memory(self):
        from repro.runtime.streaming import StreamingPermutedSchedule

        tracemalloc.start()
        try:
            schedule = StreamingPermutedSchedule(10**6, seed=3)
            checksum = 0
            for step in range(20_000):
                checksum += schedule.pid_at(step)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert 0 <= checksum
        assert peak < _SAMPLER_PEAK_BYTES, (
            f"streaming sampler peaked at {peak} bytes; pid_at must not "
            "materialize per-pass state"
        )

    def test_sparse_snapshot_scan_cost_follows_writers(self):
        # 10^6-component snapshot, 5 writers: the scan view iterates 5
        # entries, and building it allocates per-writer, not per-component.
        from repro.memory.snapshot import SnapshotObject
        from repro.runtime.operations import Scan, Update

        snapshot = SnapshotObject(10**6, sparse=True)
        for pid in (0, 10, 500_000, 999_998, 999_999):
            snapshot.apply(Update(snapshot, f"v{pid}"), pid)
        tracemalloc.start()
        try:
            view = snapshot.apply(Scan(snapshot), 1)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert view.touched() == 5
        assert len(view) == 10**6
        assert peak < 64 * 1024


class TestGrowthEndToEnd:
    def test_deterministic_view_is_byte_stable(self):
        from repro.analysis.growth import (
            compare_growth,
            deterministic_view,
            run_growth_experiment,
        )

        first = run_growth_experiment(max_n=100, label="first")
        second = run_growth_experiment(max_n=100, label="second")
        ok, message = compare_growth(first, second)
        assert ok, message
        assert (json.dumps(deterministic_view(first), sort_keys=True)
                == json.dumps(deterministic_view(second), sort_keys=True))

    def test_every_point_within_theory_envelope(self):
        from repro.analysis.growth import run_growth_experiment

        report = run_growth_experiment(max_n=1000, label="envelope")
        for name, points in report["curves"].items():
            for point in points:
                assert point["within_envelope"], (name, point)
                if point["relation"] == "exact":
                    assert (point["observed_max_steps"]
                            == point["predicted_steps"])
        for point in report["baseline_solo"]:
            assert point["observed_max_steps"] <= point["predicted_steps"]
        assert report["checks"]["within_envelope"]
        assert report["checks"]["monotone"]
        # Separation needs more decades than this smoke sweep has; the
        # committed GROWTH_baseline.json (max_n = 10^5) gates it in CI.

    def test_seed_changes_the_curves(self):
        from repro.analysis.growth import run_growth_experiment

        base = run_growth_experiment(max_n=100, label="a", seed=2012)
        other = run_growth_experiment(max_n=100, label="a", seed=2013)
        assert base["baseline_solo"] != other["baseline_solo"]
