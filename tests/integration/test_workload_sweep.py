"""Conciliator safety across the full input-workload gallery.

Validity and termination hold for any input assignment; probabilistic
agreement holds regardless of how inputs are distributed.  This sweeps
every conciliator across every named workload.
"""

import pytest

from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.core.cil import CILConciliator
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.indirect_conciliator import IndirectSnapshotConciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.rng import SeedTree
from repro.runtime.simulator import run_programs
from repro.workloads.inputs import standard_input_gallery
from repro.workloads.schedules import make_schedule

N = 8

CONCILIATORS = {
    "snapshot": lambda: SnapshotConciliator(N),
    "snapshot-maxreg": lambda: SnapshotConciliator(N, use_max_registers=True),
    "indirect": lambda: IndirectSnapshotConciliator(N),
    "sifting": lambda: SiftingConciliator(N),
    "sifting-anon": lambda: SiftingConciliator(N, anonymous=True),
    "cil": lambda: CILConciliator(N),
    "cil-embedded": lambda: CILEmbeddedConciliator(N),
    "doubling-cil": lambda: DoublingCILConciliator(N),
}


@pytest.mark.parametrize("conciliator_name", sorted(CONCILIATORS))
def test_every_conciliator_on_every_workload(conciliator_name):
    gallery = standard_input_gallery(N, seed=5)
    factory = CONCILIATORS[conciliator_name]
    for workload, inputs in gallery.items():
        for seed in range(3):
            seeds = SeedTree(seed)
            conciliator = factory()
            schedule = make_schedule("random", N, seeds.child("schedule"))
            result = run_programs(
                [conciliator.program] * N, schedule, seeds,
                inputs=list(inputs),
            )
            assert result.completed, (conciliator_name, workload, seed)
            assert result.validity_holds(dict(enumerate(inputs))), (
                conciliator_name, workload, seed,
            )


@pytest.mark.parametrize("conciliator_name", sorted(CONCILIATORS))
def test_unanimous_workload_forces_that_value(conciliator_name):
    factory = CONCILIATORS[conciliator_name]
    seeds = SeedTree(9)
    conciliator = factory()
    schedule = make_schedule("random", N, seeds.child("schedule"))
    result = run_programs(
        [conciliator.program] * N, schedule, seeds, inputs=["only"] * N
    )
    assert result.decided_values == {"only"}


def test_experiment_tables_are_deterministic():
    """E12 is exact (no sampling): two invocations must render identically;
    sampled experiments are deterministic too, given their fixed seeds."""
    from repro.analysis.paper import e12_adopt_commit_cost, e9

    assert (e12_adopt_commit_cost().render()
            == e12_adopt_commit_cost().render())
    assert e9(scale=0.05).render() == e9(scale=0.05).render()
