"""Linearizability of the derived objects, checked with Wing-Gong search.

The emulated snapshot and the bounded max register take many steps per
operation, so their operations overlap under concurrent schedules.  These
tests reconstruct each operation's real-time interval from the execution
trace and run the exact linearizability search against the sequential
specification — the strongest correctness statement the repository makes
about these constructions.
"""

import pytest

from repro.analysis.linearizability import (
    HistoryOp,
    MaxRegisterSpec,
    SnapshotSpec,
    count_and_run,
    is_linearizable,
)
from repro.memory.bounded_max_register import BoundedMaxRegister
from repro.memory.emulated_snapshot import EmulatedSnapshot
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RandomSchedule
from repro.runtime.simulator import run_programs


def build_history(result, script_outputs):
    """Map per-process (kind, value, result, steps) records to HistoryOps.

    The k-th charged step of process p corresponds to the k-th trace event
    with that pid, whose ``step`` field is the global index.
    """
    history = []
    for pid, records in script_outputs.items():
        events = result.trace.for_pid(pid)
        offset = 0
        for kind, value, outcome, steps in records:
            assert steps > 0, "zero-step ops need no interval"
            start = events[offset].step
            end = events[offset + steps - 1].step
            history.append(
                HistoryOp(pid=pid, kind=kind, value=value, result=outcome,
                          start=start, end=end)
            )
            offset += steps
    return history


def run_max_register_history(n, capacity, scripts, seed):
    """Each process runs its script of ('write', v) / ('read',) ops."""
    register = BoundedMaxRegister(capacity)

    def program(ctx):
        records = []
        for action in scripts[ctx.pid]:
            if action[0] == "write":
                _, steps = yield from count_and_run(
                    register.write_program(ctx, action[1])
                )
                records.append(("write", action[1], None, steps))
            else:
                value, steps = yield from count_and_run(
                    register.read_program(ctx)
                )
                records.append(("read", None, value, steps))
        return records

    seeds = SeedTree(seed)
    result = run_programs(
        [program] * n,
        RandomSchedule(n, seeds.child("schedule").seed),
        seeds,
        record_trace=True,
    )
    assert result.completed
    return build_history(result, result.outputs)


class TestBoundedMaxRegisterLinearizability:
    @pytest.mark.parametrize("seed", range(12))
    def test_concurrent_writers_and_readers(self, seed):
        n, capacity = 3, 16
        scripts = {
            0: [("write", 5), ("read",), ("write", 12), ("read",)],
            1: [("write", 9), ("read",), ("read",)],
            2: [("read",), ("write", 3), ("read",)],
        }
        history = run_max_register_history(n, capacity, scripts, seed)
        assert is_linearizable(history, MaxRegisterSpec(initial=0)), (
            seed, history,
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_dense_small_domain(self, seed):
        # A tiny domain maximizes switch contention in the tree.
        n, capacity = 4, 4
        scripts = {
            pid: [("write", (pid * 2 + 1) % capacity), ("read",),
                  ("write", (pid + 2) % capacity), ("read",)]
            for pid in range(n)
        }
        history = run_max_register_history(n, capacity, scripts, seed)
        assert is_linearizable(history, MaxRegisterSpec(initial=0)), seed


class TestEmulatedSnapshotLinearizability:
    @pytest.mark.parametrize("seed", range(12))
    def test_updates_and_scans(self, seed):
        n = 3
        snapshot = EmulatedSnapshot(n)

        def program(ctx):
            records = []
            _, steps = yield from count_and_run(
                snapshot.update_program(ctx, f"v{ctx.pid}.0")
            )
            records.append(("update", f"v{ctx.pid}.0", None, steps))
            view, steps = yield from count_and_run(snapshot.scan_program(ctx))
            records.append(("scan", None, view, steps))
            _, steps = yield from count_and_run(
                snapshot.update_program(ctx, f"v{ctx.pid}.1")
            )
            records.append(("update", f"v{ctx.pid}.1", None, steps))
            view, steps = yield from count_and_run(snapshot.scan_program(ctx))
            records.append(("scan", None, view, steps))
            return records

        seeds = SeedTree(seed)
        result = run_programs(
            [program] * n,
            RandomSchedule(n, seeds.child("schedule").seed),
            seeds,
            record_trace=True,
        )
        assert result.completed
        history = build_history(result, result.outputs)
        assert is_linearizable(history, SnapshotSpec(n)), (seed, history)

    @pytest.mark.parametrize("seed", range(6))
    def test_scan_only_processes_against_updaters(self, seed):
        n = 3
        snapshot = EmulatedSnapshot(n)

        def updater(ctx):
            records = []
            for round_index in range(3):
                value = (ctx.pid, round_index)
                _, steps = yield from count_and_run(
                    snapshot.update_program(ctx, value)
                )
                records.append(("update", value, None, steps))
            return records

        def scanner(ctx):
            records = []
            for _ in range(3):
                view, steps = yield from count_and_run(
                    snapshot.scan_program(ctx)
                )
                records.append(("scan", None, view, steps))
            return records

        seeds = SeedTree(1000 + seed)
        result = run_programs(
            [updater, updater, scanner],
            RandomSchedule(n, seeds.child("schedule").seed),
            seeds,
            record_trace=True,
        )
        assert result.completed
        history = build_history(result, result.outputs)
        assert is_linearizable(history, SnapshotSpec(n)), seed
