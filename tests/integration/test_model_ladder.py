"""Integration tests for the adversary ladder and weakened register models.

Pins the robustness-envelope claims end to end:

- the committed probe report stays valid (monotone ladder, hard oracles);
- the ladder endpoints separate on a live sweep at fixed ``(n, seed)``;
- Algorithms 1-2 keep validity and termination on regular/safe registers;
- each new adversary family actually breaks a deliberately fragile stack
  that a lockstep oblivious schedule cannot touch (detector calibration);
- weakened sweeps and campaigns are worker-count-invariant;
- ladder scenarios replay from versioned JSON via the corpus machinery.
"""

import json
from pathlib import Path

from repro.analysis.experiments import run_conciliator_trials
from repro.analysis.probe import ProbeReport
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.fuzz.corpus import CorpusCase, load_case, replay_case, save_case
from repro.fuzz.scenario import FuzzConfig, generate_scenario, run_scenario
from repro.memory.register import AtomicRegister
from repro.memory.semantics import RegisterModel
from repro.runtime.adaptive import AdaptiveSpec, run_adaptive_programs
from repro.runtime.adversary import ADVERSARY_LADDER, AdversarySpec
from repro.runtime.operations import Read, Write
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import ExplicitSchedule
from repro.runtime.simulator import run_programs

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCommittedProbeReport:
    """benchmarks/PROBE_ladder.json is the committed robustness envelope;
    it must parse and still satisfy its own invariants."""

    def _report(self):
        path = REPO_ROOT / "benchmarks" / "PROBE_ladder.json"
        return ProbeReport.from_json(json.loads(path.read_text()))

    def test_report_is_ok(self):
        report = self._report()
        assert report.hard_oracles_hold
        assert report.monotone == {"sifting": True, "snapshot": True}
        assert report.ok

    def test_every_rung_measured_in_ladder_order(self):
        report = self._report()
        for rows in report.ladder.values():
            assert [row["rung"] for row in rows] == list(ADVERSARY_LADDER)

    def test_register_leg_covers_both_algorithms(self):
        report = self._report()
        measured = {(row["algorithm"], row["model"])
                    for row in report.register_models}
        assert measured == {
            (algorithm, model)
            for algorithm in ("sifting", "snapshot")
            for model in ("atomic", "regular", "safe")
        }


class TestLadderSeparation:
    def test_oblivious_beats_adaptive_at_fixed_n(self):
        """The ladder endpoints must separate cleanly for Algorithm 2: an
        oblivious random schedule keeps the paper's floor; the adaptive
        pending-reads strategy lands far below it."""
        n, trials, seed = 8, 150, 2012
        oblivious = run_conciliator_trials(
            lambda: SiftingConciliator(n), list(range(n)),
            schedule_family="random", trials=trials, master_seed=seed,
        )
        adaptive = run_conciliator_trials(
            lambda: SiftingConciliator(n), list(range(n)),
            schedule_family="random", trials=trials, master_seed=seed,
            adversary=AdaptiveSpec("pending-reads"),
        )
        assert oblivious.validity_failures == 0
        assert adaptive.validity_failures == 0
        assert oblivious.agreement_rate - adaptive.agreement_rate > 0.1

    def test_middle_rungs_preserve_validity(self):
        n, trials, seed = 8, 60, 2012
        for spec in (
            AdversarySpec("noisy", inner="pending-reads", noise=0.8),
            AdversarySpec("late", inner="pending-reads", delay=1),
        ):
            stats = run_conciliator_trials(
                lambda: SiftingConciliator(n), list(range(n)),
                schedule_family="random", trials=trials, master_seed=seed,
                adversary=spec,
            )
            assert stats.trials == trials
            assert stats.validity_failures == 0


class TestRegularRegisters:
    def test_algorithms_1_and_2_keep_validity_and_termination(self):
        """Under declared regular/safe semantics (forced weak reads via
        p_old=1), agreement may sag but every trial must terminate with a
        valid decision — the hard oracles of the weakened model."""
        n, trials, seed = 8, 60, 2012
        for factory in (
            lambda: SiftingConciliator(n),
            lambda: SnapshotConciliator(n),
        ):
            for kind in ("regular", "safe"):
                stats = run_conciliator_trials(
                    factory, list(range(n)),
                    schedule_family="random", trials=trials,
                    master_seed=seed,
                    register_model=RegisterModel(kind, p_old=1.0),
                )
                assert stats.trials == trials   # every trial terminated
                assert stats.validity_failures == 0


def _fragile_programs(n):
    """A deliberately fragile conciliator: write input, read, decide.

    Under a lockstep round-robin schedule every write completes before any
    read, so all processes decide the last write and agree.  Any adversary
    that can pair a process's write with its own immediate read splits the
    decisions — which is exactly what the noisy and late rungs (wrapping
    pending-reads) exploit.
    """
    shared = AtomicRegister(name="fragile.shared")

    def program(ctx):
        yield Write(shared, ctx.input_value)
        return (yield Read(shared))

    return [program] * n


def _agreement(result):
    return len(set(result.outputs.values())) == 1


class TestFragileStackCalibration:
    """Each new adversary family must be able to break a stack that an
    oblivious lockstep schedule cannot — proof the rungs add real power."""

    N = 4
    TRIALS = 30

    def test_oblivious_round_robin_cannot_break_it(self):
        slots = [pid for _ in range(2) for pid in range(self.N)]
        for trial in range(self.TRIALS):
            result = run_programs(
                _fragile_programs(self.N),
                ExplicitSchedule(slots, n=self.N),
                SeedTree(trial), inputs=list(range(self.N)),
            )
            assert _agreement(result)

    def _break_rate(self, spec):
        broken = 0
        for trial in range(self.TRIALS):
            result = run_adaptive_programs(
                _fragile_programs(self.N),
                spec.build(),
                SeedTree(trial), inputs=list(range(self.N)),
            )
            broken += not _agreement(result)
        return broken / self.TRIALS

    def test_noisy_adversary_breaks_it(self):
        spec = AdversarySpec("noisy", inner="pending-reads", noise=0.2)
        assert self._break_rate(spec) > 0.5

    def test_late_adversary_breaks_it(self):
        spec = AdversarySpec("late", inner="pending-reads", delay=1)
        assert self._break_rate(spec) > 0.5


class TestWorkerInvariance:
    def test_weakened_sweep_is_worker_invariant(self):
        n, trials, seed = 6, 40, 7
        kwargs = dict(
            schedule_family="random", trials=trials, master_seed=seed,
            register_model=RegisterModel("regular"),
            adversary=AdversarySpec("late", inner="pending-reads", delay=1),
        )
        serial = run_conciliator_trials(
            lambda: SiftingConciliator(n), list(range(n)),
            workers=1, **kwargs,
        )
        sharded = run_conciliator_trials(
            lambda: SiftingConciliator(n), list(range(n)),
            workers=2, chunk_size=7, **kwargs,
        )
        assert serial.agreement_count == sharded.agreement_count
        assert serial.validity_failures == sharded.validity_failures
        assert serial.total_steps.mean == sharded.total_steps.mean

    def test_weakened_scenarios_are_pure_functions_of_the_seed(self):
        config = FuzzConfig(
            stacks=("sifting",),
            register_model=RegisterModel("regular"),
            adversary=AdversarySpec("late", inner="pending-reads", delay=1),
        )
        for trial in range(6):
            first = generate_scenario(99, trial, config)
            second = generate_scenario(99, trial, config)
            assert first == second
            assert first.register_model is not None
            assert first.adversary is not None
            outcome_a = run_scenario(first)
            outcome_b = run_scenario(second)
            assert outcome_a.status == outcome_b.status
            assert outcome_a.oracle_names == outcome_b.oracle_names


class TestLadderReplay:
    def test_weakened_scenario_round_trips_through_the_corpus(self, tmp_path):
        """A scenario pinning both model axes must survive the corpus
        save/load/replay cycle byte-identically — the contract that makes
        ladder findings regression-testable."""
        config = FuzzConfig(
            stacks=("sifting",),
            register_model=RegisterModel("safe"),
            adversary=AdversarySpec("noisy", inner="pending-reads",
                                    noise=0.8),
        )
        scenario = generate_scenario(42, 0, config)
        outcome = run_scenario(scenario)
        oracles = outcome.oracle_names or ("wait-freedom",)
        case = CorpusCase(scenario=scenario, oracles=tuple(oracles),
                          note="ladder replay test")
        path = save_case(case, tmp_path)
        loaded = load_case(path)
        assert loaded.scenario == scenario
        if outcome.oracle_names:
            report = replay_case(loaded)
            assert report.reproduced
            assert report.missing == ()
