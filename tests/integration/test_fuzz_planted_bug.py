"""End-to-end acceptance tests for the chaos fuzzer.

These pin the headline guarantees of the fuzz subsystem:

1. a campaign over a stack with a *planted*, monitor-detectable bug finds
   it, auto-shrinks it to a minimal reproducer, saves it to a corpus, and
   the saved case replays to the same violation;
2. an honest in-model campaign reports zero oracle violations;
3. seeded campaigns are deterministic: same seed and budget produce the
   same scenario sequence and byte-identical corpus files;
4. out-of-model campaigns may degrade agreement-flavoured oracles but
   never breach validity or termination.
"""

import json

from repro.fuzz import (
    FuzzConfig,
    generate_scenario,
    load_corpus,
    replay_case,
    run_fuzz_campaign,
)
from repro.fuzz.scenario import HARD_ORACLES


def fingerprint(report):
    """Report identity minus wall-clock timing and host-specific paths."""
    import os

    data = report.to_json()
    data.pop("elapsed_seconds")
    data["corpus_files"] = [os.path.basename(f) for f in data["corpus_files"]]
    for finding in data["findings"]:
        if finding["corpus_file"]:
            finding["corpus_file"] = os.path.basename(finding["corpus_file"])
    return json.dumps(data, sort_keys=True)


class TestPlantedBugPipeline:
    def test_found_shrunk_saved_and_replayed(self, tmp_path):
        report = run_fuzz_campaign(
            2012,
            FuzzConfig(stacks=("planted-validity",), max_n=4),
            trials=8,
            corpus_dir=tmp_path,
            corpus_per_bug=2,
            shrink_max_reproductions=150,
        )
        assert not report.ok
        findings = [f for f in report.findings if f.status == "violation"]
        assert findings, "the planted validity bug was never hit"
        for finding in findings:
            assert "validity" in finding.oracles
            # Shrinking made real progress: fewer processes or fewer faults
            # or an explicit minimal schedule.
            assert finding.shrunk.n <= finding.scenario.n
            assert finding.shrunk.faults.is_empty

        saved = load_corpus(tmp_path)
        assert saved
        for path, case in saved:
            verdict = replay_case(case, wall_clock_seconds=60.0)
            assert verdict.reproduced, path.name
            assert verdict.missing == (), path.name
            assert "validity" in verdict.matched

    def test_planted_termination_bug_trips_the_watchdog(self, tmp_path):
        report = run_fuzz_campaign(
            2012,
            FuzzConfig(stacks=("planted-termination",), max_n=4),
            trials=8,
            corpus_dir=tmp_path,
            corpus_per_bug=1,
            shrink_max_reproductions=100,
        )
        assert not report.ok
        oracles = {o for f in report.findings for o in f.oracles}
        assert oracles & {"wait-freedom", "termination"}


class TestHonestCampaign:
    def test_in_model_campaign_has_zero_violations(self):
        report = run_fuzz_campaign(77, FuzzConfig(), trials=40)
        assert report.ok
        assert not report.findings
        assert set(report.statuses) <= {"ok", "inconclusive"}
        assert report.statuses.get("ok", 0) > report.trials // 2


class TestCampaignDeterminism:
    def test_scenario_sequence_is_a_pure_function_of_the_seed(self):
        config = FuzzConfig()
        first = [generate_scenario(31, i, config).canonical_json()
                 for i in range(50)]
        second = [generate_scenario(31, i, config).canonical_json()
                  for i in range(50)]
        assert first == second

    def test_same_seed_same_budget_same_corpus_bytes(self, tmp_path):
        fingerprints, corpora = [], []
        for label in ("a", "b"):
            corpus_dir = tmp_path / label
            report = run_fuzz_campaign(
                2012,
                FuzzConfig(stacks=("planted-validity",), max_n=4),
                trials=6,
                corpus_dir=corpus_dir,
                shrink_max_reproductions=80,
                workers=1 if label == "a" else 2,
            )
            fingerprints.append(fingerprint(report))
            corpora.append({
                path.name: path.read_bytes()
                for path, _ in load_corpus(corpus_dir)
            })
        assert fingerprints[0] == fingerprints[1]
        assert corpora[0] and corpora[0] == corpora[1]


class TestOutOfModelCampaign:
    def test_degrades_but_never_breaches_hard_oracles(self):
        report = run_fuzz_campaign(
            55,
            FuzzConfig(stacks=("sifting", "flag-ac", "snapshot"),
                       allow_out_of_model=True),
            trials=40,
            shrink=False,
            include_degraded_in_corpus=False,
        )
        assert report.ok, [f.oracles for f in report.findings
                           if f.status == "violation"]
        degraded = [f for f in report.findings if f.status == "degraded"]
        for finding in degraded:
            assert not set(finding.oracles) & HARD_ORACLES
