"""Integration: seeded loadtests, SLO reports, and the committed baseline.

These are the PR's acceptance gates, run in-process:

- same seed ⇒ byte-identical deterministic SLO view (the virtual-time
  loop plus pre-drawn traffic makes the whole loadtest a pure function
  of its arguments);
- the burst profile with the ``baseline`` chaos stack demonstrates the
  full overload story: queue-full shedding, a complete breaker
  open → half-open → close cycle, and vectorized-fallback degradation;
- the committed ``benchmarks/SLO_baseline.json`` regenerates exactly;
- the ``repro loadtest`` CLI exits 0 on clean runs and writes valid
  versioned reports and history ledger lines.
"""

import json
import os

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.fuzz.stacks import get_service_chaos
from repro.service import (
    ServiceConfig,
    build_report,
    deterministic_view,
    load_report,
    render_report,
    run_loadtest,
)
from repro.service.slo import append_slo_history, slo_history_entry

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "SLO_baseline.json"
)


def baseline_run(sessions=2000, seed=0):
    """The exact configuration the committed baseline artifact used."""
    return run_loadtest(
        profile="burst",
        sessions=sessions,
        seed=seed,
        config=ServiceConfig(),
        chaos=get_service_chaos("baseline"),
    )


def canonical(view):
    return json.dumps(view, indent=2, sort_keys=True)


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = build_report(
            baseline_run(sessions=400), label="det", chaos_stack="baseline"
        )
        second = build_report(
            baseline_run(sessions=400), label="det", chaos_stack="baseline"
        )
        assert canonical(deterministic_view(first)) == canonical(
            deterministic_view(second)
        )

    def test_different_seeds_differ(self):
        first = build_report(baseline_run(sessions=400, seed=0))
        second = build_report(baseline_run(sessions=400, seed=1))
        assert canonical(deterministic_view(first)) != canonical(
            deterministic_view(second)
        )


class TestOverloadStory:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report(
            baseline_run(), label="baseline", chaos_stack="baseline"
        )

    def test_no_unexpected_errors(self, report):
        assert report["sessions"]["unexpected_errors"] == 0

    def test_burst_overload_sheds_on_the_queue_bound(self, report):
        assert report["sessions"]["rejected"]["queue-full"] > 0
        assert report["shed_rate"] > 0

    def test_breaker_completes_a_full_cycle(self, report):
        cycles = [
            breaker for breaker in report["breakers"].values()
            if breaker["opened"] >= 1
            and breaker["half_opened"] >= 1
            and breaker["closed_again"] >= 1
        ]
        assert cycles, (
            "at least one shard's breaker must open, half-open, and "
            f"close again; got {report['breakers']}"
        )

    def test_sustained_overload_degrades_to_the_vectorized_backend(
        self, report
    ):
        assert report["degraded_mode"]["entered"] >= 1
        assert report["sessions"]["degraded"] > 0

    def test_session_accounting_sums_to_offered(self, report):
        """Offered = admitted + rejected + missing, with admitted drawn
        from observed outcomes only — never presumed from the offer."""
        sessions = report["sessions"]
        assert sessions["offered"] == (
            sessions["admitted"]
            + sum(sessions["rejected"].values())
            + sessions["missing"]
        )
        assert sessions["admitted"] == (
            sessions["completed"] + sum(sessions["failed"].values())
        )
        assert sessions["missing"] == 0  # clean run: every offer answered

    def test_report_carries_the_slo_schema_fields(self, report):
        assert report["v"] == 1
        for field in ("p50", "p95", "p99", "mean", "max"):
            assert isinstance(report["latency"][field], float)
        assert 0 <= report["shed_rate"] <= 1
        assert 0 <= report["slo"]["attainment"] <= 1
        assert report["goodput_per_sec"] > 0

    def test_render_report_summarizes_every_section(self, report):
        text = render_report(report)
        for needle in ("offered=2000", "queue-full=", "breaker[0]",
                       "degraded", "shed rate"):
            assert needle in text


class TestCommittedBaseline:
    def test_committed_baseline_regenerates_exactly(self):
        committed = load_report(BASELINE_PATH)
        regenerated = build_report(
            baseline_run(),
            label=committed["label"],
            slo_target_latency=committed["slo"]["target_latency"],
            chaos_stack=committed["chaos_stack"],
        )
        assert canonical(deterministic_view(regenerated)) == canonical(
            deterministic_view(committed)
        )

    def test_load_report_rejects_foreign_versions(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"v": 99}))
        with pytest.raises(ConfigurationError, match="version"):
            load_report(str(path))


class TestSessionAccounting:
    def test_missing_responses_are_not_presumed_admitted(self):
        """Sessions with no response at all (submit() raised, slot stayed
        None) land in the ``missing`` bucket, not in ``admitted``."""
        import dataclasses

        result = baseline_run(sessions=100)
        dropped = dataclasses.replace(
            result, responses=result.responses[:-5], unexpected_errors=5,
        )
        sessions = build_report(dropped)["sessions"]
        assert sessions["missing"] == 5
        assert sessions["offered"] == (
            sessions["admitted"]
            + sum(sessions["rejected"].values())
            + sessions["missing"]
        )


class TestHistoryLedger:
    def test_entry_distills_the_trend_numbers(self):
        report = build_report(
            baseline_run(sessions=200), label="ledger",
            chaos_stack="baseline",
        )
        entry = slo_history_entry(report)
        assert entry["kind"] == "repro-slo-history"
        assert entry["p50"] == report["latency"]["p50"]
        assert entry["shed_rate"] == report["shed_rate"]
        assert entry["unexpected_errors"] == 0

    def test_append_is_one_json_line_per_run(self, tmp_path):
        report = build_report(baseline_run(sessions=200))
        path = tmp_path / "ledger" / "SLO_history.jsonl"
        append_slo_history(report, str(path))
        append_slo_history(report, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "repro-slo-history"

    def test_non_report_is_refused(self):
        with pytest.raises(ConfigurationError, match="not an SLO report"):
            slo_history_entry({"v": 1})


class TestLoadtestCli:
    def test_clean_run_exits_zero_and_writes_artifacts(self, tmp_path,
                                                       capsys):
        out = tmp_path / "report.json"
        history = tmp_path / "history.jsonl"
        code = main([
            "loadtest", "--profile", "steady", "--sessions", "60",
            "--seed", "3", "--label", "ci-smoke",
            "--out", str(out), "--history", str(history),
        ])
        assert code == 0
        report = load_report(str(out))
        assert report["label"] == "ci-smoke"
        assert report["sessions"]["unexpected_errors"] == 0
        assert len(history.read_text().splitlines()) == 1
        assert "SLO report" in capsys.readouterr().out

    def test_verify_determinism_flag_passes(self, capsys):
        code = main([
            "loadtest", "--profile", "burst", "--sessions", "150",
            "--seed", "5", "--chaos", "brownout", "--verify-determinism",
            "--json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        verdict, _, payload = out.partition("\n")
        assert "determinism verified" in verdict
        assert json.loads(payload)["v"] == 1

    def test_unknown_chaos_stack_is_a_loud_error(self, capsys):
        code = main([
            "loadtest", "--profile", "steady", "--sessions", "10",
            "--chaos", "no-such-stack",
        ])
        assert code != 0
        assert "unknown service chaos stack" in capsys.readouterr().err
