"""Integration: seeded loadtests, SLO reports, and the committed baseline.

These are the PR's acceptance gates, run in-process:

- same seed ⇒ byte-identical deterministic SLO view (the virtual-time
  loop plus pre-drawn traffic makes the whole loadtest a pure function
  of its arguments);
- the burst profile with the ``baseline`` chaos stack demonstrates the
  full overload story: queue-full shedding, a complete breaker
  open → half-open → close cycle, and vectorized-fallback degradation;
- the committed ``benchmarks/SLO_baseline.json`` regenerates exactly;
- the ``repro loadtest`` CLI exits 0 on clean runs and writes valid
  versioned reports and history ledger lines.
"""

import json
import os

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.fuzz.stacks import get_service_chaos
from repro.service import (
    ServiceConfig,
    build_report,
    deterministic_view,
    load_report,
    render_report,
    run_loadtest,
)
from repro.service.slo import (
    SLO_TREND_METRICS,
    append_slo_history,
    load_slo_history,
    render_slo_trend,
    slo_history_entry,
    summarize_slo_trend,
)
from repro.service.spans import phase_sum, span_digest

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "SLO_baseline.json"
)


def baseline_run(sessions=2000, seed=0):
    """The exact configuration the committed baseline artifact used."""
    return run_loadtest(
        profile="burst",
        sessions=sessions,
        seed=seed,
        config=ServiceConfig(),
        chaos=get_service_chaos("baseline"),
    )


def canonical(view):
    return json.dumps(view, indent=2, sort_keys=True)


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = build_report(
            baseline_run(sessions=400), label="det", chaos_stack="baseline"
        )
        second = build_report(
            baseline_run(sessions=400), label="det", chaos_stack="baseline"
        )
        assert canonical(deterministic_view(first)) == canonical(
            deterministic_view(second)
        )

    def test_different_seeds_differ(self):
        first = build_report(baseline_run(sessions=400, seed=0))
        second = build_report(baseline_run(sessions=400, seed=1))
        assert canonical(deterministic_view(first)) != canonical(
            deterministic_view(second)
        )


class TestOverloadStory:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report(
            baseline_run(), label="baseline", chaos_stack="baseline"
        )

    def test_no_unexpected_errors(self, report):
        assert report["sessions"]["unexpected_errors"] == 0

    def test_burst_overload_sheds_on_the_queue_bound(self, report):
        assert report["sessions"]["rejected"]["queue-full"] > 0
        assert report["shed_rate"] > 0

    def test_breaker_completes_a_full_cycle(self, report):
        cycles = [
            breaker for breaker in report["breakers"].values()
            if breaker["opened"] >= 1
            and breaker["half_opened"] >= 1
            and breaker["closed_again"] >= 1
        ]
        assert cycles, (
            "at least one shard's breaker must open, half-open, and "
            f"close again; got {report['breakers']}"
        )

    def test_sustained_overload_degrades_to_the_vectorized_backend(
        self, report
    ):
        assert report["degraded_mode"]["entered"] >= 1
        assert report["sessions"]["degraded"] > 0

    def test_session_accounting_sums_to_offered(self, report):
        """Offered = admitted + rejected + missing, with admitted drawn
        from observed outcomes only — never presumed from the offer."""
        sessions = report["sessions"]
        assert sessions["offered"] == (
            sessions["admitted"]
            + sum(sessions["rejected"].values())
            + sessions["missing"]
        )
        assert sessions["admitted"] == (
            sessions["completed"] + sum(sessions["failed"].values())
        )
        assert sessions["missing"] == 0  # clean run: every offer answered

    def test_report_carries_the_slo_schema_fields(self, report):
        assert report["v"] == 1
        for field in ("p50", "p95", "p99", "mean", "max"):
            assert isinstance(report["latency"][field], float)
        assert 0 <= report["shed_rate"] <= 1
        assert 0 <= report["slo"]["attainment"] <= 1
        assert report["goodput_per_sec"] > 0

    def test_render_report_summarizes_every_section(self, report):
        text = render_report(report)
        for needle in ("offered=2000", "queue-full=", "breaker[0]",
                       "degraded", "shed rate"):
            assert needle in text


class TestCommittedBaseline:
    def test_committed_baseline_regenerates_exactly(self):
        committed = load_report(BASELINE_PATH)
        regenerated = build_report(
            baseline_run(),
            label=committed["label"],
            slo_target_latency=committed["slo"]["target_latency"],
            chaos_stack=committed["chaos_stack"],
        )
        assert canonical(deterministic_view(regenerated)) == canonical(
            deterministic_view(committed)
        )

    def test_load_report_rejects_foreign_versions(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"v": 99}))
        with pytest.raises(ConfigurationError, match="version"):
            load_report(str(path))


class TestSessionAccounting:
    def test_missing_responses_are_not_presumed_admitted(self):
        """Sessions with no response at all (submit() raised, slot stayed
        None) land in the ``missing`` bucket, not in ``admitted``."""
        import dataclasses

        result = baseline_run(sessions=100)
        dropped = dataclasses.replace(
            result, responses=result.responses[:-5], unexpected_errors=5,
        )
        sessions = build_report(dropped)["sessions"]
        assert sessions["missing"] == 5
        assert sessions["offered"] == (
            sessions["admitted"]
            + sum(sessions["rejected"].values())
            + sessions["missing"]
        )


class TestHistoryLedger:
    def test_entry_distills_the_trend_numbers(self):
        report = build_report(
            baseline_run(sessions=200), label="ledger",
            chaos_stack="baseline",
        )
        entry = slo_history_entry(report)
        assert entry["kind"] == "repro-slo-history"
        assert entry["p50"] == report["latency"]["p50"]
        assert entry["shed_rate"] == report["shed_rate"]
        assert entry["unexpected_errors"] == 0

    def test_append_is_one_json_line_per_run(self, tmp_path):
        report = build_report(baseline_run(sessions=200))
        path = tmp_path / "ledger" / "SLO_history.jsonl"
        append_slo_history(report, str(path))
        append_slo_history(report, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "repro-slo-history"

    def test_non_report_is_refused(self):
        with pytest.raises(ConfigurationError, match="not an SLO report"):
            slo_history_entry({"v": 1})


class TestLatencyAttribution:
    """The tentpole acceptance gate: per-session phase times sum exactly
    to the session latency, under overload and chaos, at any worker
    count, and the whole section sits inside the deterministic view."""

    @pytest.mark.parametrize("workers_per_shard", [1, 2, 4])
    def test_phases_sum_bit_exactly_to_latency_for_every_session(
        self, workers_per_shard
    ):
        result = run_loadtest(
            profile="burst",
            sessions=400,
            seed=0,
            config=ServiceConfig(workers_per_shard=workers_per_shard),
            chaos=get_service_chaos("baseline"),
        )
        by_id = {t.attrs["session_id"]: t for t in result.spans}
        checked = 0
        for response in result.responses:
            if response.status == "rejected":
                continue
            phases = by_id[response.session_id].attrs["phases"]
            assert phase_sum(phases) == response.latency, (
                f"session {response.session_id} at "
                f"workers_per_shard={workers_per_shard}: phases "
                f"{phases} do not sum to latency {response.latency!r}"
            )
            checked += 1
        assert checked > 100  # the invariant was actually exercised

    def test_every_session_emits_exactly_one_tree(self):
        result = baseline_run(sessions=300)
        assert len(result.spans) == 300
        ids = sorted(t.attrs["session_id"] for t in result.spans)
        assert ids == list(range(300))

    def test_attribution_section_is_in_the_deterministic_view(self):
        report = build_report(baseline_run(sessions=300))
        view = deterministic_view(report)
        attribution = view["latency_attribution"]
        assert attribution is not None
        assert set(attribution["phases"]) == {
            "stall", "queue-wait", "worker-call", "backoff", "unattributed"
        }
        # Shares are fractions of the summed latency and cover it.
        shares = sum(
            phase["share"] for phase in attribution["phases"].values()
        )
        assert shares == pytest.approx(1.0)
        assert attribution["sessions_unmatched"] == 0

    def test_percentile_rows_name_real_sessions_with_phase_breakdowns(self):
        report = build_report(baseline_run(sessions=300))
        attribution = report["latency_attribution"]
        for label in ("p50", "p95", "p99"):
            row = attribution["percentiles"][label]
            assert row["phases"] is not None
            assert phase_sum(row["phases"]) == row["latency"]

    def test_breaker_timelines_record_the_full_cycle(self):
        report = build_report(baseline_run())
        timelines = report["latency_attribution"]["breaker_timelines"]
        states = [
            state for timeline in timelines.values()
            for _, state in timeline
        ]
        # The burst+chaos baseline drives at least one shard through
        # open -> half-open -> closed.
        assert {"open", "half-open", "closed"} <= set(states)

    def test_spans_digest_matches_the_trees(self):
        result = baseline_run(sessions=300)
        report = build_report(result)
        assert report["latency_attribution"]["spans"]["digest"] \
            == span_digest(result.spans)

    def test_attribution_is_none_without_spans(self):
        import dataclasses

        result = baseline_run(sessions=100)
        stripped = dataclasses.replace(result, spans=None)
        assert build_report(stripped)["latency_attribution"] is None

    def test_render_report_shows_the_budget_lines(self):
        text = render_report(build_report(baseline_run(sessions=300)))
        assert "budget" in text
        assert "spans" in text
        assert "digest=sha256:" in text


class TestSLOTrend:
    def make_history(self, tmp_path, runs=3):
        path = tmp_path / "SLO_history.jsonl"
        for seed in range(runs):
            report = build_report(
                baseline_run(sessions=150, seed=seed), label=f"run{seed}",
            )
            append_slo_history(report, str(path))
        return path

    def test_load_summarize_roundtrip(self, tmp_path):
        path = self.make_history(tmp_path)
        entries = load_slo_history(path)
        assert len(entries) == 3
        trends = summarize_slo_trend(entries)
        assert [t.metric for t in trends] == list(SLO_TREND_METRICS)
        assert all(t.points == 3 for t in trends)

    def test_last_windows_the_ledger(self, tmp_path):
        entries = load_slo_history(self.make_history(tmp_path))
        trends = summarize_slo_trend(entries, last=1)
        assert all(t.points == 1 for t in trends)
        assert all(t.latest_change is None for t in trends)

    def test_missing_file_is_an_empty_history(self, tmp_path):
        assert load_slo_history(tmp_path / "absent.jsonl") == []
        assert "empty" in render_slo_trend([])

    def test_torn_final_line_is_tolerated_with_a_warning(self, tmp_path):
        path = self.make_history(tmp_path, runs=2)
        with open(path, "a") as handle:
            handle.write('{"v": 1, "kind": "repro-slo-his')
        with pytest.warns(RuntimeWarning, match="torn"):
            entries = load_slo_history(path)
        assert len(entries) == 2

    def test_torn_interior_line_is_an_error(self, tmp_path):
        path = self.make_history(tmp_path, runs=1)
        good = path.read_text()
        path.write_text('{"torn\n' + good)
        with pytest.raises(ConfigurationError, match="line 1"):
            load_slo_history(path)

    def test_foreign_version_is_rejected(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps({"v": 9, "kind": "repro-slo-history"}) + "\n"
        )
        with pytest.raises(ConfigurationError, match="version 9"):
            load_slo_history(path)

    def test_foreign_kind_is_rejected(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps({"v": 1, "kind": "repro-bench-history"}) + "\n"
        )
        with pytest.raises(ConfigurationError, match="kind"):
            load_slo_history(path)

    def test_render_names_every_metric(self, tmp_path):
        text = render_slo_trend(load_slo_history(self.make_history(tmp_path)))
        for metric in SLO_TREND_METRICS:
            assert metric in text

    def test_cli_trend_renders_and_exits_zero(self, tmp_path, capsys):
        path = self.make_history(tmp_path, runs=2)
        assert main(["slo", "trend", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "SLO trend over 2 entries" in out

    def test_cli_trend_json_mode(self, tmp_path, capsys):
        path = self.make_history(tmp_path, runs=2)
        assert main(["slo", "trend", "--history", str(path), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["metric"] for row in rows} == set(SLO_TREND_METRICS)


class TestSpansCli:
    def run_with_spans(self, tmp_path):
        spans_dir = tmp_path / "spans"
        out = tmp_path / "report.json"
        code = main([
            "loadtest", "--profile", "burst", "--sessions", "120",
            "--seed", "0", "--chaos", "baseline", "--label", "spans-ci",
            "--out", str(out), "--spans", str(spans_dir),
        ])
        return code, out, spans_dir / "SPANS_spans-ci.jsonl"

    def test_spans_flag_persists_one_tree_per_session(self, tmp_path,
                                                      capsys):
        from repro.service.spans import read_spans_jsonl

        code, _, spans_path = self.run_with_spans(tmp_path)
        assert code == 0
        assert "wrote 120 span tree(s)" in capsys.readouterr().out
        assert len(read_spans_jsonl(spans_path)) == 120

    def test_report_digest_re_verifies_against_the_spans_file(
        self, tmp_path, capsys
    ):
        """The digest in the SLO report is sha256 over exactly the bytes
        the --spans file holds, so artifacts cross-check offline."""
        import hashlib

        code, out, spans_path = self.run_with_spans(tmp_path)
        assert code == 0
        report = load_report(str(out))
        digest = report["latency_attribution"]["spans"]["digest"]
        on_disk = hashlib.sha256(spans_path.read_bytes()).hexdigest()
        assert digest == f"sha256:{on_disk}"

    def test_waterfall_renders_a_session_from_the_spans_file(
        self, tmp_path, capsys
    ):
        code, out, spans_path = self.run_with_spans(tmp_path)
        assert code == 0
        report = load_report(str(out))
        session = report["latency_attribution"]["percentiles"]["p99"][
            "session_id"]
        capsys.readouterr()
        assert main([
            "slo", "waterfall", str(spans_path),
            "--session", str(session),
        ]) == 0
        text = capsys.readouterr().out
        assert f"session {session}:" in text
        assert "worker-call" in text

    def test_waterfall_html_writes_a_self_contained_page(self, tmp_path,
                                                         capsys):
        code, out, spans_path = self.run_with_spans(tmp_path)
        assert code == 0
        page = tmp_path / "waterfall.html"
        assert main([
            "slo", "waterfall", str(spans_path), "--session", "0",
            "--html", "--out", str(page),
        ]) == 0
        content = page.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert "<script" not in content

    def test_waterfall_unknown_session_is_a_clean_error(self, tmp_path,
                                                        capsys):
        code, _, spans_path = self.run_with_spans(tmp_path)
        assert code == 0
        capsys.readouterr()
        assert main([
            "slo", "waterfall", str(spans_path), "--session", "99999",
        ]) == 1
        assert "no session 99999" in capsys.readouterr().err


class TestLoadtestCli:
    def test_clean_run_exits_zero_and_writes_artifacts(self, tmp_path,
                                                       capsys):
        out = tmp_path / "report.json"
        history = tmp_path / "history.jsonl"
        code = main([
            "loadtest", "--profile", "steady", "--sessions", "60",
            "--seed", "3", "--label", "ci-smoke",
            "--out", str(out), "--history", str(history),
        ])
        assert code == 0
        report = load_report(str(out))
        assert report["label"] == "ci-smoke"
        assert report["sessions"]["unexpected_errors"] == 0
        assert len(history.read_text().splitlines()) == 1
        assert "SLO report" in capsys.readouterr().out

    def test_verify_determinism_flag_passes(self, capsys):
        code = main([
            "loadtest", "--profile", "burst", "--sessions", "150",
            "--seed", "5", "--chaos", "brownout", "--verify-determinism",
            "--json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        verdict, _, payload = out.partition("\n")
        assert "determinism verified" in verdict
        assert json.loads(payload)["v"] == 1

    def test_unknown_chaos_stack_is_a_loud_error(self, capsys):
        code = main([
            "loadtest", "--profile", "steady", "--sessions", "10",
            "--chaos", "no-such-stack",
        ])
        assert code != 0
        assert "unknown service chaos stack" in capsys.readouterr().err
