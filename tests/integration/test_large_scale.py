"""Large-scale smoke tests: the library at the biggest sizes benches use.

These verify that step counts stay exactly at their closed forms at scale
(no hidden O(n) leaks in the protocol logic) and that the simulator handles
hundreds of thousands of operations comfortably.
"""

import pytest

from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.consensus import register_consensus, run_consensus
from repro.core.rounds import sifting_rounds
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RandomSchedule
from repro.runtime.simulator import run_programs
from repro.tas.sifting_tas import WINNER, SiftingTestAndSet


def test_sifting_at_4096_processes():
    n = 4096
    seeds = SeedTree(1)
    conciliator = SiftingConciliator(n)
    result = run_programs(
        [conciliator.program] * n,
        RandomSchedule(n, seeds.child("schedule").seed),
        seeds,
        inputs=list(range(n)),
    )
    assert result.completed
    assert result.total_steps == n * sifting_rounds(n, 0.5)
    assert result.validity_holds({pid: pid for pid in range(n)})


def test_snapshot_maxreg_at_2048_processes():
    n = 2048
    seeds = SeedTree(2)
    conciliator = SnapshotConciliator(n, use_max_registers=True)
    result = run_programs(
        [conciliator.program] * n,
        RandomSchedule(n, seeds.child("schedule").seed),
        seeds,
        inputs=list(range(n)),
    )
    assert result.completed
    assert result.max_individual_steps == conciliator.step_bound()


def test_embedded_at_1024_processes_total_linear():
    # The expectation bound is 17n; the per-run total is dominated by the
    # geometric time-to-first-proposal-write (std comparable to its mean),
    # so average 10 runs and allow ~3 sigma of sampling slack.
    n = 1024
    totals = []
    for seed in range(10):
        seeds = SeedTree(seed)
        conciliator = CILEmbeddedConciliator(n)
        result = run_programs(
            [conciliator.program] * n,
            RandomSchedule(n, seeds.child("schedule").seed),
            seeds,
            inputs=list(range(n)),
        )
        assert result.completed
        totals.append(result.total_steps)
    assert sum(totals) / len(totals) <= 24 * n


def test_consensus_at_512_processes():
    n = 512
    seeds = SeedTree(6)
    protocol = register_consensus(n, value_domain=range(16))
    result = run_consensus(
        protocol,
        [pid % 16 for pid in range(n)],
        RandomSchedule(n, seeds.child("schedule").seed),
        seeds,
    )
    assert result.agreement
    assert result.completed


def test_tas_at_1024_processes():
    n = 1024
    seeds = SeedTree(7)
    tas = SiftingTestAndSet(n)
    result = run_programs(
        [tas.program] * n,
        RandomSchedule(n, seeds.child("schedule").seed),
        seeds,
    )
    winners = [pid for pid, out in result.outputs.items() if out == WINNER]
    assert len(winners) == 1
