"""Step-complexity checks: the quantities the paper's theorems bound.

The simulator counts exactly one step per shared-memory operation, so these
are exact measurements, not timings.
"""

import math

import pytest

from repro.analysis.experiments import (
    run_conciliator_trials,
    run_consensus_trials,
)
from repro.analysis.theory import (
    cil_total_steps_bound,
    sifting_step_count,
    snapshot_step_count,
)
from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.consensus import register_consensus, snapshot_consensus
from repro.core.rounds import log_star
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator


class TestExactConciliatorCosts:
    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_snapshot_steps_exact(self, n):
        stats = run_conciliator_trials(
            lambda: SnapshotConciliator(n),
            list(range(n)), trials=5, master_seed=1,
        )
        expected = snapshot_step_count(n, 0.5)
        assert stats.individual_steps.minimum == expected
        assert stats.individual_steps.maximum == expected

    @pytest.mark.parametrize("n", [2, 8, 64, 256])
    def test_sifting_steps_exact(self, n):
        stats = run_conciliator_trials(
            lambda: SiftingConciliator(n),
            list(range(n)), trials=5, master_seed=2,
        )
        expected = sifting_step_count(n, 0.5)
        assert stats.individual_steps.minimum == expected
        assert stats.individual_steps.maximum == expected


class TestScalingShape:
    def test_sifting_grows_doubly_logarithmically(self):
        # Quadrupling the exponent of n adds exactly 2 tuned rounds.
        costs = {n: sifting_step_count(n, 0.5) for n in (16, 256, 65536)}
        assert costs[256] - costs[16] == 1
        assert costs[65536] - costs[256] == 1

    def test_snapshot_grows_like_log_star(self):
        costs = {n: snapshot_step_count(n, 0.5) for n in (4, 65536)}
        assert costs[65536] - costs[4] == 2 * (log_star(65536) - log_star(4))

    def test_sifting_beats_doubling_cil_baseline(self):
        """E8's headline: log log n conciliator vs log n baseline."""
        for n in (64, 256, 1024):
            sifting = SiftingConciliator(n).step_bound()
            baseline = DoublingCILConciliator(n).step_bound()
            assert sifting < baseline, n

    def test_baseline_gap_widens_with_n(self):
        gap_small = (DoublingCILConciliator(16).step_bound()
                     - SiftingConciliator(16).step_bound())
        gap_large = (DoublingCILConciliator(4096).step_bound()
                     - SiftingConciliator(4096).step_bound())
        assert gap_large > gap_small


class TestTheorem3Costs:
    @pytest.mark.parametrize("n", [8, 32])
    def test_individual_steps_bounded_by_inner(self, n):
        stats = run_conciliator_trials(
            lambda: CILEmbeddedConciliator(n),
            list(range(n)), trials=30, master_seed=3,
        )
        inner = SiftingConciliator(n, epsilon=0.25).step_bound()
        worst_case = 2 * (inner + 1) + 7
        assert stats.individual_steps.maximum <= worst_case

    @pytest.mark.parametrize("n", [8, 32, 64])
    def test_expected_total_steps_linear(self, n):
        stats = run_conciliator_trials(
            lambda: CILEmbeddedConciliator(n),
            list(range(n)), trials=30, master_seed=4,
        )
        assert stats.total_steps.mean <= cil_total_steps_bound(n)

    def test_total_steps_per_process_stay_constant(self):
        """The point of Algorithm 3: total work ~n with a fixed constant.

        Plain Algorithm 2 costs exactly ``n * R(n)`` total steps, which
        grows like ``n log log n``; Algorithm 3's total divided by ``n``
        stays below a constant (~20) at every scale.  (At laptop scales
        ``R(n)`` is still comparable to that constant — the asymptotic
        crossover sits near ``n = 2^16`` — so the measurable claim is the
        flat per-process total, not a pointwise win.)
        """
        ratios = {}
        for n in (32, 128, 256):
            embedded = run_conciliator_trials(
                lambda: CILEmbeddedConciliator(n),
                list(range(n)), trials=10, master_seed=5,
            )
            plain = run_conciliator_trials(
                lambda: SiftingConciliator(n),
                list(range(n)), trials=10, master_seed=5,
            )
            # Plain Algorithm 2 costs exactly n * rounds total, always.
            assert plain.total_steps.mean == n * SiftingConciliator(n).rounds
            ratios[n] = embedded.total_steps.mean / n
        assert all(ratio <= 20.0 for ratio in ratios.values()), ratios


class TestConsensusCosts:
    def test_snapshot_consensus_expected_steps_near_one_phase(self):
        n = 16
        stats = run_consensus_trials(
            lambda: snapshot_consensus(n),
            list(range(n)), trials=20, master_seed=6,
        )
        assert stats.all_safe
        one_phase = snapshot_step_count(n, 0.5) + 4
        # Phases succeed with probability >= 1/2, so the mean should sit
        # within a few phases of the single-phase cost.
        assert stats.individual_steps.mean < 5 * one_phase

    def test_register_consensus_expected_steps_scale(self):
        results = {}
        for n in (8, 64):
            stats = run_consensus_trials(
                lambda: register_consensus(n, value_domain=range(8)),
                [pid % 8 for pid in range(n)],
                trials=20, master_seed=7,
            )
            assert stats.all_safe
            results[n] = stats.individual_steps.mean
        # Doubly-logarithmic conciliator + fixed-m adopt-commit: growing n
        # 8x should barely move the cost.
        assert results[64] < results[8] * 2

    def test_phase_count_geometric(self):
        n = 8
        stats = run_consensus_trials(
            lambda: register_consensus(n, value_domain=range(n)),
            list(range(n)), trials=30, master_seed=8,
        )
        # Each phase commits with probability >= 1/2 (eps = 1/2), so the
        # mean phase count is at most ~2 plus slack.
        assert stats.phases.mean <= 4.0
