"""Direct statistical verification of the per-round lemma bounds.

Lemma 1 (snapshot round): ``E[X'] <= min(ln(X+1), X/2)``.
Lemma 2 (sifting round, any p): ``E[X'] <= min(p X + 1/p, (1-p+p^2) X)``.

These are the per-round engines behind Theorems 1 and 2; the decay
experiments check whole trajectories, while these tests isolate a single
round at controlled starting states and probabilities — including p values
far from the tuned schedule, since Lemma 2 claims its bound *for any p*.
"""

import math

import pytest

from repro.analysis.experiments import decay_series
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator

TRIALS = 120
SLACK = 1.25  # multiplicative allowance for sampling error


def one_round_excess_sifting(n, p, master_seed):
    series = decay_series(
        lambda: SiftingConciliator(n, rounds=1, p_schedule=[p]),
        list(range(n)),
        trials=TRIALS,
        master_seed=master_seed,
    )
    return series[0] - 1.0


def lemma2_bound(x, p):
    first = p * x + 1.0 / p
    second = (1.0 - p + p * p) * x
    return min(first, second)


class TestLemma2AnyP:
    @pytest.mark.parametrize("p", [0.05, 0.1, 0.25, 0.5, 0.75, 0.9])
    def test_one_round_bound_at_n64(self, p):
        n = 64
        measured = one_round_excess_sifting(n, p, master_seed=int(p * 1000))
        assert measured <= SLACK * lemma2_bound(n - 1, p) + 0.3, p

    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_tuned_p_meets_its_own_bound(self, n):
        from repro.core.probabilities import sift_p

        p = sift_p(1, n)
        measured = one_round_excess_sifting(n, p, master_seed=7 * n)
        assert measured <= SLACK * lemma2_bound(n - 1, p) + 0.3

    def test_bound_is_tight_enough_to_be_informative(self):
        # Sanity against vacuity: at the tuned p the measured excess should
        # be a decent fraction of the bound, not orders below (which would
        # suggest we're testing the wrong quantity).
        from repro.core.probabilities import sift_p

        n = 128
        p = sift_p(1, n)
        measured = one_round_excess_sifting(n, p, master_seed=11)
        assert measured >= 0.3 * lemma2_bound(n - 1, p)


class TestLemma1OneRound:
    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_one_round_log_bound(self, n):
        series = decay_series(
            lambda: SnapshotConciliator(n, rounds=1),
            list(range(n)),
            trials=TRIALS,
            master_seed=13 * n,
        )
        measured_excess = series[0] - 1.0
        bound = math.log(n)  # ln(X_0 + 1) = ln(n)
        assert measured_excess <= SLACK * bound + 0.3

    def test_small_state_half_bound(self):
        # For tiny X the X/2 branch of f binds: start a round with 2
        # processes (X_0 = 1) and check E[X_1] <= 1/2 (with slack).
        n = 2
        series = decay_series(
            lambda: SnapshotConciliator(n, rounds=1, priority_range=10**9),
            list(range(n)),
            trials=400,
            master_seed=17,
        )
        measured_excess = series[0] - 1.0
        assert measured_excess <= SLACK * 0.5 + 0.05
