"""Custom consensus stacks: the framework is generic over its parts.

The alternation framework of Section 1.2 works for *any* conciliator and
*any* adopt-commit object.  These tests wire unusual combinations — the
bare CIL conciliator, chained conciliators, the O(n) collect adopt-commit,
the indirection variant — and check that consensus safety still holds,
which is the framework's claim.
"""

import pytest

from repro.adoptcommit.collect_ac import CollectAdoptCommit
from repro.adoptcommit.snapshot_ac import SnapshotAdoptCommit
from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.core.cil import CILConciliator
from repro.core.compose import ChainedConciliator
from repro.core.consensus import ConsensusProtocol, run_consensus
from repro.core.indirect_conciliator import IndirectSnapshotConciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RandomSchedule

N = 6
INPUTS = list(range(N))


def run_stack(conciliator_factory, ac_factory, seed):
    protocol = ConsensusProtocol(
        N,
        conciliator_factory=conciliator_factory,
        adopt_commit_factory=ac_factory,
    )
    seeds = SeedTree(seed)
    schedule = RandomSchedule(N, seeds.child("schedule").seed)
    result = run_consensus(protocol, INPUTS, schedule, seeds)
    return protocol, result


STACKS = {
    "cil+collect": (
        lambda n, phase: CILConciliator(n, name=f"cil-{phase}"),
        lambda n, phase: CollectAdoptCommit(n, name=f"collect-{phase}"),
    ),
    "doubling-cil+snapshot-ac": (
        lambda n, phase: DoublingCILConciliator(n, name=f"dcil-{phase}"),
        lambda n, phase: SnapshotAdoptCommit(n, name=f"snap-ac-{phase}"),
    ),
    "chained-sift+collect": (
        lambda n, phase: ChainedConciliator(
            [SiftingConciliator(n, name=f"s{phase}a"),
             SiftingConciliator(n, name=f"s{phase}b")],
            name=f"chain-{phase}",
        ),
        lambda n, phase: CollectAdoptCommit(n, name=f"collect-{phase}"),
    ),
    "indirect+snapshot-ac": (
        lambda n, phase: IndirectSnapshotConciliator(
            n, name=f"indirect-{phase}"
        ),
        lambda n, phase: SnapshotAdoptCommit(n, name=f"snap-ac-{phase}"),
    ),
}


@pytest.mark.parametrize("stack", sorted(STACKS))
def test_custom_stack_safety(stack):
    conciliator_factory, ac_factory = STACKS[stack]
    for seed in range(6):
        protocol, result = run_stack(conciliator_factory, ac_factory, seed)
        assert result.completed, (stack, seed)
        assert result.agreement, (stack, seed)
        assert result.validity_holds(dict(enumerate(INPUTS))), (stack, seed)


@pytest.mark.parametrize("stack", sorted(STACKS))
def test_custom_stack_phase_counts_modest(stack):
    conciliator_factory, ac_factory = STACKS[stack]
    worst = 0
    for seed in range(6):
        protocol, _ = run_stack(conciliator_factory, ac_factory, seed)
        worst = max(worst, max(protocol.phases_used.values()))
    # Every stack's conciliator has constant agreement probability, so
    # phase counts stay geometric-small.
    assert worst <= 8, stack


def test_chained_stack_commits_faster_on_average():
    """A chained (higher-delta) conciliator should need no more phases
    than a single-stage one on the same seeds."""
    single_phases = []
    chained_phases = []
    for seed in range(10):
        protocol, _ = run_stack(
            lambda n, phase: SiftingConciliator(n, name=f"one-{phase}"),
            lambda n, phase: CollectAdoptCommit(n, name=f"ac-{phase}"),
            seed,
        )
        single_phases.append(max(protocol.phases_used.values()))
        protocol, _ = run_stack(*STACKS["chained-sift+collect"], seed=seed)
        chained_phases.append(max(protocol.phases_used.values()))
    assert sum(chained_phases) <= sum(single_phases)
