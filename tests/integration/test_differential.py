"""Differential tests: independent implementations must agree exactly.

Where two implementations realize the same abstract object, running them
against identical seeds and schedules must give identical (or spec-equal)
results.  This catches subtle divergences that statistical tests average
away.
"""

import pytest

from repro.adoptcommit.collect_ac import CollectAdoptCommit
from repro.adoptcommit.encoders import IntEncoder
from repro.adoptcommit.flag_ac import FlagAdoptCommit
from repro.adoptcommit.snapshot_ac import SnapshotAdoptCommit
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RandomSchedule, RoundRobinSchedule
from repro.runtime.simulator import run_programs


class TestSnapshotVsMaxRegisterVariant:
    """Footnote 1 says max registers 'would work as well'.  In this library
    the claim is exact: for the same seeds and schedule, both variants of
    Algorithm 1 perform one write + one read per round and adopt the
    maximum (priority, origin) persona visible, so their outputs must be
    bit-identical."""

    @pytest.mark.parametrize("seed", range(10))
    def test_identical_outputs_random_schedule(self, seed):
        n = 12
        outputs = {}
        for use_max in (False, True):
            seeds = SeedTree(seed)
            conciliator = SnapshotConciliator(n, use_max_registers=use_max)
            schedule = RandomSchedule(n, 7_777 + seed)
            result = run_programs(
                [conciliator.program] * n, schedule, seeds,
                inputs=list(range(n)),
            )
            outputs[use_max] = result.outputs
        assert outputs[False] == outputs[True], seed

    def test_identical_survivor_series(self):
        n = 16
        series = {}
        for use_max in (False, True):
            seeds = SeedTree(99)
            conciliator = SnapshotConciliator(n, use_max_registers=use_max)
            run_programs(
                [conciliator.program] * n, RoundRobinSchedule(n), seeds,
                inputs=list(range(n)),
            )
            series[use_max] = conciliator.survivor_series()
        assert series[False] == series[True]


class TestAdoptCommitCrossImplementation:
    """Different adopt-commit objects may answer differently (their step
    patterns differ), but on the *same* committed outcome they must agree:
    whenever two implementations both commit under the same unanimity
    workload, they commit the same value; and all three always satisfy the
    spec simultaneously."""

    @pytest.mark.parametrize("seed", range(10))
    def test_unanimous_commit_everywhere(self, seed):
        n, value = 5, 3
        for factory in (
            lambda: SnapshotAdoptCommit(n),
            lambda: CollectAdoptCommit(n),
            lambda: FlagAdoptCommit(n, IntEncoder(8)),
        ):
            ac = factory()
            seeds = SeedTree(seed)
            programs = [lambda ctx: ac.invoke(ctx, ctx.input_value)] * n
            result = run_programs(
                programs,
                RandomSchedule(n, 31_000 + seed),
                seeds,
                inputs=[value] * n,
            )
            assert all(out.committed and out.value == value
                       for out in result.outputs.values())

    @pytest.mark.parametrize("seed", range(10))
    def test_all_implementations_safe_on_same_workload(self, seed):
        from repro.adoptcommit.base import check_coherence

        n = 4
        inputs = [seed % 4, (seed + 1) % 4, 0, 1]
        for factory in (
            lambda: SnapshotAdoptCommit(n),
            lambda: CollectAdoptCommit(n),
            lambda: FlagAdoptCommit(n, IntEncoder(4)),
        ):
            ac = factory()
            seeds = SeedTree(seed)
            programs = [lambda ctx: ac.invoke(ctx, ctx.input_value)] * n
            result = run_programs(
                programs,
                RandomSchedule(n, 32_000 + seed),
                seeds,
                inputs=inputs,
            )
            outcomes = [result.outputs[pid] for pid in range(n)]
            assert check_coherence(outcomes)
            assert all(out.value in inputs for out in outcomes)


class TestEmulatedVsUnitCostConciliator:
    """The emulated-snapshot Algorithm 1 must behave like the unit-cost one
    in everything except price: same round count, valid outputs, and under
    a *sequential* schedule the same decision (views coincide)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_sequential_schedules_agree(self, seed):
        from repro.core.emulated_conciliator import EmulatedSnapshotConciliator
        from repro.runtime.scheduler import ExplicitSchedule

        n = 4
        outputs = {}
        for label, make in (
            ("unit", lambda: SnapshotConciliator(n, rounds=2)),
            ("emulated", lambda: EmulatedSnapshotConciliator(n, rounds=2)),
        ):
            seeds = SeedTree(seed)
            conciliator = make()
            # Sequential: each process runs fully before the next starts.
            slots = [pid for pid in range(n) for _ in range(200)]
            result = run_programs(
                [conciliator.program] * n,
                ExplicitSchedule(slots, n=n),
                seeds,
                inputs=list(range(n)),
                allow_partial=True,
            )
            assert result.completed
            outputs[label] = result.outputs
        assert outputs["unit"] == outputs["emulated"], seed
