"""Structural obliviousness: schedules and coins are independent.

The paper's analysis is only valid if the adversary cannot react to coin
flips.  In this library that independence is structural (separate seed-tree
branches); these tests pin the structure down so refactoring cannot silently
break it.
"""

from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import RandomSchedule
from repro.runtime.simulator import run_programs
from repro.workloads.schedules import make_schedule


class TestScheduleCoinIndependence:
    def test_schedule_slots_do_not_depend_on_algorithm_seed(self):
        # Two runs with different algorithm randomness but the same schedule
        # seed must see the identical slot sequence.
        n = 8
        slots = []
        for master in (1, 2):
            seeds = SeedTree(master)
            # Schedule seed fixed independently of master.
            schedule = RandomSchedule(n, 999)
            conciliator = SiftingConciliator(n)
            programs = [conciliator.program] * n
            run_programs(programs, schedule, seeds, inputs=list(range(n)))
            slots.append(schedule.take(100))
        assert slots[0] == slots[1]

    def test_coins_do_not_depend_on_schedule(self):
        # The persona each process generates is a function of its algorithm
        # seed only: changing the adversary must not change it.  Run a
        # single all-writers sifting round under two different adversaries
        # and compare what each pid actually wrote.
        n = 6
        written_by_run = []
        for schedule_seed in (10, 20):
            seeds = SeedTree(42)
            conciliator = SiftingConciliator(n, rounds=1, p_schedule=[1.0])
            schedule = RandomSchedule(n, schedule_seed)
            programs = [conciliator.program] * n
            result = run_programs(
                programs, schedule, seeds, inputs=list(range(n)),
                record_trace=True,
            )
            writes = {
                event.pid: event.value
                for event in result.trace.events
                if event.kind == "write"
            }
            written_by_run.append(writes)
        assert written_by_run[0] == written_by_run[1]

    def test_different_adversaries_may_change_outputs_but_not_safety(self):
        n = 8
        outputs = []
        for family in ("round-robin", "reversed", "front-runner"):
            seeds = SeedTree(7)
            conciliator = SnapshotConciliator(n)
            schedule = make_schedule(family, n, seeds.child("schedule"))
            programs = [conciliator.program] * n
            result = run_programs(
                programs, schedule, seeds, inputs=list(range(n))
            )
            assert result.validity_holds({pid: pid for pid in range(n)})
            outputs.append(result.output_list())
        # The adversary can steer which value wins...
        # (not asserted: it may coincide) ...but never break validity.

    def test_rerun_with_same_seeds_is_bit_identical(self):
        n = 8
        results = []
        for _ in range(2):
            seeds = SeedTree(99)
            conciliator = SnapshotConciliator(n)
            schedule = make_schedule("random", n, seeds.child("schedule"))
            programs = [conciliator.program] * n
            result = run_programs(
                programs, schedule, seeds, inputs=list(range(n))
            )
            results.append((result.outputs, result.steps_by_pid))
        assert results[0] == results[1]
