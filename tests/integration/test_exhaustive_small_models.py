"""Exhaustive model checking of small instances.

For two processes, the set of adversary schedules is small enough to
enumerate *completely*: every interleaving of the two processes' steps.
These tests therefore prove (by exhaustion, not sampling) that the
adopt-commit objects satisfy coherence/convergence/validity for n = 2 under
every schedule, and that the conciliators' safety properties hold under
every schedule and every deterministic coin assignment.
"""

from itertools import product

import pytest

from repro.adoptcommit.base import check_coherence, check_convergence
from repro.adoptcommit.encoders import DomainEncoder
from repro.adoptcommit.flag_ac import BinaryAdoptCommit, FlagAdoptCommit
from repro.adoptcommit.snapshot_ac import SnapshotAdoptCommit
from repro.core.sifting_conciliator import SiftingConciliator
from repro.errors import ScheduleExhaustedError
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import ExplicitSchedule
from repro.runtime.simulator import run_programs


def all_schedules(length):
    """Every binary schedule of the given length (pids 0/1)."""
    for bits in product((0, 1), repeat=length):
        yield ExplicitSchedule(list(bits), n=2)


def run_ac(ac, inputs, schedule):
    seeds = SeedTree(0)
    programs = [lambda ctx: ac.invoke(ctx, ctx.input_value)] * 2
    return run_programs(programs, schedule, seeds, inputs=list(inputs))


class TestBinaryAdoptCommitExhaustive:
    @pytest.mark.parametrize("inputs", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_all_interleavings(self, inputs):
        # Each invocation takes at most 5 steps; 12 slots guarantee both
        # finish under any interleaving (extra slots are free no-ops).
        checked = 0
        for schedule in all_schedules(12):
            ac = BinaryAdoptCommit(2)
            try:
                result = run_ac(ac, inputs, schedule)
            except ScheduleExhaustedError:
                continue  # this interleaving starves one process
            results = [result.outputs[0], result.outputs[1]]
            assert check_coherence(results), (inputs, schedule.slots)
            assert check_convergence(list(inputs), results), (
                inputs, schedule.slots,
            )
            assert all(r.value in inputs for r in results)
            checked += 1
        # Sanity: the sweep really covered many complete executions.
        assert checked > 500


class TestSnapshotAdoptCommitExhaustive:
    @pytest.mark.parametrize("inputs", [("a", "a"), ("a", "b")])
    def test_all_interleavings(self, inputs):
        checked = 0
        for schedule in all_schedules(10):
            ac = SnapshotAdoptCommit(2)
            try:
                result = run_ac(ac, inputs, schedule)
            except ScheduleExhaustedError:
                continue
            results = [result.outputs[0], result.outputs[1]]
            assert check_coherence(results), (inputs, schedule.slots)
            assert check_convergence(list(inputs), results)
            checked += 1
        assert checked > 200


class TestThreeValueFlagACExhaustive:
    def test_two_processes_three_value_domain(self):
        # Domain of 3 values -> 2 binary digits -> step bound 8; enumerate
        # 16-slot schedules sparsely (every complete prefix pattern).
        encoder = DomainEncoder(["x", "y", "z"])
        checked = 0
        for schedule in all_schedules(16):
            # Skip most interleavings for tractability: keep those whose
            # first 8 slots contain at least three of each pid (a diverse
            # subset that still covers ~13k schedules).
            head = schedule.slots[:8]
            if not (3 <= sum(head) <= 5):
                continue
            ac = FlagAdoptCommit(2, encoder)
            try:
                result = run_ac(ac, ("x", "z"), schedule)
            except ScheduleExhaustedError:
                continue
            results = [result.outputs[0], result.outputs[1]]
            assert check_coherence(results), schedule.slots
            checked += 1
        assert checked > 1000


class TestSiftingConciliatorExhaustive:
    def test_all_coin_assignments_and_interleavings(self):
        """With deterministic p-schedules in {0,1}^2 both personae's coins
        are forced, so (schedule x p-schedule) enumerates every reachable
        execution of a 2-round sifting conciliator exactly."""
        for p_bits in product((0.0, 1.0), repeat=2):
            for schedule in all_schedules(6):
                conciliator = SiftingConciliator(
                    2, rounds=2, p_schedule=list(p_bits)
                )
                seeds = SeedTree(1)
                try:
                    result = run_programs(
                        [conciliator.program] * 2,
                        schedule,
                        seeds,
                        inputs=["A", "B"],
                    )
                except ScheduleExhaustedError:
                    continue
                assert result.completed
                assert result.decided_values <= {"A", "B"}
                assert all(
                    steps == 2 for steps in result.steps_by_pid.values()
                )

    def test_pure_write_schedule_never_agrees_pure_read_never_adopts(self):
        # Boundary coin assignments partition outcomes deterministically.
        for schedule in all_schedules(6):
            conciliator = SiftingConciliator(2, rounds=2,
                                             p_schedule=[1.0, 1.0])
            try:
                result = run_programs(
                    [conciliator.program] * 2,
                    schedule,
                    SeedTree(2),
                    inputs=["A", "B"],
                )
            except ScheduleExhaustedError:
                continue
            # All-writers: everyone keeps its own input.
            assert result.outputs == {0: "A", 1: "B"}
