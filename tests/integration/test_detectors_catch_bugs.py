"""Sensitivity tests: deliberately broken implementations must be caught.

A verification suite is only as good as its ability to reject wrong code.
Each test here sabotages an implementation with a classic bug — skipping
the double conflict pass in the adopt-commit, setting a max-register tree
switch before the subtree is ready, scanning without the double collect —
and asserts that the corresponding checker (exhaustive interleaving search,
Wing-Gong linearizability, trace semantics) actually detects the breakage.
"""

from itertools import product

import pytest

from repro.adoptcommit.base import ADOPT, COMMIT, AdoptCommitResult, check_coherence
from repro.adoptcommit.encoders import DomainEncoder
from repro.adoptcommit.flag_ac import FlagAdoptCommit
from repro.analysis.linearizability import (
    HistoryOp,
    MaxRegisterSpec,
    SnapshotSpec,
    count_and_run,
    is_linearizable,
)
from repro.errors import ProtocolViolationError, ScheduleExhaustedError
from repro.memory.bounded_max_register import BoundedMaxRegister
from repro.memory.emulated_snapshot import EmulatedSnapshot
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Read, Write
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import ExplicitSchedule, RandomSchedule
from repro.runtime.simulator import run_programs


class BrokenFlagAdoptCommit(FlagAdoptCommit):
    """Skips the confirming second conflict pass — the classic TOCTTOU bug.

    Two processes can both see a clean first pass, both write proposal,
    and both commit different values.
    """

    def invoke(self, ctx, value):
        digits = self.encoder.encode(value)
        for position, digit in enumerate(digits):
            yield Write(self._flags[position][digit], True)
        conflict = yield from self._conflict_pass(digits)
        if conflict:
            proposed = yield Read(self._proposal)
            if proposed is not None:
                return AdoptCommitResult(ADOPT, proposed)
            return AdoptCommitResult(ADOPT, value)
        yield Write(self._proposal, value)
        # BUG: no second pass — commit immediately.
        return AdoptCommitResult(COMMIT, value)


class TestExhaustiveSearchCatchesBrokenAC:
    def test_coherence_violation_found(self):
        violations = 0
        for bits in product((0, 1), repeat=10):
            schedule = ExplicitSchedule(list(bits), n=2)
            ac = BrokenFlagAdoptCommit(2, DomainEncoder([0, 1]))
            seeds = SeedTree(0)
            programs = [lambda ctx: ac.invoke(ctx, ctx.input_value)] * 2
            try:
                result = run_programs(
                    programs, schedule, seeds, inputs=[0, 1]
                )
            except ScheduleExhaustedError:
                continue
            outcomes = [result.outputs[0], result.outputs[1]]
            if not check_coherence(outcomes):
                violations += 1
        # The exhaustive sweep must expose the bug in many interleavings.
        assert violations > 0

    def test_intact_version_survives_the_same_sweep(self):
        for bits in product((0, 1), repeat=10):
            schedule = ExplicitSchedule(list(bits), n=2)
            ac = FlagAdoptCommit(2, DomainEncoder([0, 1]))
            seeds = SeedTree(0)
            programs = [lambda ctx: ac.invoke(ctx, ctx.input_value)] * 2
            try:
                result = run_programs(
                    programs, schedule, seeds, inputs=[0, 1]
                )
            except ScheduleExhaustedError:
                continue
            assert check_coherence([result.outputs[0], result.outputs[1]])


class BrokenBoundedMax(BoundedMaxRegister):
    """Sets each switch *before* writing the right subtree.

    A reader that sees the switch can then descend into a right subtree
    whose path is not complete yet and return a value that was never the
    maximum — a real, subtle linearizability bug.
    """

    def _write_node(self, node, value):
        if node.span == 1:
            return
        if value < node.right.low:
            switched = yield Read(node.switch)
            if switched:
                return
            yield from self._write_node(node.left, value)
        else:
            yield Write(node.switch, True)  # BUG: switch first
            yield from self._write_node(node.right, value)


class TestLinearizabilityCheckerCatchesBrokenMaxRegister:
    def _history(self, register_cls, seed):
        register = register_cls(16)
        values = [13, 9, 6, 11]

        def program(ctx):
            records = []
            _, steps = yield from count_and_run(
                register.write_program(ctx, values[ctx.pid])
            )
            records.append(("write", values[ctx.pid], None, steps))
            observed, steps = yield from count_and_run(
                register.read_program(ctx)
            )
            records.append(("read", None, observed, steps))
            return records

        seeds = SeedTree(seed)
        result = run_programs(
            [program] * 4,
            RandomSchedule(4, seeds.child("schedule").seed),
            seeds,
            record_trace=True,
        )
        history = []
        for pid, records in result.outputs.items():
            events = result.trace.for_pid(pid)
            offset = 0
            for kind, value, outcome, steps in records:
                history.append(HistoryOp(
                    pid=pid, kind=kind, value=value, result=outcome,
                    start=events[offset].step,
                    end=events[offset + steps - 1].step,
                ))
                offset += steps
        return history

    def test_broken_version_fails_linearizability_somewhere(self):
        failures = 0
        for seed in range(60):
            history = self._history(BrokenBoundedMax, seed)
            if not is_linearizable(history, MaxRegisterSpec(initial=0)):
                failures += 1
        assert failures > 0, "checker failed to expose the switch-first bug"

    def test_intact_version_always_linearizable_on_same_seeds(self):
        for seed in range(60):
            history = self._history(BoundedMaxRegister, seed)
            assert is_linearizable(history, MaxRegisterSpec(initial=0)), seed


class BrokenEmulatedSnapshot(EmulatedSnapshot):
    """Single-collect scan: returns the first collect without validation.

    Classic mistake; a scan can then return a vector that never existed at
    any instant.
    """

    def scan_program(self, ctx):
        cells = yield from self._collect()
        return self._values(cells)


class TestLinearizabilityCheckerCatchesBrokenSnapshot:
    def _history(self, snapshot_cls, seed):
        snapshot = snapshot_cls(3)

        def program(ctx):
            records = []
            for round_index in range(2):
                value = (ctx.pid, round_index)
                _, steps = yield from count_and_run(
                    snapshot.update_program(ctx, value)
                )
                records.append(("update", value, None, steps))
                view, steps = yield from count_and_run(
                    snapshot.scan_program(ctx)
                )
                records.append(("scan", None, view, steps))
            return records

        seeds = SeedTree(seed)
        result = run_programs(
            [program] * 3,
            RandomSchedule(3, seeds.child("schedule").seed),
            seeds,
            record_trace=True,
        )
        history = []
        for pid, records in result.outputs.items():
            events = result.trace.for_pid(pid)
            offset = 0
            for kind, value, outcome, steps in records:
                history.append(HistoryOp(
                    pid=pid, kind=kind, value=value, result=outcome,
                    start=events[offset].step,
                    end=events[offset + steps - 1].step,
                ))
                offset += steps
        return history

    def test_single_collect_scan_fails_somewhere(self):
        failures = 0
        for seed in range(80):
            history = self._history(BrokenEmulatedSnapshot, seed)
            if not is_linearizable(history, SnapshotSpec(3)):
                failures += 1
        assert failures > 0, "checker failed to expose the single-collect bug"

    def test_intact_version_always_linearizable_on_same_seeds(self):
        for seed in range(40):
            history = self._history(EmulatedSnapshot, seed)
            assert is_linearizable(history, SnapshotSpec(3)), seed


class TestTraceCheckerCatchesStaleScans:
    def test_fabricated_stale_scan_rejected(self):
        from repro.runtime.trace import TraceEvent, check_snapshot_semantics

        events = [
            TraceEvent(step=0, pid=0, kind="update", obj_name="A",
                       value="x", result=None),
            # A scan that misses the completed update: stale.
            TraceEvent(step=1, pid=1, kind="scan", obj_name="A",
                       value=None, result=(None, None)),
        ]
        with pytest.raises(ProtocolViolationError):
            check_snapshot_semantics(events, n=2)


class TestMonitorsCatchInjectedRegisterFaults:
    """Calibrate the inline monitors against known-bad executions.

    The out-of-model RegisterFault injector deliberately violates atomic
    register semantics (a lossy write, a stale read).  A monitor that fails
    to flag these injected faults would also miss the equivalent real bug in
    a register emulation, so each fault kind must be caught — and the same
    monitors must stay silent on the honest execution of the same program.
    """

    def _conflict_program(self, register):
        # Two processes race on one register; each decides what it reads
        # last.  Any dropped or stale value changes an observable output.
        def program(ctx):
            yield Write(register, ctx.pid)
            value = yield Read(register)
            return value

        return program

    def _run(self, register, fault_plans, monitors):
        from repro.runtime.scheduler import RoundRobinSchedule

        hooks = [plan.injector() for plan in fault_plans] + list(monitors)
        return run_programs(
            [self._conflict_program(register)] * 2,
            RoundRobinSchedule(2),
            SeedTree(0),
            hooks=hooks,
        )

    def test_lossy_write_caught_by_register_semantics_monitor(self):
        from repro.runtime.faults import FaultPlan, RegisterFault
        from repro.runtime.monitors import RegisterSemanticsMonitor

        register = AtomicRegister("decision-reg")
        plan = FaultPlan(
            register_faults=(
                RegisterFault(kind="lossy-write", obj_name="decision-reg",
                              op_index=1),
            ),
            allow_out_of_model=True,
        )
        monitor = RegisterSemanticsMonitor(strict=False)
        self._run(register, [plan], [monitor])
        assert not monitor.ok, "lossy write escaped the detector"
        assert "atomic register semantics" in monitor.violations[0].message

    def test_stale_read_caught_by_register_semantics_monitor(self):
        from repro.runtime.faults import FaultPlan, RegisterFault
        from repro.runtime.monitors import RegisterSemanticsMonitor

        register = AtomicRegister("decision-reg")
        plan = FaultPlan(
            register_faults=(
                RegisterFault(kind="stale-read", obj_name="decision-reg"),
            ),
            allow_out_of_model=True,
        )
        monitor = RegisterSemanticsMonitor(strict=False)
        self._run(register, [plan], [monitor])
        assert not monitor.ok, "stale read escaped the detector"

    def test_strict_monitor_halts_the_faulty_run(self):
        from repro.runtime.faults import FaultPlan, RegisterFault
        from repro.runtime.monitors import RegisterSemanticsMonitor

        register = AtomicRegister("decision-reg")
        plan = FaultPlan(
            register_faults=(
                RegisterFault(kind="stale-read", obj_name="decision-reg"),
            ),
            allow_out_of_model=True,
        )
        with pytest.raises(ProtocolViolationError):
            self._run(register, [plan], [RegisterSemanticsMonitor()])

    def test_honest_execution_not_flagged(self):
        from repro.runtime.monitors import RegisterSemanticsMonitor

        register = AtomicRegister("decision-reg")
        monitor = RegisterSemanticsMonitor()
        self._run(register, [], [monitor])
        assert monitor.ok

    def test_lossy_write_on_proposal_breaks_validity_detectably(self):
        """End-to-end calibration: dropping a conciliator's proposal write
        can leak a non-input default to a decision; the validity monitor
        (not just the register monitor) must see the consequence."""
        from repro.runtime.faults import FaultPlan, RegisterFault
        from repro.runtime.monitors import ValidityMonitor
        from repro.runtime.scheduler import RoundRobinSchedule

        register = AtomicRegister("proposal", initial="BOGUS")

        def propose_then_decide(ctx):
            yield Write(register, ctx.input_value)
            decided = yield Read(register)
            return decided

        plan = FaultPlan(
            register_faults=(
                RegisterFault(kind="lossy-write", obj_name="proposal",
                              count=2),
            ),
            allow_out_of_model=True,
        )
        monitor = ValidityMonitor(allowed_inputs=["a", "b"], strict=False)
        result = run_programs(
            [propose_then_decide] * 2,
            RoundRobinSchedule(2),
            SeedTree(0),
            inputs=["a", "b"],
            hooks=[plan.injector(), monitor],
        )
        assert set(result.outputs.values()) == {"BOGUS"}
        assert not monitor.ok, "validity monitor missed the leaked default"
