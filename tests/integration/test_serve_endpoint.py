"""Integration: the JSON-lines TCP endpoint behind ``repro serve``.

Binds a real server on an ephemeral port and speaks the wire protocol:
one request object per line in, one response (or error) object per line
out, connection survives malformed input.  Control verbs
(``{"cmd": "stats"}`` / ``{"cmd": "health"}``) share the stream and are
pinned here: they answer from the live :meth:`ConsensusService.snapshot`
and never perturb in-flight sessions.
"""

import asyncio
import json

from repro.service import (
    ServiceConfig,
    ServiceServer,
    SessionRequest,
    run_virtual,
)


def talk(lines, config=None):
    """Start a server, send ``lines``, return the parsed reply objects."""

    async def main():
        server = ServiceServer(config or ServiceConfig())
        await server.start("127.0.0.1", 0)
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            replies = []
            for line in lines:
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
                replies.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            return replies
        finally:
            await server.stop()

    return asyncio.run(main())


def request_line(session_id, **overrides):
    request = SessionRequest(
        session_id=session_id, algorithm="sifting", n=4,
        schedule_family="round-robin", deadline=5.0, seed=0,
    )
    data = request.to_json()
    data.update(overrides)
    return json.dumps(data)


class TestWireProtocol:
    def test_valid_request_round_trips_to_a_completed_session(self):
        reply = talk([request_line(7)])[0]
        assert reply["status"] == "completed"
        assert reply["session_id"] == 7
        assert reply["result"]["agreement"] in (True, False)
        assert reply["backend"] == "generator"

    def test_multiple_requests_share_one_connection(self):
        replies = talk([request_line(i) for i in range(3)])
        assert [r["session_id"] for r in replies] == [0, 1, 2]
        assert all(r["status"] == "completed" for r in replies)

    def test_malformed_json_gets_an_error_line_not_a_reset(self):
        replies = talk(["{not json", request_line(1)])
        assert "error" in replies[0]
        # The connection survived: the next request still completes.
        assert replies[1]["status"] == "completed"

    def test_invalid_request_object_is_reported(self):
        replies = talk([json.dumps({"version": 1, "session_id": -5})])
        assert "error" in replies[0]

    def test_foreign_version_is_reported(self):
        replies = talk([request_line(0, version=99)])
        assert "error" in replies[0]
        assert "version" in replies[0]["error"]

    def test_unknown_algorithm_is_the_clients_fault(self):
        replies = talk([request_line(0, algorithm="no-such")])
        assert "error" in replies[0]
        assert replies[0]["session_id"] == 0

    def test_oversized_line_gets_an_error_reply_not_a_traceback(self):
        """A request over the StreamReader's 64 KiB line limit raises
        inside readline; the handler must answer with an error object and
        close cleanly instead of dying with an unhandled traceback."""

        async def main():
            server = ServiceServer(ServiceConfig())
            await server.start("127.0.0.1", 0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"x" * (256 * 1024) + b"\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                # Framing was lost mid-line, so the server closes after
                # reporting the error.
                eof = await reader.read()
                writer.close()
                await writer.wait_closed()
                return reply, eof
            finally:
                await server.stop()

        reply, eof = asyncio.run(main())
        assert "error" in reply
        assert "too long" in reply["error"]
        assert eof == b""

    def test_port_property_requires_a_started_server(self):
        import pytest

        server = ServiceServer()
        with pytest.raises(RuntimeError, match="not started"):
            server.port


class TestControlVerbs:
    def test_stats_round_trips_the_live_snapshot(self):
        """``{"cmd": "stats"}`` over TCP is the snapshot() document —
        same keys, valid JSON, spans accounting included."""
        replies = talk([request_line(0), json.dumps({"cmd": "stats"})])
        assert replies[0]["status"] == "completed"
        stats = replies[1]
        for key in ("breakers", "breaker_timelines", "degraded_mode",
                    "occupancy", "sessions", "spans"):
            assert key in stats, f"stats reply missing {key}"
        assert stats["sessions"]["completed"] == 1
        assert stats["spans"]["recorded_total"] == 1
        assert stats["occupancy"]["total"] == 0  # nothing in flight now

    def test_health_summarizes_status_breakers_and_occupancy(self):
        reply = talk([json.dumps({"cmd": "health"})])[0]
        assert reply == {
            "cmd": "health",
            "status": "ok",
            "breakers": {"0": "closed", "1": "closed"},
            "occupancy": 0,
        }

    def test_unknown_verb_names_the_supported_set(self):
        reply = talk([json.dumps({"cmd": "reboot"})])[0]
        assert "error" in reply
        assert "health" in reply["error"] and "stats" in reply["error"]

    def test_malformed_cmd_is_reported_not_fatal(self):
        replies = talk([
            json.dumps({"cmd": 7}),
            json.dumps({"cmd": None}),
            request_line(1),
        ])
        assert "must be a string" in replies[0]["error"]
        assert "must be a string" in replies[1]["error"]
        # The connection survived both bad verbs.
        assert replies[2]["status"] == "completed"

    def test_verbs_and_sessions_interleave_on_one_connection(self):
        replies = talk([
            request_line(0),
            json.dumps({"cmd": "health"}),
            request_line(1),
            json.dumps({"cmd": "stats"}),
            request_line(2),
        ])
        assert [r["status"] for r in (replies[0], replies[2], replies[4])] \
            == ["completed"] * 3
        assert replies[1]["cmd"] == "health"
        assert replies[1]["status"] == "ok"
        assert replies[3]["sessions"]["completed"] == 2

    def test_stats_mid_burst_is_deterministic_under_virtual_time(self):
        """Ask for stats while an overloaded burst is in flight, on the
        virtual-time loop: the reply is a pure function of the seeds, and
        asking does not change any session's outcome."""

        def burst(with_stats):
            async def main():
                server = ServiceServer(ServiceConfig(queue_capacity=8))

                async def one(session_id):
                    request = SessionRequest(
                        session_id=session_id, algorithm="sifting", n=4,
                        schedule_family="round-robin", deadline=5.0, seed=0,
                    )
                    return await server.service.submit(request)

                async def probe():
                    # Land mid-burst: all sessions are submitted at t=0
                    # and queue behind 2 workers/shard for several
                    # virtual milliseconds.
                    await asyncio.sleep(0.001)
                    return [
                        await server._answer(b'{"cmd": "stats"}'),
                        await server._answer(b'{"cmd": "health"}'),
                    ]

                tasks = [one(i) for i in range(12)]
                if with_stats:
                    responses_and_stats = await asyncio.gather(
                        *tasks, probe()
                    )
                    return responses_and_stats[:-1], responses_and_stats[-1]
                return await asyncio.gather(*tasks), None

            return run_virtual(main())

        first_responses, first_stats = burst(with_stats=True)
        second_responses, second_stats = burst(with_stats=True)
        bare_responses, _ = burst(with_stats=False)

        # Deterministic: same seeds, byte-identical stats replies.
        assert first_stats == second_stats
        stats = json.loads(first_stats[0])
        assert stats["occupancy"]["total"] > 0  # genuinely mid-burst
        assert json.loads(first_stats[1])["cmd"] == "health"

        # Non-perturbing: the session stream is identical with and
        # without the probe.
        def outcomes(responses):
            return [(r.session_id, r.status, r.code, r.latency)
                    for r in responses]

        assert outcomes(first_responses) == outcomes(second_responses)
        assert outcomes(first_responses) == outcomes(bare_responses)
