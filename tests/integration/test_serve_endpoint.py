"""Integration: the JSON-lines TCP endpoint behind ``repro serve``.

Binds a real server on an ephemeral port and speaks the wire protocol:
one request object per line in, one response (or error) object per line
out, connection survives malformed input.
"""

import asyncio
import json

from repro.service import ServiceConfig, ServiceServer, SessionRequest


def talk(lines, config=None):
    """Start a server, send ``lines``, return the parsed reply objects."""

    async def main():
        server = ServiceServer(config or ServiceConfig())
        await server.start("127.0.0.1", 0)
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            replies = []
            for line in lines:
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
                replies.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            return replies
        finally:
            await server.stop()

    return asyncio.run(main())


def request_line(session_id, **overrides):
    request = SessionRequest(
        session_id=session_id, algorithm="sifting", n=4,
        schedule_family="round-robin", deadline=5.0, seed=0,
    )
    data = request.to_json()
    data.update(overrides)
    return json.dumps(data)


class TestWireProtocol:
    def test_valid_request_round_trips_to_a_completed_session(self):
        reply = talk([request_line(7)])[0]
        assert reply["status"] == "completed"
        assert reply["session_id"] == 7
        assert reply["result"]["agreement"] in (True, False)
        assert reply["backend"] == "generator"

    def test_multiple_requests_share_one_connection(self):
        replies = talk([request_line(i) for i in range(3)])
        assert [r["session_id"] for r in replies] == [0, 1, 2]
        assert all(r["status"] == "completed" for r in replies)

    def test_malformed_json_gets_an_error_line_not_a_reset(self):
        replies = talk(["{not json", request_line(1)])
        assert "error" in replies[0]
        # The connection survived: the next request still completes.
        assert replies[1]["status"] == "completed"

    def test_invalid_request_object_is_reported(self):
        replies = talk([json.dumps({"version": 1, "session_id": -5})])
        assert "error" in replies[0]

    def test_foreign_version_is_reported(self):
        replies = talk([request_line(0, version=99)])
        assert "error" in replies[0]
        assert "version" in replies[0]["error"]

    def test_unknown_algorithm_is_the_clients_fault(self):
        replies = talk([request_line(0, algorithm="no-such")])
        assert "error" in replies[0]
        assert replies[0]["session_id"] == 0

    def test_oversized_line_gets_an_error_reply_not_a_traceback(self):
        """A request over the StreamReader's 64 KiB line limit raises
        inside readline; the handler must answer with an error object and
        close cleanly instead of dying with an unhandled traceback."""

        async def main():
            server = ServiceServer(ServiceConfig())
            await server.start("127.0.0.1", 0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"x" * (256 * 1024) + b"\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                # Framing was lost mid-line, so the server closes after
                # reporting the error.
                eof = await reader.read()
                writer.close()
                await writer.wait_closed()
                return reply, eof
            finally:
                await server.stop()

        reply, eof = asyncio.run(main())
        assert "error" in reply
        assert "too long" in reply["error"]
        assert eof == b""

    def test_port_property_requires_a_started_server(self):
        import pytest

        server = ServiceServer()
        with pytest.raises(RuntimeError, match="not started"):
            server.port
