"""Tier-1 regression gate: replay every committed corpus case.

``tests/corpus/`` holds minimized reproducers for every bug class the chaos
fuzzer has caught (planted protocol bugs and representative out-of-model
degradations).  Each case is a self-contained, versioned JSON scenario; this
test replays them all deterministically and fails if any case stops firing
the oracles it was captured with — i.e. if a behaviour change silently
alters what the oracle suite can see.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_corpus, replay_case
from repro.fuzz.scenario import HARD_ORACLES

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

CASES = load_corpus(CORPUS_DIR)


def case_id(entry):
    path, case = entry
    return f"{path.stem}:{'+'.join(case.oracles)}"


def test_committed_corpus_is_not_empty():
    assert CASES, f"expected committed corpus cases under {CORPUS_DIR}"


@pytest.mark.parametrize("entry", CASES, ids=[case_id(e) for e in CASES])
def test_case_replays_to_its_recorded_oracles(entry):
    path, case = entry
    report = replay_case(case, wall_clock_seconds=120.0)
    assert report.reproduced, (
        f"{path.name} no longer reproduces: expected {list(case.oracles)}, "
        f"replay fired {list(report.outcome.oracle_names)} "
        f"(status {report.outcome.status})"
    )
    assert report.missing == (), (
        f"{path.name} only partially reproduces: missing {list(report.missing)}"
    )


@pytest.mark.parametrize("entry", CASES, ids=[case_id(e) for e in CASES])
def test_case_is_deterministic(entry):
    _, case = entry
    first = replay_case(case, wall_clock_seconds=120.0)
    second = replay_case(case, wall_clock_seconds=120.0)
    assert first.outcome.to_json() == second.outcome.to_json()


@pytest.mark.parametrize("entry", CASES, ids=[case_id(e) for e in CASES])
def test_out_of_model_cases_never_breach_hard_oracles(entry):
    """Out-of-model register damage may degrade agreement-flavoured
    oracles, but validity and termination must stay intact."""
    path, case = entry
    if case.scenario.faults.is_in_model:
        pytest.skip("in-model case: hard-oracle breach IS the reproducer")
    report = replay_case(case, wall_clock_seconds=120.0)
    assert report.outcome.status == "degraded", path.name
    breached = {v.oracle for v in report.outcome.violations} & HARD_ORACLES
    assert not breached, f"{path.name} breached hard oracles {breached}"


def test_corpus_files_are_canonical_bytes():
    """Committed files must be byte-identical to their canonical rendering,
    so git diffs stay meaningful and dedup hashing stays stable."""
    for path, case in CASES:
        assert path.read_bytes() == case.canonical_bytes(), path.name
