"""Trace-level checks: shared objects behave atomically during real runs.

Full protocol executions are traced and replayed through the sequential
semantics checkers; the snapshot view-nesting property (which Lemma 1's
proof relies on) is verified on the actual arrays Algorithm 1 used.
"""

from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import BlockSchedule, RandomSchedule
from repro.runtime.simulator import run_programs
from repro.runtime.trace import (
    check_max_register_semantics,
    check_register_semantics,
    check_snapshot_semantics,
    steps_by_object,
)


def traced_run(conciliator, n, seed, schedule=None):
    seeds = SeedTree(seed)
    if schedule is None:
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
    programs = [conciliator.program] * n
    return run_programs(
        programs, schedule, seeds, inputs=list(range(n)), record_trace=True
    )


class TestSnapshotConciliatorTraces:
    def test_every_round_array_is_a_correct_snapshot(self):
        n = 8
        conciliator = SnapshotConciliator(n)
        result = traced_run(conciliator, n, seed=1)
        for round_index in range(conciliator.rounds):
            events = result.trace.for_object(f"snapshot-conciliator.A[{round_index}]")
            assert events, round_index
            check_snapshot_semantics(events, n=n)

    def test_views_nest_in_every_round(self):
        n = 8
        conciliator = SnapshotConciliator(n)
        traced_run(conciliator, n, seed=2, schedule=None)
        for array in conciliator._arrays:
            assert array.views_nest()

    def test_max_register_traces_are_monotone(self):
        n = 8
        conciliator = SnapshotConciliator(n, use_max_registers=True)
        result = traced_run(conciliator, n, seed=3)
        for round_index in range(conciliator.rounds):
            events = result.trace.for_object(
                f"snapshot-conciliator.M[{round_index}]"
            )
            check_max_register_semantics(events)

    def test_exact_operation_mix(self):
        n = 6
        conciliator = SnapshotConciliator(n)
        result = traced_run(conciliator, n, seed=4)
        kinds = [event.kind for event in result.trace.events]
        assert kinds.count("update") == n * conciliator.rounds
        assert kinds.count("scan") == n * conciliator.rounds


class TestSiftingConciliatorTraces:
    def test_round_registers_behave_atomically(self):
        n = 16
        conciliator = SiftingConciliator(n)
        result = traced_run(conciliator, n, seed=5)
        for index in conciliator.registers.allocated():
            events = result.trace.for_object(f"sifting-conciliator.r[{index}]")
            check_register_semantics(events)

    def test_exactly_one_operation_per_register_per_process(self):
        n = 8
        conciliator = SiftingConciliator(n)
        result = traced_run(conciliator, n, seed=6)
        counts = steps_by_object(result.trace.events)
        assert sum(counts.values()) == n * conciliator.rounds

    def test_block_adversary_traces_also_pass(self):
        n = 8
        conciliator = SiftingConciliator(n)
        seeds = SeedTree(7)
        schedule = BlockSchedule(n, 4, seeds.child("schedule").seed)
        result = traced_run(conciliator, n, seed=7, schedule=schedule)
        for index in conciliator.registers.allocated():
            check_register_semantics(
                result.trace.for_object(f"sifting-conciliator.r[{index}]")
            )


class TestEmbeddedConciliatorTraces:
    def test_all_registers_atomic(self):
        n = 8
        conciliator = CILEmbeddedConciliator(n)
        result = traced_run(conciliator, n, seed=8)
        register_names = {
            event.obj_name
            for event in result.trace.events
            if event.kind in ("read", "write")
        }
        for name in register_names:
            # Conflict-detector flag registers start at False, not None.
            initial = False if ".flag[" in name else None
            check_register_semantics(
                result.trace.for_object(name), initial=initial
            )

    def test_proposal_write_happens_at_most_once_per_exit(self):
        n = 8
        conciliator = CILEmbeddedConciliator(n)
        result = traced_run(conciliator, n, seed=9)
        proposal_writes = [
            event
            for event in result.trace.events
            if event.obj_name == "cil-embedded.proposal" and event.kind == "write"
        ]
        # Each process writes proposal at most once (then leaves the loop).
        writers = [event.pid for event in proposal_writes]
        assert len(writers) == len(set(writers))
