"""End-to-end consensus: safety must hold for every adversary and workload.

Consensus (unlike a conciliator) must *never* violate agreement or validity,
whatever the schedule and inputs.  These tests sweep the full cross product
of protocol stacks, adversary families and input assignments.
"""

import pytest

from repro.core.consensus import (
    register_consensus,
    run_consensus,
    snapshot_consensus,
)
from repro.runtime.rng import SeedTree
from repro.workloads.inputs import standard_input_gallery
from repro.workloads.schedules import SCHEDULE_FAMILIES, make_schedule

N = 6
FAMILIES = [family for family in SCHEDULE_FAMILIES if family != "crash-half"]

STACKS = [
    ("snapshot", lambda n, domain: snapshot_consensus(n)),
    ("snapshot-maxreg",
     lambda n, domain: snapshot_consensus(n, use_max_registers=True)),
    ("register", lambda n, domain: register_consensus(n, value_domain=domain)),
    ("register-linear",
     lambda n, domain: register_consensus(
         n, value_domain=domain, linear_total_work=True)),
]


def domain_for(inputs):
    seen = []
    for value in inputs:
        if value not in seen:
            seen.append(value)
    return seen


@pytest.mark.parametrize("stack_name,make_stack", STACKS)
@pytest.mark.parametrize("family", FAMILIES)
def test_consensus_safety_across_adversaries(stack_name, make_stack, family):
    inputs = list(range(N))
    for trial in range(3):
        seeds = SeedTree(hash((stack_name, family, trial)) % (2**31))
        protocol = make_stack(N, inputs)
        schedule = make_schedule(family, N, seeds.child("schedule"))
        result = run_consensus(protocol, inputs, schedule, seeds)
        assert result.completed, (stack_name, family, trial)
        assert result.agreement, (stack_name, family, trial)
        assert result.validity_holds(dict(enumerate(inputs)))


@pytest.mark.parametrize("stack_name,make_stack", STACKS)
def test_consensus_safety_across_input_workloads(stack_name, make_stack):
    gallery = standard_input_gallery(N, seed=11)
    for workload, inputs in gallery.items():
        seeds = SeedTree(hash((stack_name, workload)) % (2**31))
        protocol = make_stack(N, domain_for(inputs))
        schedule = make_schedule("random", N, seeds.child("schedule"))
        result = run_consensus(protocol, inputs, schedule, seeds)
        assert result.agreement, (stack_name, workload)
        assert result.validity_holds(dict(enumerate(inputs))), (
            stack_name, workload,
        )


@pytest.mark.parametrize("stack_name,make_stack", STACKS)
def test_consensus_survives_crash_failures(stack_name, make_stack):
    """Wait-freedom: surviving processes decide even when half crash."""
    from repro.runtime.simulator import run_programs

    inputs = list(range(N))
    for trial in range(3):
        seeds = SeedTree(hash((stack_name, "crash", trial)) % (2**31))
        protocol = make_stack(N, inputs)
        schedule = make_schedule("crash-half", N, seeds.child("schedule"))
        programs = [protocol.program] * N
        result = run_programs(
            programs, schedule, seeds, inputs=inputs, allow_partial=True
        )
        survivors = set(result.outputs)
        # The non-crashed half must all have decided...
        assert set(range(N // 2, N)) <= survivors
        # ...on a single valid value.
        assert result.agreement
        assert result.validity_holds(dict(enumerate(inputs)))


def test_larger_scale_consensus():
    n = 32
    seeds = SeedTree(77)
    protocol = register_consensus(n, value_domain=range(8))
    schedule = make_schedule("random", n, seeds.child("schedule"))
    inputs = [pid % 8 for pid in range(n)]
    result = run_consensus(protocol, inputs, schedule, seeds)
    assert result.agreement
    assert result.validity_holds(dict(enumerate(inputs)))


def test_repeated_runs_reproducible():
    n = 8
    outcomes = []
    for _ in range(2):
        seeds = SeedTree(123)
        protocol = register_consensus(n, value_domain=range(n))
        schedule = make_schedule("random", n, seeds.child("schedule"))
        result = run_consensus(protocol, list(range(n)), schedule, seeds)
        outcomes.append((result.outputs, result.steps_by_pid))
    assert outcomes[0] == outcomes[1]
