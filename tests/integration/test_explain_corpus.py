"""Tier-1 gates for trace analytics: corpus explanations and theory
attribution.

Two contracts from the analytics layer are load-bearing enough to gate:

- every committed agreement-violation reproducer must explain — the
  replayed trace must yield a :class:`DisagreementReport` whose
  divergence round is internally consistent with the lineages; and
- on honest deterministic runs, step attribution must match
  ``repro.analysis.theory`` within the documented tolerances: exact
  equality for Algorithms 1-2, upper bounds for Algorithm 3.

A third asserts explanation files are byte-identical regardless of the
producing campaign's worker count, like every other artifact here.
"""

from pathlib import Path

import pytest

from repro.analysis.theory import predicted_attribution
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.conciliator import run_conciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.fuzz import FuzzConfig, load_corpus, run_fuzz_campaign
from repro.fuzz.explain import STACK_ALGORITHMS, explain_case
from repro.obs.analyze import attribute_steps
from repro.obs.tracing import TraceRecorder
from repro.runtime.rng import SeedTree
from repro.workloads.schedules import make_schedule

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

AGREEMENT_CASES = [
    (path, case) for path, case in load_corpus(CORPUS_DIR)
    if "agreement" in case.oracles
]


def case_id(entry):
    return entry[0].stem


class TestCorpusDisagreementReports:
    def test_corpus_carries_an_agreement_reproducer(self):
        assert AGREEMENT_CASES, (
            "expected at least one committed agreement-violation "
            f"reproducer under {CORPUS_DIR}"
        )

    @pytest.mark.parametrize(
        "entry", AGREEMENT_CASES, ids=[case_id(e) for e in AGREEMENT_CASES]
    )
    def test_agreement_case_explains_with_valid_divergence_round(self, entry):
        path, case = entry
        explanation = explain_case(case, wall_clock_seconds=120.0)
        assert explanation.status == "violation", path.name
        report = explanation.disagreement
        assert report is not None, (
            f"{path.name}: agreement violation produced no disagreement "
            "report"
        )
        assert report.diverged
        assert len(report.survivors) > 1
        d = report.divergence_round
        assert d is not None and 0 <= d < report.rounds_recorded

        # The divergence round is tight: from round d on, the processes
        # never again all hold one persona, and (when d > 0) they were
        # unanimous at some earlier round.
        def distinct_personas(round_number):
            held = {
                lineage.held_at(round_number).persona
                for lineage in report.lineages
                if lineage.held_at(round_number) is not None
            }
            return len(held)

        assert all(
            distinct_personas(r) > 1
            for r in range(d, report.rounds_recorded)
        ), f"{path.name}: a round >= {d} is unanimous"
        if d > 0:
            assert any(distinct_personas(r) == 1 for r in range(d)), \
                f"{path.name}: no unanimous round before {d}"

    @pytest.mark.parametrize(
        "entry", AGREEMENT_CASES, ids=[case_id(e) for e in AGREEMENT_CASES]
    )
    def test_explanation_is_deterministic(self, entry):
        _, case = entry
        first = explain_case(case, wall_clock_seconds=120.0)
        second = explain_case(case, wall_clock_seconds=120.0)
        assert first.canonical_bytes() == second.canonical_bytes()

    @pytest.mark.parametrize(
        "entry", AGREEMENT_CASES[:1], ids=[case_id(e) for e in
                                           AGREEMENT_CASES[:1]]
    )
    def test_explanation_carries_a_complete_trace_receipt(self, entry):
        """Explanations replay with an unsampled, uncapped recorder, so
        both drop counters must read zero — the receipt that the trace
        under analysis is the whole trace."""
        import json

        _, case = entry
        explanation = explain_case(case, wall_clock_seconds=120.0)
        counters = explanation.trace_counters
        assert counters is not None
        assert counters["ring_dropped"] == 0
        assert counters["pid_events_dropped"] == 0
        assert counters["retained"] == counters["recorded_total"] \
            == len(explanation.events)
        rendered = explanation.render()
        assert "ring_dropped=0" in rendered
        assert "pid_events_dropped=0" in rendered
        # And the counters survive the JSON roundtrip.
        roundtrip = type(explanation).from_json(
            json.loads(explanation.canonical_bytes())
        )
        assert roundtrip.trace_counters == counters


class TestAttributionMatchesTheory:
    """Deterministic sweep over the three paper algorithms (n=4, seed 7)."""

    N = 4
    SEED = 7

    def _trace(self, conciliator):
        seeds = SeedTree(self.SEED)
        schedule = make_schedule("random", self.N, seeds.child("schedule"))
        recorder = TraceRecorder(include_values=True)
        run_conciliator(
            conciliator, list(range(self.N)), schedule, seeds,
            hooks=[recorder],
        )
        recorder.annotate_conciliator(conciliator)
        return recorder.events

    def test_snapshot_is_exact(self):
        predicted = predicted_attribution("snapshot", self.N)
        report = attribute_steps(
            self._trace(SnapshotConciliator(self.N)), predicted
        )
        assert predicted["relation"] == "exact"
        assert report.within_tolerance
        assert report.round_delta == 0
        assert len(report.completed_pids) == self.N
        for pid in report.completed_pids:
            assert report.per_pid_attributed[pid] \
                == predicted["individual_steps"]

    def test_sifting_is_exact(self):
        predicted = predicted_attribution("sifting", self.N)
        report = attribute_steps(
            self._trace(SiftingConciliator(self.N)), predicted
        )
        assert predicted["relation"] == "exact"
        assert report.within_tolerance
        assert report.round_delta == 0
        for pid in report.completed_pids:
            assert report.per_pid_attributed[pid] \
                == predicted["individual_steps"]

    def test_cil_embedded_stays_under_its_bounds(self):
        predicted = predicted_attribution("cil-embedded", self.N)
        report = attribute_steps(
            self._trace(CILEmbeddedConciliator(self.N)), predicted
        )
        assert predicted["relation"] == "upper-bound"
        assert report.within_tolerance
        assert report.round_delta <= 0
        assert len(report.completed_pids) == self.N
        for pid in report.completed_pids:
            assert report.per_pid_total[pid] <= predicted["individual_steps"]


class TestWorkerCountInvariance:
    def test_explanations_are_byte_identical_across_worker_counts(
        self, tmp_path
    ):
        # The planted-agreement stack at master seed 2012 reproduces a
        # violation within 20 trials; the campaign's explanation files
        # must not depend on how the trials were scheduled.
        config = FuzzConfig(stacks=("planted-agreement",), max_n=4)
        outputs = {}
        for workers in (1, 2):
            out = tmp_path / f"w{workers}"
            run_fuzz_campaign(
                2012, config, trials=20, corpus_dir=out, explain_dir=out,
                workers=workers, shrink_deadline=20.0,
            )
            files = sorted(p.name for p in out.glob("*.explain.json"))
            assert files, f"workers={workers} produced no explanations"
            outputs[workers] = {
                name: (out / name).read_bytes() for name in files
            }
        assert outputs[1] == outputs[2]


class TestStackAlgorithmMap:
    def test_mapped_stacks_have_valid_predictions(self):
        from repro.fuzz.stacks import stack_names

        known = set(stack_names(include_planted=True))
        for stack, (algorithm, epsilon) in STACK_ALGORITHMS.items():
            assert stack in known, f"{stack} is not a registered stack"
            predicted = predicted_attribution(algorithm, 4, epsilon)
            assert predicted["rounds"] >= 1
            assert predicted["individual_steps"] >= 1
