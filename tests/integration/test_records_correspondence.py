"""Exact correspondence between Algorithm 1 and the record process.

Under the fully sequential schedule (each process runs both its round-1
steps before the next process starts), process j's scan sees personae
1..j, so the survivors of round 1 are exactly the personae whose priority
is a left-to-right maximum of the priority sequence in schedule order.
Footnote 3 of the paper points at this connection; here it is checked as
an identity against the simulator, and the measured survivor distribution
is compared with the exact Stirling-number distribution.
"""

import random
from fractions import Fraction

import pytest

from repro.analysis.records import count_records, record_mean, record_pmf
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import ExplicitSchedule
from repro.runtime.simulator import run_programs


def sequential_round_one(n, seed, rounds=1):
    """Run a 1-round Algorithm 1 under the fully sequential schedule.

    The priority range is forced huge so the duplicate event D (which the
    paper's analysis charges as failure) is negligible and the record
    correspondence is exact.
    """
    conciliator = SnapshotConciliator(n, rounds=rounds, priority_range=10**12)
    slots = [pid for pid in range(n) for _ in range(2 * rounds)]
    seeds = SeedTree(seed)
    result = run_programs(
        [conciliator.program] * n,
        ExplicitSchedule(slots, n=n),
        seeds,
        inputs=list(range(n)),
    )
    assert result.completed
    return conciliator, result


class TestExactCorrespondence:
    @pytest.mark.parametrize("n", [2, 5, 9, 16])
    def test_survivors_equal_records_of_priority_sequence(self, n):
        for seed in range(15):
            conciliator, _ = sequential_round_one(n, seed)
            # Keys of the initial personae, in schedule (= pid) order; the
            # (priority, pid) pair mirrors the protocol's origin tiebreak,
            # making the correspondence exact even under duplicates.
            keys = [
                (conciliator._initial[pid].priority(0), pid)
                for pid in range(n)
            ]
            expected = count_records(keys)
            assert conciliator.survivors_after_round(0) == expected, (n, seed)

    def test_survivor_mean_matches_harmonic(self):
        n, trials = 8, 600
        total = 0
        for seed in range(trials):
            conciliator, _ = sequential_round_one(n, seed)
            total += conciliator.survivors_after_round(0)
        measured_mean = total / trials
        exact = float(record_mean(n))
        assert measured_mean == pytest.approx(exact, rel=0.08)

    def test_survivor_distribution_matches_stirling(self):
        n, trials = 5, 1500
        counts = [0] * (n + 1)
        for seed in range(trials):
            conciliator, _ = sequential_round_one(n, seed)
            counts[conciliator.survivors_after_round(0)] += 1
        pmf = record_pmf(n)
        for k in range(1, n + 1):
            assert counts[k] / trials == pytest.approx(
                float(pmf[k]), abs=0.05
            ), k

    def test_last_process_always_survives_alone_or_not(self):
        # Under the sequential schedule the final decided set is exactly
        # the global maximum persona: the last process sees everything.
        n = 6
        for seed in range(10):
            conciliator, result = sequential_round_one(n, seed)
            priorities = [
                conciliator._initial[pid].priority(0) for pid in range(n)
            ]
            best = max(range(n), key=lambda pid: (priorities[pid], pid))
            assert result.outputs[n - 1] == best
