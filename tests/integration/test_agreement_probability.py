"""Statistical checks of the probabilistic-agreement guarantees.

Theorem 1 (snapshot conciliator) and Theorem 2 (sifting conciliator)
guarantee agreement with probability >= 1 - eps; Theorem 3 guarantees
>= 1/8.  We verify the *measured* agreement rate's 95% Wilson lower bound
clears each floor, which makes the tests robust to sampling noise while
still failing loudly on real regressions.
"""

import pytest

from repro.analysis.experiments import run_conciliator_trials
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator

TRIALS = 120


def lower_bound(stats):
    return stats.agreement_interval[0]


class TestTheorem1:
    @pytest.mark.parametrize("epsilon", [0.5, 0.25])
    def test_snapshot_agreement_floor(self, epsilon):
        n = 16
        stats = run_conciliator_trials(
            lambda: SnapshotConciliator(n, epsilon=epsilon),
            list(range(n)),
            trials=TRIALS,
            master_seed=101,
        )
        assert stats.validity_failures == 0
        assert lower_bound(stats) >= 1 - epsilon

    def test_smaller_epsilon_does_not_hurt(self):
        n = 16
        loose = run_conciliator_trials(
            lambda: SnapshotConciliator(n, epsilon=0.5),
            list(range(n)), trials=TRIALS, master_seed=102,
        )
        tight = run_conciliator_trials(
            lambda: SnapshotConciliator(n, epsilon=0.1),
            list(range(n)), trials=TRIALS, master_seed=102,
        )
        assert tight.agreement_rate >= loose.agreement_rate - 0.05

    def test_max_register_variant_same_floor(self):
        n = 16
        stats = run_conciliator_trials(
            lambda: SnapshotConciliator(n, use_max_registers=True),
            list(range(n)),
            trials=TRIALS,
            master_seed=103,
        )
        assert lower_bound(stats) >= 0.5


class TestTheorem2:
    @pytest.mark.parametrize("n", [8, 32, 64])
    def test_sifting_agreement_floor(self, n):
        stats = run_conciliator_trials(
            lambda: SiftingConciliator(n, epsilon=0.5),
            list(range(n)),
            trials=TRIALS,
            master_seed=200 + n,
        )
        assert stats.validity_failures == 0
        assert lower_bound(stats) >= 0.5

    def test_epsilon_quarter(self):
        n = 16
        stats = run_conciliator_trials(
            lambda: SiftingConciliator(n, epsilon=0.25),
            list(range(n)),
            trials=TRIALS,
            master_seed=205,
        )
        assert lower_bound(stats) >= 0.75


class TestTheorem3:
    def test_cil_embedded_agreement_floor(self):
        n = 16
        stats = run_conciliator_trials(
            lambda: CILEmbeddedConciliator(n),
            list(range(n)),
            trials=TRIALS,
            master_seed=301,
        )
        assert stats.validity_failures == 0
        # Guaranteed floor is 1/8; in practice it is far higher.
        assert lower_bound(stats) >= 1 / 8


class TestAdversaryRobustness:
    """The agreement floor holds for *every* oblivious adversary family."""

    @pytest.mark.parametrize(
        "family", ["round-robin", "reversed", "random", "blocks", "front-runner"]
    )
    def test_sifting_floor_per_family(self, family):
        n = 16
        stats = run_conciliator_trials(
            lambda: SiftingConciliator(n, epsilon=0.5),
            list(range(n)),
            schedule_family=family,
            trials=80,
            master_seed=400,
        )
        assert lower_bound(stats) >= 0.5, family

    @pytest.mark.parametrize(
        "family", ["round-robin", "reversed", "random", "blocks", "front-runner"]
    )
    def test_snapshot_floor_per_family(self, family):
        n = 16
        stats = run_conciliator_trials(
            lambda: SnapshotConciliator(n, epsilon=0.5),
            list(range(n)),
            schedule_family=family,
            trials=80,
            master_seed=401,
        )
        assert lower_bound(stats) >= 0.5, family
