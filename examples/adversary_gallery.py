#!/usr/bin/env python3
"""Adversary gallery: conciliator agreement rates per adversary family.

A conciliator's probabilistic-agreement guarantee must hold for *every*
oblivious adversary strategy.  This example pits all three of the paper's
conciliators (plus the naive straw man) against six adversary families and
prints the measured agreement rate per cell.

Two things to look for in the output:

- every paper conciliator clears its guaranteed floor in every column
  (1 - eps = 0.5 for Algorithms 1 and 2; 1/8 for Algorithm 3);
- the naive write-then-read conciliator collapses under the "blocks"
  adversary (solo runs let every process see only itself), demonstrating
  that adversary-independent agreement is a real property, not a default.

Run:  python examples/adversary_gallery.py
"""

from repro.analysis.experiments import run_conciliator_trials
from repro.analysis.tables import render_table
from repro.baselines.naive_conciliator import NaiveConciliator
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator

N = 16
TRIALS = 60
FAMILIES = ["round-robin", "reversed", "random", "blocks", "front-runner"]

CONCILIATORS = [
    ("Alg 1 (snapshot)", 0.5, lambda: SnapshotConciliator(N)),
    ("Alg 2 (sifting)", 0.5, lambda: SiftingConciliator(N)),
    ("Alg 3 (CIL+sifter)", 1 / 8, lambda: CILEmbeddedConciliator(N)),
    ("naive baseline", 0.0, lambda: NaiveConciliator(N)),
]


def main() -> None:
    rows = []
    for label, floor, factory in CONCILIATORS:
        row = [label, floor if floor else "none"]
        for family in FAMILIES:
            stats = run_conciliator_trials(
                factory,
                list(range(N)),
                schedule_family=family,
                trials=TRIALS,
                master_seed=hash((label, family)) % (2**31),
            )
            row.append(round(stats.agreement_rate, 2))
        rows.append(row)

    print(render_table(
        ["conciliator", "floor"] + FAMILIES,
        rows,
        title=f"agreement rate by adversary family (n={N}, {TRIALS} trials/cell)",
    ))
    print()
    print("Every paper conciliator holds its floor in every column; the")
    print("naive baseline shows what losing adversary-independence looks like.")


if __name__ == "__main__":
    main()
