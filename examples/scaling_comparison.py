#!/usr/bin/env python3
"""The paper's headline in one table: log n -> log log n -> log* n.

Prints worst-case individual step complexity for the three generations of
oblivious-adversary conciliators across five orders of magnitude of n:

- the prior state of the art (doubling-CIL, O(log n)),
- Algorithm 2 on plain registers (O(log log n)),
- Algorithm 1 on unit-cost snapshots (O(log* n)),

plus measured mean steps from live runs at the sizes that are cheap to
simulate.  Watch the growth columns: the baseline keeps climbing, sifting
barely moves, and the snapshot conciliator is essentially flat.

Run:  python examples/scaling_comparison.py
"""

from repro.analysis.experiments import run_conciliator_trials
from repro.analysis.tables import render_table
from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.core.rounds import log_star, sifting_rounds, snapshot_rounds
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator

EPS = 0.5
SIMULATED_SIZES = (16, 256)
FORMULA_SIZES = (16, 256, 4096, 65536, 2**20, 2**32)


def main() -> None:
    rows = []
    for n in FORMULA_SIZES:
        rows.append([
            n,
            DoublingCILConciliator(n).step_bound(),
            sifting_rounds(n, EPS),
            2 * snapshot_rounds(n, EPS),
            log_star(n),
        ])
    print(render_table(
        ["n", "doubling-CIL O(log n)", "sifting O(log log n)",
         "snapshot O(log* n)", "log* n"],
        rows,
        title="worst-case individual steps per conciliator (eps = 1/2)",
    ))

    print()
    rows = []
    for n in SIMULATED_SIZES:
        sift = run_conciliator_trials(
            lambda: SiftingConciliator(n), list(range(n)),
            trials=30, master_seed=6000 + n,
        )
        snap = run_conciliator_trials(
            lambda: SnapshotConciliator(n), list(range(n)),
            trials=30, master_seed=6100 + n,
        )
        base = run_conciliator_trials(
            lambda: DoublingCILConciliator(n), list(range(n)),
            trials=30, master_seed=6200 + n,
        )
        rows.append([
            n,
            round(base.individual_steps.mean, 1),
            int(sift.individual_steps.maximum),
            int(snap.individual_steps.maximum),
            round(sift.agreement_rate, 2),
            round(snap.agreement_rate, 2),
        ])
    print(render_table(
        ["n", "baseline mean steps", "sifting steps", "snapshot steps",
         "sift agree", "snap agree"],
        rows,
        title="measured (30 trials, random oblivious adversary)",
    ))


if __name__ == "__main__":
    main()
