#!/usr/bin/env python3
"""Reproduce every experiment (E1-E12) and emit the EXPERIMENTS.md tables.

This is the full-scale version of what ``pytest benchmarks/`` runs quickly:
each experiment regenerates one of the paper's quantitative claims and
reports measured-vs-paper columns plus a shape verdict.

Run:  python examples/reproduce_paper.py [--scale 1.0] [--markdown out.md]

At scale 1.0 this takes a few minutes; use --scale 0.25 for a fast pass, or
``--workers 0`` to shard trials over every CPU (tables stay bit-identical —
see EXPERIMENTS.md, "Parallel execution").
"""

import argparse
import sys
import time

from repro.analysis.paper import ALL_EXPERIMENTS
from repro.runtime.parallel import parallelism


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trial-count multiplier (default 1.0)")
    parser.add_argument("--markdown", type=str, default="",
                        help="also write the tables as a markdown fragment")
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids, e.g. E1,E5")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes per sweep (0 = all CPUs); "
                             "results are identical for any value")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="trials per dispatch unit (default: auto)")
    args = parser.parse_args()

    wanted = {token.strip().upper() for token in args.only.split(",") if token}
    tables = []
    all_ok = True
    with parallelism(workers=args.workers, chunk_size=args.chunk_size):
        for experiment in ALL_EXPERIMENTS:
            started = time.time()
            table = experiment(scale=args.scale)
            if wanted and table.experiment_id.upper() not in wanted:
                continue
            elapsed = time.time() - started
            tables.append(table)
            print(table.render())
            print(f"({elapsed:.1f}s)")
            print()
            all_ok = all_ok and table.shape_holds

    print(f"experiments run: {len(tables)}; all shapes hold: {all_ok}")

    if args.markdown:
        with open(args.markdown, "w") as handle:
            for table in tables:
                handle.write(f"### {table.experiment_id} — {table.claim}\n\n")
                handle.write("```\n")
                handle.write(table.render())
                handle.write("\n```\n\n")
        print(f"markdown fragment written to {args.markdown}")

    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
