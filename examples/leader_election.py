#!/usr/bin/env python3
"""Leader election via id-consensus (the paper's hardest input case).

Every process proposes its *own id*, so all n inputs are distinct — the
``X_0 = n - 1`` worst case for both conciliators.  Because ids form an
unbounded domain, the snapshot-model stack (Corollary 1: Algorithm 1 +
O(1) snapshot adopt-commit, O(log* n) expected steps) is the right tool:
it needs no a-priori bound on the number of possible values.

The example also shows wait-freedom under crash failures: we crash half the
cluster after a single step each and the survivors still elect a leader.

Run:  python examples/leader_election.py
"""

from repro import SeedTree, snapshot_consensus, run_consensus
from repro.runtime.scheduler import CrashSchedule, RandomSchedule
from repro.runtime.simulator import run_programs


def elect(n: int, seed: int) -> None:
    seeds = SeedTree(seed)
    protocol = snapshot_consensus(n)
    schedule = RandomSchedule(n, seeds.child("schedule").seed)
    inputs = [f"node-{pid:03d}" for pid in range(n)]
    result = run_consensus(protocol, inputs, schedule, seeds)
    assert result.agreement and result.completed
    leader = result.output_list()[0]
    print(f"n={n:4d}: leader {leader}  "
          f"(max {result.max_individual_steps} steps/process, "
          f"{max(protocol.phases_used.values())} phase(s))")


def elect_with_crashes(n: int, seed: int) -> None:
    seeds = SeedTree(seed)
    protocol = snapshot_consensus(n)
    # The adversary lets the first half of the cluster take one step each,
    # then silences them forever.
    crashes = {pid: 1 for pid in range(n // 2)}
    schedule = CrashSchedule(
        RandomSchedule(n, seeds.child("schedule").seed), crashes
    )
    inputs = [f"node-{pid:03d}" for pid in range(n)]
    programs = [protocol.program] * n
    result = run_programs(
        programs, schedule, seeds, inputs=inputs, allow_partial=True
    )
    survivors = sorted(result.outputs)
    assert set(range(n // 2, n)) <= set(survivors), "survivors all decide"
    assert result.agreement, "and they agree"
    print(f"n={n:4d}: {len(crashes)} nodes crashed; "
          f"{len(survivors)} decided on {result.output_list()[0]}")


def main() -> None:
    print("== leader election, everyone healthy ==")
    for n in (4, 16, 64, 256):
        elect(n, seed=500 + n)
    print()
    print("== leader election with half the cluster crashed ==")
    for n in (8, 32, 128):
        elect_with_crashes(n, seed=900 + n)


if __name__ == "__main__":
    main()
