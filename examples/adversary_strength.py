#!/usr/bin/env python3
"""Why obliviousness matters: scheduling power vs agreement probability.

Section 5 of the paper stresses that the new conciliators assume the
adversary cannot see what processes are about to do.  This example makes
that assumption load-bearing before your eyes, in three acts:

1. friendly **oblivious** adversaries (fixed schedules): the sifting
   conciliator clears its 1-eps floor in every family;
2. an **optimized but still oblivious** adversary: hill-climbing over fixed
   schedules to minimize agreement — it can bruise the rate but never break
   the floor, because Theorem 2 quantifies over every fixed schedule;
3. a **content-aware** adversary that peeks at pending operations and runs
   would-be readers first: the sift never happens and agreement collapses
   below the floor — while Algorithm 1, whose round pattern is identical
   for every process, gives the same adversary nothing to exploit.

Run:  python examples/adversary_strength.py
"""

from repro.analysis.experiments import run_conciliator_trials
from repro.analysis.plots import bar_chart
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.adaptive import (
    PendingKindAdversary,
    RandomAdaptiveAdversary,
    run_adaptive_programs,
)
from repro.runtime.rng import SeedTree
from repro.workloads.search import search_worst_schedule

N = 16
TRIALS = 50


def adaptive_rate(factory, make_adversary) -> float:
    agreed = 0
    for trial in range(TRIALS):
        conciliator = factory()
        result = run_adaptive_programs(
            [conciliator.program] * N,
            make_adversary(trial),
            SeedTree(trial),
            inputs=list(range(N)),
        )
        agreed += result.agreement
    return agreed / TRIALS


def main() -> None:
    print("== act 1: friendly oblivious adversaries ==")
    labels, rates = [], []
    for family in ("round-robin", "random", "blocks", "front-runner"):
        stats = run_conciliator_trials(
            lambda: SiftingConciliator(N), list(range(N)),
            schedule_family=family, trials=TRIALS, master_seed=1,
        )
        labels.append(family)
        rates.append(stats.agreement_rate)
    print(bar_chart(labels, rates, width=30))
    print()

    print("== act 2: an oblivious adversary that optimizes its schedule ==")
    result = search_worst_schedule(
        lambda: SiftingConciliator(N),
        list(range(N)),
        steps_per_process=SiftingConciliator(N).rounds,
        generations=12,
        trials_per_eval=8,
        master_seed=2,
    )
    print(f"after {result.evaluations} candidate schedules, worst found "
          f"agreement = {result.agreement_rate:.2f} "
          f"(floor 0.50 — bruised, not broken)")
    print()

    print("== act 3: one step beyond oblivious ==")
    sift_random = adaptive_rate(
        lambda: SiftingConciliator(N), lambda t: RandomAdaptiveAdversary(t)
    )
    sift_aware = adaptive_rate(
        lambda: SiftingConciliator(N),
        lambda t: PendingKindAdversary(["read"]),
    )
    snap_aware = adaptive_rate(
        lambda: SnapshotConciliator(N),
        lambda t: PendingKindAdversary(["scan"]),
    )
    print(bar_chart(
        ["sifting / random", "sifting / content-aware",
         "snapshot / content-aware"],
        [sift_random, sift_aware, snap_aware],
        width=30,
    ))
    print()
    print("The content-aware scheduler runs pending readers before writers,")
    print("so sifting rounds pass with empty registers: nobody ever adopts,")
    print(f"and agreement falls to {sift_aware:.2f} — below the 0.50 floor")
    print("that held against every oblivious schedule above.  Algorithm 1's")
    print("uniform update/scan pattern is immune by construction.")


if __name__ == "__main__":
    main()
