#!/usr/bin/env python3
"""Claiming a singleton job with test-and-set (the paper's sibling problem).

A cluster wakes up and exactly one node must claim a one-off job (schema
migration, cache rebuild, ...).  That is one-shot **test-and-set**, the
problem the paper's conclusions compare against: the sifting filter of
Alistarh-Aspnes [1] shares its skeleton with Algorithm 2, differing only in
that a reader who sees company *drops out* instead of adopting a persona.

The output shows the division of labour: almost every node pays only the
O(log log n) filter (a handful of steps) and leaves; the expected-O(1)
survivors pay for the backup that crowns the single winner.

Run:  python examples/work_claiming.py
"""

from repro import SeedTree
from repro.runtime.scheduler import RandomSchedule
from repro.runtime.simulator import run_programs
from repro.tas.sifting_tas import WINNER, SiftingTestAndSet


def claim_job(n: int, seed: int) -> None:
    seeds = SeedTree(seed)
    tas = SiftingTestAndSet(n)
    schedule = RandomSchedule(n, seeds.child("schedule").seed)
    result = run_programs([tas.program] * n, schedule, seeds)

    winners = [pid for pid, out in result.outputs.items() if out == WINNER]
    assert len(winners) == 1, "test-and-set must crown exactly one winner"
    winner = winners[0]
    loser_steps = [result.steps_by_pid[pid] for pid in result.outputs
                   if pid != winner]
    cheap_losers = sum(1 for steps in loser_steps
                       if steps <= tas.filter_step_bound())
    print(f"n={n:4d}: node {winner:3d} claimed the job "
          f"({result.steps_by_pid[winner]} steps); "
          f"{tas.filter_survivors} survived the filter; "
          f"{cheap_losers}/{len(loser_steps)} losers paid <= "
          f"{tas.filter_step_bound()} filter steps")


def main() -> None:
    print("== one node claims the job, the rest bail out early ==")
    for n in (8, 32, 128, 512):
        claim_job(n, seed=42 + n)
    print()
    print("The filter is the sifting skeleton of Algorithm 2 with 'adopt'")
    print("replaced by 'lose'; see repro/tas/sifting_tas.py.")


if __name__ == "__main__":
    main()
