#!/usr/bin/env python3
"""Quickstart: 16 processes agree on one of 4 proposed values.

This is the minimal end-to-end use of the library: build a consensus
protocol (Corollary 2's register-model stack — the sifting conciliator of
Algorithm 2 alternated with adopt-commit objects), pick an oblivious
adversary, and run.  The run is a pure function of the master seed, so the
output below is reproducible bit-for-bit.

Run:  python examples/quickstart.py
"""

from repro import (
    RandomSchedule,
    SeedTree,
    register_consensus,
    run_consensus,
)


def main() -> None:
    n = 16
    value_domain = ["alpha", "beta", "gamma", "delta"]
    inputs = [value_domain[pid % len(value_domain)] for pid in range(n)]

    seeds = SeedTree(2012)
    protocol = register_consensus(n, value_domain=value_domain)
    # The adversary fixes its schedule from its own seed branch — it never
    # sees the algorithm's coins (the oblivious-adversary model).
    schedule = RandomSchedule(n, seeds.child("schedule").seed)

    result = run_consensus(protocol, inputs, schedule, seeds)

    assert result.completed, "wait-free: every process must decide"
    assert result.agreement, "consensus: all decisions equal"
    assert result.validity_holds(dict(enumerate(inputs))), "validity"

    decided = result.output_list()[0]
    print(f"{n} processes proposed {sorted(set(inputs))}")
    print(f"all decided on: {decided!r}")
    print(f"total shared-memory steps: {result.total_steps}")
    print(f"worst per-process steps:   {result.max_individual_steps}")
    print(f"phases used:               {max(protocol.phases_used.values())}")
    print()
    print("Re-run with the same seed to get the identical execution;")
    print("change SeedTree(2012) to explore other runs.")


if __name__ == "__main__":
    main()
