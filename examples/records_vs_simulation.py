#!/usr/bin/env python3
"""Footnote 3, made exact: Algorithm 1's first round IS the record process.

Under a fully sequential schedule, process j's snapshot sees personae
1..j, so the survivors of round one are exactly the left-to-right maxima
("records", Renyi 1962) of the random priority sequence.  This demo runs
the real simulator side by side with the closed-form record distribution
(unsigned Stirling numbers of the first kind) and prints both.

Run:  python examples/records_vs_simulation.py
"""

from repro.analysis.records import record_mean, record_pmf
from repro.analysis.tables import render_table
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import ExplicitSchedule
from repro.runtime.simulator import run_programs


def simulate_survivors(n: int, trials: int):
    counts = [0] * (n + 1)
    for seed in range(trials):
        conciliator = SnapshotConciliator(n, rounds=1, priority_range=10**12)
        slots = [pid for pid in range(n) for _ in range(2)]
        seeds = SeedTree(seed)
        run_programs(
            [conciliator.program] * n,
            ExplicitSchedule(slots, n=n),
            seeds,
            inputs=list(range(n)),
        )
        counts[conciliator.survivors_after_round(0)] += 1
    return counts


def main() -> None:
    n, trials = 6, 3000
    counts = simulate_survivors(n, trials)
    pmf = record_pmf(n)

    rows = []
    for k in range(1, n + 1):
        rows.append([
            k,
            round(counts[k] / trials, 4),
            round(float(pmf[k]), 4),
            f"{pmf[k].numerator}/{pmf[k].denominator}",
        ])
    print(render_table(
        ["survivors k", "simulated P", "exact P", "Stirling c(n,k)/n!"],
        rows,
        title=(f"round-1 survivor distribution, n={n}, sequential schedule, "
               f"{trials} runs"),
    ))
    measured_mean = sum(k * counts[k] for k in range(n + 1)) / trials
    print()
    print(f"measured mean survivors: {measured_mean:.3f}")
    print(f"exact mean H_{n}:         {float(record_mean(n)):.3f}")
    print()
    print("This is why one round shrinks m personae to ~ln m on average:")
    print("Lemma 1's harmonic-series bound is the record process's mean.")


if __name__ == "__main__":
    main()
