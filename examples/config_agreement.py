#!/usr/bin/env python3
"""Replicated-configuration agreement with structured values.

A small cluster of replicas must converge on one configuration (here a
frozen dict rendered as sorted tuples — any hashable value works, since the
paper's model places no bound on register size).  We use the Corollary 3
stack: Algorithm 3 (CIL-embedded sifter) alternated with register-model
adopt-commit objects, so the whole cluster does O(n) expected total work —
the variant you'd want when most replicas propose concurrently.

The example sweeps contention levels: from "one proposer, everyone else
follows" (the common case in practice) to "every replica proposes its own
config" (the worst case).

Run:  python examples/config_agreement.py
"""

from repro import SeedTree, register_consensus, run_consensus
from repro.runtime.scheduler import RandomSchedule


def make_config(version: int) -> tuple:
    """A config as a hashable value (sorted key-value tuples)."""
    return (
        ("heartbeat_ms", 50 + 10 * version),
        ("quorum", 3),
        ("version", version),
    )


def agree_on_config(n: int, proposers: int, seed: int, repeats: int = 5) -> None:
    candidates = [make_config(version) for version in range(proposers)]
    # Non-proposers back the first candidate (a follower's default vote).
    inputs = [candidates[pid % proposers] if pid < proposers else candidates[0]
              for pid in range(n)]

    totals = []
    chosen = None
    for repeat in range(repeats):
        seeds = SeedTree(seed * 1000 + repeat)
        protocol = register_consensus(
            n, value_domain=candidates, linear_total_work=True
        )
        schedule = RandomSchedule(n, seeds.child("schedule").seed)
        result = run_consensus(protocol, inputs, schedule, seeds)

        assert result.agreement and result.completed
        assert result.validity_holds(dict(enumerate(inputs)))
        totals.append(result.total_steps)
        chosen = dict(result.output_list()[0])
    mean_total = sum(totals) / len(totals)
    print(f"n={n:3d} proposers={proposers:3d}: "
          f"last run chose version {chosen['version']} "
          f"(mean total steps {mean_total:.0f}, "
          f"mean total/n {mean_total / n:.1f})")


def main() -> None:
    print("== config agreement at increasing contention ==")
    n = 32
    for proposers in (1, 2, 8, 32):
        agree_on_config(n, proposers, seed=3000 + proposers)
    print()
    print("== and at increasing cluster size (8 proposers) ==")
    for n in (16, 64, 128):
        agree_on_config(n, 8, seed=4000 + n)
    print()
    print("total/n stays roughly flat as n grows: that is Corollary 3's")
    print("O(n) expected total work from the embedded CIL conciliator.")


if __name__ == "__main__":
    main()
