"""Interval-based linearizability checking (Wing & Gong style).

The primitive objects in :mod:`repro.memory` execute in one atomic step, so
their correctness reduces to sequential checks along the trace.  The
*derived* objects — :class:`~repro.memory.emulated_snapshot.EmulatedSnapshot`
and :class:`~repro.memory.bounded_max_register.BoundedMaxRegister` — take
many steps per operation, so concurrent operations genuinely overlap and
atomicity becomes **linearizability**: there must exist a total order of
the operations, consistent with real-time precedence, that is legal for the
sequential specification.

This module provides:

- :class:`HistoryOp` — an operation with its invocation/response interval;
- sequential specifications for max registers and snapshots;
- :func:`is_linearizable` — the classic Wing-Gong backtracking search with
  memoization on (remaining-operations, abstract-state);
- :func:`count_and_run` — a generator wrapper that measures how many
  charged steps a sub-program consumed, which tests use to reconstruct
  operation intervals from traces.

The search is exponential in the worst case; it is intended for the small
histories (a handful of processes, a few ops each) that the property tests
generate, where it is exact and fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Generator, Hashable, List, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "HistoryOp",
    "ILLEGAL",
    "SequentialSpec",
    "MaxRegisterSpec",
    "SnapshotSpec",
    "RegisterSpec",
    "is_linearizable",
    "count_and_run",
]


@dataclass(frozen=True)
class HistoryOp:
    """One completed operation with its real-time interval.

    ``start`` and ``end`` are global step indices of the operation's first
    and last charged steps (inclusive).  Operation A *precedes* B iff
    ``A.end < B.start``; otherwise they are concurrent and may linearize in
    either order.
    """

    pid: int
    kind: str
    value: Any
    result: Any
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError(
                f"operation interval [{self.start}, {self.end}] is inverted"
            )

    def precedes(self, other: "HistoryOp") -> bool:
        return self.end < other.start


#: Sentinel returned by specs for an illegal transition.  A dedicated
#: object (rather than None) because None is a legitimate state value
#: (e.g. an unwritten register).
ILLEGAL = object()


class SequentialSpec:
    """A sequential object specification for the linearizability search."""

    def initial_state(self) -> Hashable:
        raise NotImplementedError

    def apply(self, state: Hashable, op: HistoryOp) -> Any:
        """Return the post-state if ``op`` is legal in ``state``, else
        the :data:`ILLEGAL` sentinel."""
        raise NotImplementedError


class MaxRegisterSpec(SequentialSpec):
    """Max register: writes raise the max; reads return it.

    ``initial`` mirrors the implementation convention (0 for the bounded
    tree register, None for the unbounded one).
    """

    def __init__(self, initial: Any = 0):
        self._initial = initial

    def initial_state(self) -> Hashable:
        return self._initial

    def apply(self, state: Hashable, op: HistoryOp) -> Any:
        if op.kind == "write":
            if state is None or op.value > state:
                return op.value
            return state
        if op.kind == "read":
            return state if op.result == state else ILLEGAL
        raise ConfigurationError(f"max register spec: unknown op {op.kind!r}")


class RegisterSpec(SequentialSpec):
    """Plain read/write register."""

    def __init__(self, initial: Any = None):
        self._initial = initial

    def initial_state(self) -> Hashable:
        return self._initial

    def apply(self, state: Hashable, op: HistoryOp) -> Any:
        if op.kind == "write":
            return op.value
        if op.kind == "read":
            return state if op.result == state else ILLEGAL
        raise ConfigurationError(f"register spec: unknown op {op.kind!r}")


class SnapshotSpec(SequentialSpec):
    """n-component single-writer snapshot: updates set, scans read all."""

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError(f"snapshot spec needs n >= 1, got {n}")
        self.n = n

    def initial_state(self) -> Hashable:
        return (None,) * self.n

    def apply(self, state: Hashable, op: HistoryOp) -> Any:
        components = list(state)
        if op.kind == "update":
            components[op.pid] = op.value
            return tuple(components)
        if op.kind == "scan":
            return state if tuple(op.result) == state else ILLEGAL
        raise ConfigurationError(f"snapshot spec: unknown op {op.kind!r}")


def is_linearizable(history: List[HistoryOp], spec: SequentialSpec) -> bool:
    """Decide whether ``history`` linearizes under ``spec``.

    Implements the Wing-Gong search: repeatedly pick a *minimal* operation
    (one not preceded by any other remaining operation), apply it to the
    abstract state, and recurse; memoize failed (remaining, state) pairs.
    All operations in the history must be complete (this library's runs
    either finish or are cut at a known point; incomplete ops should be
    dropped by the caller, which only weakens the check).
    """
    operations = tuple(history)
    failed: set = set()

    def search(remaining: FrozenSet[int], state: Hashable) -> bool:
        if not remaining:
            return True
        key = (remaining, state)
        if key in failed:
            return False
        for index in remaining:
            candidate = operations[index]
            blocked = any(
                operations[other].precedes(candidate)
                for other in remaining
                if other != index
            )
            if blocked:
                continue
            next_state = spec.apply(state, candidate)
            if next_state is ILLEGAL:
                continue
            if search(remaining - {index}, next_state):
                return True
        failed.add(key)
        return False

    return search(frozenset(range(len(operations))), spec.initial_state())


def count_and_run(
    subprogram: Generator,
) -> Generator[Any, Any, Tuple[Any, int]]:
    """Run a sub-program, returning ``(result, charged_steps)``.

    Used by tests to reconstruct operation intervals: wrap each logical
    operation of a derived object, accumulate per-process step offsets, and
    map them to global step indices through the recorded trace.
    """
    steps = 0
    try:
        request = next(subprogram)
    except StopIteration as stop:
        return stop.value, 0
    while True:
        response = yield request
        steps += 1
        try:
            request = subprogram.send(response)
        except StopIteration as stop:
            return stop.value, steps
