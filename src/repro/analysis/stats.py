"""Small statistics helpers for experiment reporting.

Only what the harness needs: sample means/deviations and Wilson score
intervals for agreement probabilities.  Wilson intervals are used (rather
than normal approximations) because agreement rates sit near 1.0, where the
normal interval is badly behaved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "fisher_exact_two_sided",
    "mean",
    "sample_std",
    "wilson_interval",
    "SampleSummary",
    "summarize",
]


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not samples:
        raise ConfigurationError("mean of empty sample")
    return sum(samples) / len(samples)


def sample_std(samples: Sequence[float]) -> float:
    """Bessel-corrected sample standard deviation (0.0 for size < 2)."""
    if not samples:
        raise ConfigurationError("std of empty sample")
    if len(samples) < 2:
        return 0.0
    center = mean(samples)
    variance = sum((value - center) ** 2 for value in samples) / (len(samples) - 1)
    return math.sqrt(variance)


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ConfigurationError(f"wilson interval needs trials > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes {successes} outside [0, {trials}]"
        )
    proportion = successes / trials
    denominator = 1.0 + z * z / trials
    center = (proportion + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(
            proportion * (1 - proportion) / trials
            + z * z / (4 * trials * trials)
        )
        / denominator
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def _log_binomial(n: int, k: int) -> float:
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def fisher_exact_two_sided(a: int, b: int, c: int, d: int) -> float:
    """Two-sided Fisher exact test p-value for a 2x2 contingency table.

    The table is ``[[a, b], [c, d]]`` — e.g. (agreements, disagreements)
    for two backends.  Under the null hypothesis that both rows draw from
    the same Bernoulli, ``a`` follows the hypergeometric distribution with
    the margins fixed; the two-sided p-value sums the probabilities of
    every table at most as probable as the observed one (the standard
    "sum of small p" definition, matching ``scipy.stats.fisher_exact``).

    Pure stdlib (``math.lgamma``), so the statistical backend-equivalence
    tests stay inside the zero-dependency core.  Exact for the table sizes
    the tests use; a tiny relative tolerance absorbs log-space rounding
    when classifying "as probable" tables.
    """
    for name, value in (("a", a), ("b", b), ("c", c), ("d", d)):
        if value < 0:
            raise ConfigurationError(
                f"contingency counts must be >= 0, got {name}={value}"
            )
    row1, row2 = a + b, c + d
    col1 = a + c
    total = row1 + row2
    if row1 == 0 or row2 == 0 or col1 == 0 or col1 == total:
        return 1.0  # degenerate margins: only one table is possible
    denominator = _log_binomial(total, col1)

    def log_prob(k: int) -> float:
        return (
            _log_binomial(row1, k)
            + _log_binomial(row2, col1 - k)
            - denominator
        )

    observed = log_prob(a)
    lowest = max(0, col1 - row2)
    highest = min(col1, row1)
    cutoff = observed + 1e-9  # absorb lgamma rounding on equal tables
    p_value = 0.0
    for k in range(lowest, highest + 1):
        value = log_prob(k)
        if value <= cutoff:
            p_value += math.exp(value)
    return min(1.0, p_value)


@dataclass(frozen=True)
class SampleSummary:
    """Five-number-ish summary of a numeric sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def merge(self, other: "SampleSummary") -> "SampleSummary":
        """Combine two summaries as if their samples had been pooled.

        Uses the parallel-variance combination (Chan et al.), so disjoint
        sweeps aggregate without re-walking raw samples.  ``count``,
        ``minimum`` and ``maximum`` combine exactly; ``mean`` and ``std``
        are mathematically associative but — like any floating-point
        reduction — may differ from a single-pass computation in the last
        few ulps.  Paths that must be bit-identical to a serial run (the
        sharded trial engine) therefore reduce re-ordered raw outcomes
        instead; ``merge`` is for pooling sweeps whose samples are gone.
        """
        if self.count < 1 or other.count < 1:
            raise ConfigurationError("cannot merge an empty SampleSummary")
        for side in (self, other):
            values = (side.mean, side.std, side.minimum, side.maximum)
            if not all(math.isfinite(value) for value in values):
                raise ConfigurationError(
                    f"cannot merge a SampleSummary with non-finite moments: "
                    f"{side}"
                )
        count = self.count + other.count
        delta = other.mean - self.mean
        mean_value = self.mean + delta * other.count / count
        m2 = (
            self.std * self.std * (self.count - 1)
            + other.std * other.std * (other.count - 1)
            + delta * delta * self.count * other.count / count
        )
        std_value = math.sqrt(max(0.0, m2) / (count - 1)) if count > 1 else 0.0
        return SampleSummary(
            count=count,
            mean=mean_value,
            std=std_value,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def summarize(samples: Sequence[float]) -> SampleSummary:
    """Summarize a non-empty numeric sample."""
    if not samples:
        raise ConfigurationError("summarize of empty sample")
    return SampleSummary(
        count=len(samples),
        mean=mean(samples),
        std=sample_std(samples),
        minimum=min(samples),
        maximum=max(samples),
    )
