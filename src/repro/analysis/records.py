"""Exact mathematics of the record process behind Lemma 1.

Footnote 3 of the paper notes that one round of Algorithm 1 "is very
similar to counting left-to-right maxima or outstanding values of a random
permutation" (Renyi's records).  Under the fully *sequential* schedule this
similarity is an identity: process j's scan sees exactly personae
1..j, so persona j survives iff its priority is a prefix maximum — the
number of survivors equals the number of **records** of the priority
sequence.  (Tests exploit this to check the simulator against closed-form
mathematics exactly, not just against upper bounds.)

The record count R_m of a uniform random permutation of m elements has

    P(R_m = k) = c(m, k) / m!

where ``c(m, k)`` are the unsigned Stirling numbers of the first kind,
with mean ``H_m`` (the harmonic number — the quantity Lemma 1's proof
bounds by linearity of expectation) and variance ``H_m - H_m^(2)``.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import List, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "stirling_first_unsigned",
    "record_pmf",
    "record_mean",
    "record_variance",
    "count_records",
]


@lru_cache(maxsize=None)
def _stirling_row(m: int) -> tuple:
    """Row m of the unsigned Stirling-first-kind triangle, c(m, 0..m)."""
    if m == 0:
        return (1,)
    previous = _stirling_row(m - 1)
    row = [0] * (m + 1)
    for k in range(m + 1):
        from_lower = previous[k - 1] if 1 <= k <= m else 0
        same = previous[k] * (m - 1) if k <= m - 1 else 0
        row[k] = from_lower + same
    return tuple(row)


def stirling_first_unsigned(m: int, k: int) -> int:
    """Unsigned Stirling number of the first kind ``c(m, k)``.

    Counts permutations of m elements with exactly k cycles — equivalently
    (by Foata's correspondence) with exactly k records.
    """
    if m < 0 or k < 0:
        raise ConfigurationError("Stirling numbers need m, k >= 0")
    if k > m:
        return 0
    return _stirling_row(m)[k]


def record_pmf(m: int) -> List[Fraction]:
    """Exact distribution of the record count: entry k = P(R_m = k).

    Index 0 is P(R_m = 0), which is zero for m >= 1 (the first element is
    always a record).
    """
    if m < 0:
        raise ConfigurationError(f"m must be >= 0, got {m}")
    row = _stirling_row(m)
    factorial = 1
    for value in range(2, m + 1):
        factorial *= value
    return [Fraction(row[k], factorial) for k in range(m + 1)]


def record_mean(m: int) -> Fraction:
    """``E[R_m] = H_m`` exactly (as a Fraction)."""
    if m < 0:
        raise ConfigurationError(f"m must be >= 0, got {m}")
    return sum((Fraction(1, j) for j in range(1, m + 1)), Fraction(0))


def record_variance(m: int) -> Fraction:
    """``Var[R_m] = H_m - H_m^(2)`` exactly."""
    if m < 0:
        raise ConfigurationError(f"m must be >= 0, got {m}")
    h1 = record_mean(m)
    h2 = sum((Fraction(1, j * j) for j in range(1, m + 1)), Fraction(0))
    return h1 - h2


def count_records(sequence: Sequence[float]) -> int:
    """Number of left-to-right maxima (records) of a sequence."""
    count = 0
    best = None
    for value in sequence:
        if best is None or value > best:
            best = value
            count += 1
    return count
