"""Register-width accounting (footnote 2 and the Section 3 remark).

The paper makes two space observations that never affect step complexity
but matter for realisability:

- **Footnote 2** (Algorithm 1): storing whole personae makes snapshot
  components as wide as the input domain; replacing each input value with
  the id of the process holding it shrinks a component to
  ``O(log n log* n)`` bits (the id plus R priorities), at the cost of one
  level of indirection.
- **Section 3** (Algorithm 2): including the originating id in each persona
  costs ``O(log n + log m)`` bits per register; since the id is only used
  by the analysis, dropping it leaves the chooseWrite bits and the value:
  ``O(log log n + log m)`` bits.

This module computes those widths exactly for given parameters, and can
also measure the *actual* encoded size of a persona produced by the
library, so experiment E16 can put measured next to predicted.
"""

from __future__ import annotations

import math

from repro.core.persona import Persona
from repro.core.rounds import (
    sifting_rounds,
    snapshot_priority_range,
    snapshot_rounds,
)
from repro.errors import ConfigurationError

__all__ = [
    "bits_for",
    "snapshot_component_bits",
    "sifting_register_bits",
    "measured_persona_bits",
]


def bits_for(count: int) -> int:
    """Bits needed to address ``count`` distinct values (>= 1)."""
    if count < 1:
        raise ConfigurationError(f"bits_for needs count >= 1, got {count}")
    return max(1, math.ceil(math.log2(count))) if count > 1 else 1


def snapshot_component_bits(
    n: int, epsilon: float, value_bits: int, *, indirection: bool = False
) -> int:
    """Width in bits of one Algorithm 1 snapshot component.

    Plain: the input value plus R priorities.  With footnote 2's
    indirection the value field is replaced by an origin id (``log n``
    bits); the value itself lives once in a per-process announce register.
    """
    if value_bits < 0:
        raise ConfigurationError("value_bits must be >= 0")
    rounds = snapshot_rounds(n, epsilon)
    priority_bits = rounds * bits_for(
        snapshot_priority_range(n, epsilon, rounds)
    )
    id_bits = bits_for(n)
    if indirection:
        return id_bits + priority_bits
    return value_bits + id_bits + priority_bits


def sifting_register_bits(
    n: int, epsilon: float, value_bits: int, *, include_origin: bool = True
) -> int:
    """Width in bits of one Algorithm 2 round register.

    A persona is the value, one chooseWrite bit per round, the combine
    coin, and (optionally — Section 3 notes it is only needed by the
    analysis) the origin id.
    """
    if value_bits < 0:
        raise ConfigurationError("value_bits must be >= 0")
    rounds = sifting_rounds(n, epsilon)
    width = value_bits + rounds + 1  # value + chooseWrite bits + coin
    if include_origin:
        width += bits_for(n)
    return width


def measured_persona_bits(persona: Persona, value_bits: int, n: int) -> int:
    """Exact encoded size of a concrete persona under the natural encoding.

    Priorities are encoded with ``bits_for(max_priority_range)`` each — we
    use the actual values' magnitude bound from the persona itself —
    chooseWrite entries as single bits, the coin as one bit, and the origin
    as ``bits_for(n)``.
    """
    priority_bits = sum(
        max(1, value.bit_length()) for value in persona.priorities
    )
    return (
        value_bits
        + bits_for(n)
        + priority_bits
        + len(persona.write_bits)
        + 1
    )
