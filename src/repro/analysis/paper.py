"""The paper's experiments, E1-E12, as reusable table builders.

Each function reproduces one claim from the paper (see DESIGN.md's
experiment index) and returns an :class:`ExperimentTable` pairing the
measured series with the paper's predicted values.  The benchmark modules
under ``benchmarks/`` call these with quick parameters; the
``examples/reproduce_paper.py`` script calls them with fuller parameters
and regenerates the tables recorded in EXPERIMENTS.md.

The ``scale`` parameter multiplies trial counts (0.25 for smoke runs, 1.0
for the recorded tables).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence

from repro.adoptcommit.collect_ac import CollectAdoptCommit
from repro.adoptcommit.encoders import IntEncoder
from repro.adoptcommit.flag_ac import FlagAdoptCommit
from repro.adoptcommit.snapshot_ac import SnapshotAdoptCommit
from repro.analysis.experiments import (
    decay_series,
    run_conciliator_trials,
    run_consensus_trials,
)
from repro.analysis.tables import render_table
from repro.analysis.theory import (
    cil_total_steps_bound,
    doubling_cil_step_bound,
    sifting_decay_bound,
    sifting_step_count,
    snapshot_decay_bound,
    snapshot_step_count,
)
from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.core.cil_embedded import CILEmbeddedConciliator, INNER_EPSILON
from repro.core.consensus import register_consensus, snapshot_consensus
from repro.core.probabilities import paper_sift_p, sift_p_schedule
from repro.core.rounds import log_star, sifting_rounds, snapshot_rounds
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.runtime.rng import SeedTree
from repro.workloads.schedules import make_schedule

__all__ = ["ExperimentTable", "ALL_EXPERIMENTS"] + [f"e{i}" for i in range(1, 21)]


@dataclass
class ExperimentTable:
    """One reproduced experiment: id, claim, table, and shape verdict."""

    experiment_id: str
    claim: str
    headers: List[str]
    rows: List[List[Any]]
    notes: str = ""
    shape_holds: bool = True

    def render(self) -> str:
        title = f"[{self.experiment_id}] {self.claim}"
        body = render_table(self.headers, self.rows, title=title)
        parts = [body]
        if self.notes:
            parts.append(f"note: {self.notes}")
        parts.append(f"shape holds: {self.shape_holds}")
        return "\n".join(parts)


def _trials(base: int, scale: float) -> int:
    return max(3, int(round(base * scale)))


# ---------------------------------------------------------------------------
# E1 / E3: survivor decay curves
# ---------------------------------------------------------------------------

def e1_snapshot_decay(scale: float = 1.0, n: int = 64) -> ExperimentTable:
    """Lemma 1: mean excess personae per round vs the f-iteration bound."""
    trials = _trials(60, scale)
    series = decay_series(
        lambda: SnapshotConciliator(n),
        list(range(n)),
        trials=trials,
        master_seed=101,
    )
    bounds = snapshot_decay_bound(n, len(series))
    rows = []
    ok = True
    for index, survivors in enumerate(series):
        measured = survivors - 1.0
        bound = bounds[index]
        within = measured <= bound * 1.35 + 0.25
        ok = ok and within
        rows.append([index + 1, round(measured, 3), round(bound, 3), within])
    return ExperimentTable(
        "E1",
        f"Lemma 1 decay, n={n}: E[X_i] <= f^(i)(n-1), f(x)=min(ln(x+1), x/2)",
        ["round", "measured E[X_i]", "paper bound", "within"],
        rows,
        notes=f"{trials} trials, random oblivious schedule",
        shape_holds=ok,
    )


def e3_sifting_decay(scale: float = 1.0, n: int = 256) -> ExperimentTable:
    """Lemmas 3/4: mean excess personae per round vs x_i then (3/4)-decay."""
    trials = _trials(60, scale)
    series = decay_series(
        lambda: SiftingConciliator(n),
        list(range(n)),
        trials=trials,
        master_seed=103,
    )
    bounds = sifting_decay_bound(n, len(series))
    rows = []
    ok = True
    for index, survivors in enumerate(series):
        measured = survivors - 1.0
        bound = bounds[index]
        within = measured <= bound * 1.35 + 0.3
        ok = ok and within
        rows.append([index + 1, round(measured, 3), round(bound, 3), within])
    return ExperimentTable(
        "E3",
        f"Lemmas 3-4 decay, n={n}: E[X_i] <= x_i = 2^(2-2^(1-i))(n-1)^(2^-i), "
        "then *(3/4)/round",
        ["round", "measured E[X_i]", "paper bound", "within"],
        rows,
        notes=f"{trials} trials; switch to p=1/2 after ceil(log log n) rounds",
        shape_holds=ok,
    )


# ---------------------------------------------------------------------------
# E2 / E4: conciliator guarantees over the (n, eps) grid
# ---------------------------------------------------------------------------

def e2_snapshot_conciliator(scale: float = 1.0) -> ExperimentTable:
    """Theorem 1: agreement >= 1-eps at exactly 2R steps per process."""
    trials = _trials(80, scale)
    rows = []
    ok = True
    for n in (4, 16, 64, 256):
        for epsilon in (0.5, 0.25):
            stats = run_conciliator_trials(
                lambda: SnapshotConciliator(n, epsilon=epsilon),
                list(range(n)),
                trials=trials,
                master_seed=2000 + n,
            )
            floor = 1 - epsilon
            steps = snapshot_step_count(n, epsilon)
            within = (
                stats.agreement_interval[1] >= floor
                and stats.individual_steps.maximum == steps
                and stats.validity_failures == 0
            )
            ok = ok and within
            rows.append([
                n, epsilon, round(stats.agreement_rate, 3), floor,
                int(stats.individual_steps.maximum), steps, within,
            ])
    return ExperimentTable(
        "E2",
        "Theorem 1: snapshot conciliator, agreement >= 1-eps in "
        "2(log* n + log(1/eps) + 1) steps",
        ["n", "eps", "agreement", "paper floor", "steps", "paper steps",
         "within"],
        rows,
        notes=f"{trials} trials/cell, id-consensus inputs",
        shape_holds=ok,
    )


def e4_sifting_conciliator(scale: float = 1.0) -> ExperimentTable:
    """Theorem 2: agreement >= 1-eps at exactly R steps per process."""
    trials = _trials(80, scale)
    rows = []
    ok = True
    for n in (4, 16, 64, 256, 1024):
        for epsilon in (0.5, 0.25):
            stats = run_conciliator_trials(
                lambda: SiftingConciliator(n, epsilon=epsilon),
                list(range(n)),
                trials=trials,
                master_seed=4000 + n,
            )
            floor = 1 - epsilon
            steps = sifting_step_count(n, epsilon)
            within = (
                stats.agreement_interval[1] >= floor
                and stats.individual_steps.maximum == steps
                and stats.validity_failures == 0
            )
            ok = ok and within
            rows.append([
                n, epsilon, round(stats.agreement_rate, 3), floor,
                int(stats.individual_steps.maximum), steps, within,
            ])
    return ExperimentTable(
        "E4",
        "Theorem 2: sifting conciliator, agreement >= 1-eps in "
        "ceil(log log n) + ceil(log_{4/3}(8/eps)) steps",
        ["n", "eps", "agreement", "paper floor", "steps", "paper steps",
         "within"],
        rows,
        notes=f"{trials} trials/cell, id-consensus inputs",
        shape_holds=ok,
    )


# ---------------------------------------------------------------------------
# E5: Theorem 3 (CIL embedding)
# ---------------------------------------------------------------------------

def e5_cil_embedded(scale: float = 1.0) -> ExperimentTable:
    """Theorem 3: agreement >= 1/8, O(log log n) individual, O(n) total.

    Includes the end-of-Section-4 variant embedding Algorithm 1 instead of
    Algorithm 2, which has O(log* n) worst-case individual steps with the
    same O(n) expected total.
    """
    trials = _trials(60, scale)
    rows = []
    ok = True
    variants = {
        "sifter": lambda n: CILEmbeddedConciliator(n),
        "snapshot": lambda n: CILEmbeddedConciliator(
            n,
            inner_factory=lambda count: SnapshotConciliator(
                count, epsilon=INNER_EPSILON
            ),
        ),
    }
    for variant, make in variants.items():
        for n in (8, 32, 128, 256):
            stats = run_conciliator_trials(
                lambda: make(n),
                list(range(n)),
                trials=trials,
                master_seed=5000 + n,
            )
            inner = make(n).inner.step_bound()
            individual_bound = 2 * (inner + 1) + 7
            total_bound = cil_total_steps_bound(n)
            within = (
                stats.agreement_interval[1] >= 1 / 8
                and stats.individual_steps.maximum <= individual_bound
                and stats.total_steps.mean <= total_bound
                and stats.validity_failures == 0
            )
            ok = ok and within
            rows.append([
                variant, n, round(stats.agreement_rate, 3), round(1 / 8, 3),
                int(stats.individual_steps.maximum), individual_bound,
                round(stats.total_steps.mean / n, 2),
                round(total_bound / n, 1), within,
            ])
    return ExperimentTable(
        "E5",
        "Theorem 3: CIL-embedded conciliator — agreement >= 1/8, worst-case "
        "O(log log n) (sifter inner) or O(log* n) (snapshot inner, end of "
        "Section 4) individual steps, O(n) expected total steps",
        ["inner", "n", "agreement", "floor", "max steps", "step bound",
         "total/n", "bound/n", "within"],
        rows,
        notes=f"{trials} trials/row; total/n flat ~ linear total work",
        shape_holds=ok,
    )


# ---------------------------------------------------------------------------
# E6 / E7: full consensus
# ---------------------------------------------------------------------------

def e6_snapshot_consensus(scale: float = 1.0) -> ExperimentTable:
    """Corollary 1: O(log* n) expected individual steps, snapshot model."""
    trials = _trials(25, scale)
    rows = []
    ok = True
    for n in (4, 16, 64, 256):
        stats = run_consensus_trials(
            lambda: snapshot_consensus(n),
            list(range(n)),
            trials=trials,
            master_seed=6000 + n,
        )
        per_phase = snapshot_step_count(n, 0.5) + 4  # conciliator + AC
        normalized = stats.individual_steps.mean / per_phase
        within = stats.all_safe and normalized < 4.0
        ok = ok and within
        rows.append([
            n, log_star(n), round(stats.individual_steps.mean, 2), per_phase,
            round(normalized, 2), round(stats.phases.mean, 2), within,
        ])
    return ExperimentTable(
        "E6",
        "Corollary 1: snapshot-model consensus in O(log* n) expected "
        "individual steps (unbounded input domain)",
        ["n", "log* n", "mean steps", "steps/phase", "phases-equiv",
         "mean phases", "within"],
        rows,
        notes=(f"{trials} trials/row; 'phases-equiv' (mean steps over "
               "single-phase cost) staying ~constant is the O(log* n) shape"),
        shape_holds=ok,
    )


def e7_register_consensus(scale: float = 1.0) -> ExperimentTable:
    """Corollaries 2/3: register-model consensus cost in n and m."""
    trials = _trials(25, scale)
    rows = []
    ok = True
    # Sweep n at fixed m.
    m = 8
    for n in (8, 32, 128):
        stats = run_consensus_trials(
            lambda: register_consensus(n, value_domain=range(m)),
            [pid % m for pid in range(n)],
            trials=trials,
            master_seed=7000 + n,
        )
        within = stats.all_safe
        ok = ok and within
        rows.append([
            "sweep-n", n, m, round(stats.individual_steps.mean, 2),
            round(stats.phases.mean, 2), "-", within,
        ])
    # Sweep m at fixed n.
    n = 16
    for m in (2, 16, 256, 4096):
        stats = run_consensus_trials(
            lambda: register_consensus(n, value_domain=range(m)),
            [pid % m for pid in range(n)],
            trials=trials,
            master_seed=7100 + m,
        )
        ac_cost = FlagAdoptCommit(n, IntEncoder(m)).step_bound()
        within = stats.all_safe
        ok = ok and within
        rows.append([
            "sweep-m", n, m, round(stats.individual_steps.mean, 2),
            round(stats.phases.mean, 2), ac_cost, within,
        ])
    # Corollary 3: linear-total-work variant.
    for n in (32, 128):
        stats = run_consensus_trials(
            lambda: register_consensus(
                n, value_domain=range(8), linear_total_work=True
            ),
            [pid % 8 for pid in range(n)],
            trials=trials,
            master_seed=7200 + n,
        )
        within = stats.all_safe
        ok = ok and within
        rows.append([
            "cor-3", n, 8, round(stats.individual_steps.mean, 2),
            round(stats.phases.mean, 2),
            f"total/n={stats.total_steps.mean / n:.1f}", within,
        ])
    return ExperimentTable(
        "E7",
        "Corollaries 2-3: register-model consensus, "
        "O(log log n + log m) expected individual steps "
        "(our adopt-commit is O(log m) vs the paper's O(log m/log log m))",
        ["sweep", "n", "m", "mean steps", "mean phases", "AC cost/total",
         "within"],
        rows,
        notes=(f"{trials} trials/row; mean-steps grows with log m down the "
               "m-sweep and barely moves down the n-sweep"),
        shape_holds=ok,
    )


# ---------------------------------------------------------------------------
# E8: baseline comparison
# ---------------------------------------------------------------------------

def e8_baseline_comparison(scale: float = 1.0) -> ExperimentTable:
    """Intro claim: log log n sifting beats the prior O(log n) approach."""
    trials = _trials(40, scale)
    rows = []
    ok = True
    for n in (8, 64, 512, 4096):
        sifting_steps = SiftingConciliator(n).step_bound()
        baseline = run_conciliator_trials(
            lambda: DoublingCILConciliator(n),
            list(range(n)),
            trials=trials,
            master_seed=8000 + n,
        )
        baseline_bound = doubling_cil_step_bound(n)
        wins = sifting_steps < baseline_bound
        # The crossover: sifting's eps-tail constant dominates for tiny n;
        # from n=64 on, log log n + const < 2 log 2n must hold.
        if n >= 64:
            ok = ok and wins
        ok = ok and baseline.validity_failures == 0
        rows.append([
            n, sifting_steps, round(baseline.individual_steps.mean, 2),
            baseline_bound, round(baseline.agreement_rate, 3), wins,
        ])
    gaps = [row[3] - row[1] for row in rows]
    ok = ok and all(gaps[i] <= gaps[i + 1] for i in range(len(gaps) - 1))
    return ExperimentTable(
        "E8",
        "Introduction: sifting (log log n) vs doubling-CIL baseline (log n); "
        "sifting wins from the crossover (~n=64, where the eps-tail constant "
        "is amortized) and the gap widens with n",
        ["n", "sifting steps", "baseline mean steps", "baseline bound",
         "baseline agreement", "sifting wins"],
        rows,
        notes=f"{trials} trials/row for the randomized baseline",
        shape_holds=ok,
    )


# ---------------------------------------------------------------------------
# E9 / E10: ablations
# ---------------------------------------------------------------------------

def e9_priority_range_ablation(scale: float = 1.0, n: int = 16) -> ExperimentTable:
    """Section 2's duplicate budget: Pr[D] <= eps/2 at the paper's range."""
    trials = _trials(80, scale)
    rows = []
    epsilon = 0.5
    rounds = snapshot_rounds(n, epsilon)
    paper_range = None
    from repro.core.rounds import snapshot_priority_range

    paper_range = snapshot_priority_range(n, epsilon, rounds)
    ok = True
    for priority_range in (2, 16, 256, paper_range):
        duplicate_runs = 0
        agreements = 0
        for trial in range(trials):
            conciliator = SnapshotConciliator(
                n, epsilon=epsilon, priority_range=priority_range
            )
            seeds = SeedTree(9000 + priority_range * 1000 + trial)
            schedule = make_schedule("random", n, seeds.child("schedule"))
            from repro.core.conciliator import run_conciliator

            result = run_conciliator(
                conciliator, list(range(n)), schedule, seeds
            )
            duplicate_runs += conciliator.duplicate_priority_rounds() > 0
            agreements += result.agreement
        duplicate_rate = duplicate_runs / trials
        label = "paper" if priority_range == paper_range else str(priority_range)
        rows.append([
            label, priority_range, round(duplicate_rate, 3),
            round(agreements / trials, 3),
        ])
        if priority_range == paper_range:
            ok = ok and duplicate_rate <= epsilon / 2 + 0.1
    # Shape: duplicate rate decreases as the range grows.
    dup_rates = [row[2] for row in rows]
    ok = ok and all(dup_rates[i] >= dup_rates[i + 1] - 1e-9
                    for i in range(len(dup_rates) - 1))
    return ExperimentTable(
        "E9",
        "Ablation (Section 2): priority range vs duplicate-priority event D; "
        f"paper range ceil(R n^2/eps) keeps Pr[D] <= eps/2 (n={n})",
        ["range label", "range", "Pr[any duplicate]", "agreement"],
        rows,
        notes=f"{trials} trials/row, eps=0.5",
        shape_holds=ok,
    )


def e10_p_schedule_ablation(scale: float = 1.0, n: int = 256) -> ExperimentTable:
    """Section 3's choice of p_i: tuned schedule vs alternatives."""
    trials = _trials(50, scale)
    rounds = sifting_rounds(n, 0.5)
    schedules = {
        "tuned (ours)": sift_p_schedule(n, rounds),
        "paper eq. (3)": [
            paper_sift_p(i, n) if i <= sifting_rounds(n, 0.5) else 0.5
            for i in range(1, rounds + 1)
        ],
        "fixed 1/2": [0.5] * rounds,
        "fixed 1/sqrt(n)": [1 / math.sqrt(n)] * rounds,
    }
    # Fix the paper-eq variant's tail to 1/2 as the paper does.
    from repro.core.rounds import sifting_switch_round

    switch = sifting_switch_round(n)
    schedules["paper eq. (3)"] = [
        paper_sift_p(i, n) if i <= switch else 0.5
        for i in range(1, rounds + 1)
    ]
    rows = []
    survivors_by_label = {}
    for label, p_schedule in schedules.items():
        series = decay_series(
            lambda: SiftingConciliator(n, rounds=rounds, p_schedule=p_schedule),
            list(range(n)),
            trials=trials,
            master_seed=10_000,
        )
        agreement = run_conciliator_trials(
            lambda: SiftingConciliator(n, rounds=rounds, p_schedule=p_schedule),
            list(range(n)),
            trials=trials,
            master_seed=10_001,
        ).agreement_rate
        survivors_by_label[label] = series
        rows.append([
            label, round(series[min(switch, len(series) - 1)], 2),
            round(series[-1], 2), round(agreement, 3),
        ])
    # Shape: both tuned schedules sift far faster than fixed 1/2 early on.
    ok = (
        survivors_by_label["tuned (ours)"][switch - 1]
        < survivors_by_label["fixed 1/2"][switch - 1]
    )
    return ExperimentTable(
        "E10",
        f"Ablation (Section 3): write-probability schedules, n={n} — tuned "
        "p_i crushes survivors in ceil(log log n) rounds; fixed 1/2 cannot",
        ["schedule", "survivors@switch", "survivors@end", "agreement"],
        rows,
        notes=(f"{trials} trials/row, R={rounds}, switch after round "
               f"{switch}; eq. (3) as printed differs from the "
               "self-consistent p_i by <= 4x and still sifts at sqrt rate"),
        shape_holds=ok,
    )


# ---------------------------------------------------------------------------
# E11: max-register variant, E12: adopt-commit costs
# ---------------------------------------------------------------------------

def e11_max_register_variant(scale: float = 1.0, n: int = 64) -> ExperimentTable:
    """Footnote 1: max registers can replace snapshots in Algorithm 1."""
    trials = _trials(60, scale)
    results = {}
    for label, use_max in (("snapshot", False), ("max-register", True)):
        stats = run_conciliator_trials(
            lambda: SnapshotConciliator(n, use_max_registers=use_max),
            list(range(n)),
            trials=trials,
            master_seed=11_000,
        )
        series = decay_series(
            lambda: SnapshotConciliator(n, use_max_registers=use_max),
            list(range(n)),
            trials=trials,
            master_seed=11_001,
        )
        results[label] = (stats, series)
    rows = []
    for label, (stats, series) in results.items():
        rows.append([
            label, round(stats.agreement_rate, 3),
            int(stats.individual_steps.maximum),
            round(series[0], 2), round(series[-1], 2),
        ])
    snap_stats, snap_series = results["snapshot"]
    max_stats, max_series = results["max-register"]
    ok = (
        abs(snap_stats.agreement_rate - max_stats.agreement_rate) <= 0.15
        and abs(snap_series[0] - max_series[0]) <= 3.0
        and snap_stats.individual_steps.maximum
        == max_stats.individual_steps.maximum
    )
    return ExperimentTable(
        "E11",
        f"Footnote 1: Algorithm 1 on max registers behaves like the "
        f"snapshot version (n={n})",
        ["variant", "agreement", "steps", "survivors@1", "survivors@end"],
        rows,
        notes=f"{trials} trials/row, same step count by construction",
        shape_holds=ok,
    )


def e12_adopt_commit_cost(scale: float = 1.0, n: int = 16) -> ExperimentTable:
    """Corollary 2 discussion: adopt-commit cost dominates for large m."""
    rows = []
    ok = True
    for m in (2, 16, 256, 4096, 65536):
        flag_cost = FlagAdoptCommit(n, IntEncoder(m)).step_bound()
        snapshot_cost = SnapshotAdoptCommit(n).step_bound()
        collect_cost = CollectAdoptCommit(n).step_bound()
        conciliator_cost = sifting_step_count(n, 0.5)
        dominated = flag_cost > conciliator_cost
        rows.append([
            m, flag_cost, snapshot_cost, collect_cost, conciliator_cost,
            dominated,
        ])
    # Shape: flag cost grows with m; snapshot cost constant; for large m the
    # adopt-commit dominates the conciliator (the paper's break-even story).
    flag_costs = [row[1] for row in rows]
    ok = all(flag_costs[i] < flag_costs[i + 1] for i in range(len(flag_costs) - 1))
    ok = ok and rows[-1][5]
    return ExperimentTable(
        "E12",
        f"Adopt-commit cost vs m (n={n}): register AC grows ~3 log2 m, "
        "snapshot AC is O(1); for large m the AC dominates consensus cost",
        ["m", "flag AC steps", "snapshot AC", "collect AC",
         "sifting conciliator", "AC dominates"],
        rows,
        notes="worst-case step bounds (exact, not sampled)",
        shape_holds=ok,
    )


# ---------------------------------------------------------------------------
# E13-E17: extensions (one-round scaling, TAS, emulation costs, space)
# ---------------------------------------------------------------------------

def e13_one_round_scaling(scale: float = 1.0) -> ExperimentTable:
    """Conclusions' open question, measured: survivors after ONE round.

    The paper conjectures a lower bound might show Omega(log n) values
    remain after one snapshot layer and Omega(n^c) after one register
    layer.  Our upper-bound side: one snapshot round leaves ~H_n survivors
    (harmonic — Lemma 1) and one sifting round ~2 sqrt(n) (Lemma 2).
    """
    from repro.analysis.theory import harmonic
    from repro.core.probabilities import sift_x

    trials = _trials(50, scale)
    rows = []
    snap_values = {}
    sift_values = {}
    for n in (16, 64, 256, 1024):
        snap = decay_series(
            lambda: SnapshotConciliator(n, rounds=1),
            list(range(n)), trials=trials, master_seed=13_000 + n,
        )[0]
        sift = decay_series(
            lambda: SiftingConciliator(n, rounds=1),
            list(range(n)), trials=trials, master_seed=13_100 + n,
        )[0]
        snap_values[n] = snap
        sift_values[n] = sift
        rows.append([
            n, round(snap, 2), round(harmonic(n), 2),
            round(sift, 2), round(1 + sift_x(1, n), 2),
        ])
    # Shapes: snapshot survivors grow additively (~ln 4 per 4x n); sifting
    # survivors roughly double per 4x n (sqrt growth); both under bounds.
    ok = all(
        snap_values[n] <= harmonic(n) + 1.0 for n in snap_values
    ) and all(
        sift_values[n] <= 1 + sift_x(1, n) * 1.35 for n in sift_values
    )
    sift_ratio = sift_values[1024] / sift_values[64]
    snap_gap = snap_values[1024] - snap_values[64]
    ok = ok and 2.0 <= sift_ratio <= 6.5 and snap_gap <= 4.0
    return ExperimentTable(
        "E13",
        "One layer of computation: snapshot round leaves ~H_n survivors "
        "(log growth), sifting round ~2 sqrt(n) (power-law growth)",
        ["n", "snapshot survivors", "H_n", "sifting survivors",
         "1 + 2 sqrt(n-1)"],
        rows,
        notes=f"{trials} trials/row; the conjectured lower-bound shapes "
              "from the paper's conclusions, seen from the upper-bound side",
        shape_holds=ok,
    )


def e14_test_and_set(scale: float = 1.0) -> ExperimentTable:
    """Section 5's sibling problem: sifting test-and-set ([1] structure)."""
    from repro.runtime.simulator import run_programs
    from repro.tas.sifting_tas import WINNER, SiftingTestAndSet

    trials = _trials(40, scale)
    rows = []
    ok = True
    for n in (4, 16, 64, 256):
        winner_violations = 0
        survivors = []
        loser_steps = []
        max_steps = 0
        for trial in range(trials):
            seeds = SeedTree(14_000 + n * 1_000 + trial)
            tas = SiftingTestAndSet(n)
            schedule = make_schedule("random", n, seeds.child("schedule"))
            result = run_programs([tas.program] * n, schedule, seeds)
            winners = [pid for pid, out in result.outputs.items()
                       if out == WINNER]
            winner_violations += len(winners) != 1
            survivors.append(tas.filter_survivors)
            max_steps = max(max_steps, result.max_individual_steps)
            loser_steps.extend(
                result.steps_by_pid[pid] for pid in result.outputs
                if pid not in winners
            )
        mean_survivors = sum(survivors) / len(survivors)
        mean_loser = sum(loser_steps) / len(loser_steps) if loser_steps else 0
        ok = ok and winner_violations == 0 and mean_survivors <= 8.0
        rows.append([
            n, winner_violations, round(mean_survivors, 2),
            SiftingTestAndSet(n).filter_step_bound(),
            round(mean_loser, 2), max_steps,
        ])
    return ExperimentTable(
        "E14",
        "Sifting test-and-set (Alistarh-Aspnes structure): unique winner "
        "always; the O(log log n) filter leaves O(1) expected survivors "
        "for the backup",
        ["n", "winner violations", "mean filter survivors", "filter rounds",
         "mean loser steps", "max steps"],
        rows,
        notes=f"{trials} trials/row; backup is this library's consensus "
              "(substituting [1]'s RatRace; see DESIGN.md)",
        shape_holds=ok,
    )


def e15_emulated_snapshot_cost(scale: float = 1.0) -> ExperimentTable:
    """What 'unit-cost snapshots' hides: Algorithm 1 on real registers."""
    from repro.core.emulated_conciliator import EmulatedSnapshotConciliator

    trials = _trials(15, scale)
    rows = []
    ratios = []
    ok = True
    for n in (4, 8, 16, 32):
        stats = run_conciliator_trials(
            lambda: EmulatedSnapshotConciliator(n),
            list(range(n)),
            trials=trials,
            master_seed=15_000 + n,
        )
        unit = 2 * snapshot_rounds(n, 0.5)
        ratio = stats.individual_steps.mean / unit
        ratios.append(ratio)
        ok = ok and stats.validity_failures == 0
        rows.append([
            n, unit, round(stats.individual_steps.mean, 1),
            round(ratio, 1), round(stats.agreement_rate, 3),
        ])
    # Shape: the emulation overhead grows with n (Theta(n) per scan), so
    # the ratio must increase monotonically down the sweep.
    ok = ok and all(ratios[i] < ratios[i + 1] for i in range(len(ratios) - 1))
    return ExperimentTable(
        "E15",
        "Unit-cost snapshot assumption, priced: Algorithm 1 on wait-free "
        "register-emulated snapshots pays Theta(n)-factor more steps, and "
        "the gap widens with n (why Algorithm 2's register model matters)",
        ["n", "unit-cost steps", "emulated mean steps", "ratio",
         "agreement"],
        rows,
        notes=f"{trials} trials/row; agreement is unaffected (the emulation "
              "is linearizable), only the price changes",
        shape_holds=ok,
    )


def e16_bounded_max_register(scale: float = 1.0) -> ExperimentTable:
    """Footnote 1 continued: the [7] max register really is O(log k)/op."""
    from repro.memory.bounded_max_register import BoundedMaxRegister
    from repro.runtime.simulator import run_programs

    trials = _trials(20, scale)
    rows = []
    ok = True
    for exponent in (4, 8, 12, 16):
        capacity = 2 ** exponent
        register = BoundedMaxRegister(capacity)
        read_bound = register.read_step_bound()
        write_bound = register.write_step_bound()
        # Measure live: n processes write random values then read.
        n = 8
        measured_max = 0
        correct = True
        for trial in range(trials):
            seeds = SeedTree(16_000 + exponent * 100 + trial)
            fresh = BoundedMaxRegister(capacity)
            values = [
                seeds.child(f"v-{pid}").rng().randrange(capacity)
                for pid in range(n)
            ]

            def program(ctx):
                yield from fresh.write_program(ctx, values[ctx.pid])
                result = yield from fresh.read_program(ctx)
                return result

            schedule = make_schedule("random", n, seeds.child("schedule"))
            result = run_programs([program] * n, schedule, seeds)
            measured_max = max(measured_max, result.max_individual_steps)
            for pid in range(n):
                if not values[pid] <= result.outputs[pid] <= max(values):
                    correct = False
        ok = ok and correct and measured_max <= read_bound + write_bound
        rows.append([
            capacity, exponent, read_bound, write_bound, measured_max,
            correct,
        ])
    # Shape: bounds scale linearly in log k.
    write_bounds = [row[3] for row in rows]
    ok = ok and all(
        write_bounds[i + 1] - write_bounds[i] == 8
        for i in range(len(write_bounds) - 1)
    )
    return ExperimentTable(
        "E16",
        "Footnote 1 / [7]: bounded max register from 1-bit switches costs "
        "ceil(log2 k) reads and 2 ceil(log2 k) writes per operation",
        ["capacity k", "log2 k", "read bound", "write bound",
         "measured max steps", "semantics ok"],
        rows,
        notes=f"{trials} live trials per capacity with 8 concurrent writers",
        shape_holds=ok,
    )


def e17_register_width(scale: float = 1.0) -> ExperimentTable:
    """Footnote 2 and the Section 3 remark: register widths in bits."""
    from repro.analysis.space import (
        sifting_register_bits,
        snapshot_component_bits,
    )

    value_bits = 64  # a 64-bit input domain
    rows = []
    for n in (2**8, 2**16, 2**32):
        plain = snapshot_component_bits(n, 0.5, value_bits)
        indirect = snapshot_component_bits(
            n, 0.5, value_bits, indirection=True
        )
        with_id = sifting_register_bits(n, 0.5, value_bits)
        without_id = sifting_register_bits(
            n, 0.5, value_bits, include_origin=False
        )
        rows.append([
            f"2^{n.bit_length() - 1}", plain, indirect, with_id, without_id,
        ])
    # Shapes: indirection saves exactly the value field; dropping the id
    # leaves only O(log log n) n-dependence in the sifting register.
    ok = all(row[1] - row[2] == value_bits for row in rows)
    sift_widths = [row[4] for row in rows]
    ok = ok and (sift_widths[-1] - sift_widths[0]) <= 4
    return ExperimentTable(
        "E17",
        "Register widths: footnote 2's indirection removes the value field "
        "from snapshot components; Section 3's id-omission leaves sifting "
        "registers O(log log n + log m) bits",
        ["n", "snap component (plain)", "snap (indirection)",
         "sift register (with id)", "sift (no id)"],
        rows,
        notes="exact widths in bits for a 64-bit input domain, eps = 1/2",
        shape_holds=ok,
    )


def e18_adversary_strength(scale: float = 1.0, n: int = 32) -> ExperimentTable:
    """Section 5's 'strength of the adversary', measured.

    A content-aware adversary (which sees whether a process is about to
    read or write) defeats the sifting conciliator's oblivious floor, while
    the snapshot conciliator — whose per-round operation pattern is the
    same for everyone — is structurally immune.  This is the paper's
    content-oblivious requirement as an experiment.
    """
    from repro.runtime.adaptive import (
        PendingKindAdversary,
        RandomAdaptiveAdversary,
        SiftKillerAdversary,
        run_adaptive_programs,
    )

    trials = _trials(60, scale)
    adversaries = {
        "random (oblivious-equivalent)": lambda t: RandomAdaptiveAdversary(t),
        "readers-first (content-aware)": lambda t: PendingKindAdversary(["read"]),
        "sift-killer (content-aware)": lambda t: SiftKillerAdversary(),
    }
    conciliators = {
        "Alg 2 (sifting)": lambda: SiftingConciliator(n),
        "Alg 1 (snapshot)": lambda: SnapshotConciliator(n),
    }
    rates = {}
    rows = []
    for cell_index, (conc_label, make_conciliator) in enumerate(
        conciliators.items()
    ):
        for adv_index, (adv_label, make_adversary) in enumerate(
            adversaries.items()
        ):
            agreed = 0
            for trial in range(trials):
                # Deterministic per-cell seeds (str hash() is salted per
                # interpreter run and must not be used for seeding).
                seeds = SeedTree(
                    18_000 + cell_index * 100_000 + adv_index * 10_000
                    + trial * 7
                )
                conciliator = make_conciliator()
                result = run_adaptive_programs(
                    [conciliator.program] * n,
                    make_adversary(trial),
                    seeds,
                    inputs=list(range(n)),
                )
                agreed += result.agreement
            rate = agreed / trials
            rates[(conc_label, adv_label)] = rate
            rows.append([conc_label, adv_label, round(rate, 3), 0.5])
    ok = (
        rates[("Alg 2 (sifting)", "readers-first (content-aware)")] < 0.5
        and rates[("Alg 2 (sifting)", "random (oblivious-equivalent)")] >= 0.5
        and rates[("Alg 1 (snapshot)", "readers-first (content-aware)")] >= 0.5
    )
    return ExperimentTable(
        "E18",
        f"Section 5 adversary strength (n={n}): a content-aware scheduler "
        "pushes Algorithm 2 below its oblivious floor; Algorithm 1's "
        "uniform operation pattern resists it",
        ["conciliator", "adversary", "agreement", "oblivious floor"],
        rows,
        notes=f"{trials} trials/cell; 'readers-first' schedules pending "
              "reads before writes, which obliviousness forbids",
        shape_holds=ok,
    )


def e19_worst_schedule_search(scale: float = 1.0, n: int = 8) -> ExperimentTable:
    """The floor holds even for *searched-for* oblivious schedules.

    The theorems quantify over all oblivious strategies; a hill-climb over
    explicit schedules (minimizing measured agreement) must therefore fail
    to push below 1 - eps, up to sampling noise.
    """
    from repro.workloads.search import search_worst_schedule

    generations = max(4, int(round(24 * scale)))
    rows = []
    ok = True
    for label, factory, steps in (
        ("Alg 2 (sifting)", lambda: SiftingConciliator(n),
         SiftingConciliator(n).rounds),
        ("Alg 1 (snapshot)", lambda: SnapshotConciliator(n),
         2 * snapshot_rounds(n, 0.5)),
    ):
        result = search_worst_schedule(
            factory,
            list(range(n)),
            steps_per_process=steps,
            generations=generations,
            mutations_per_generation=4,
            trials_per_eval=max(4, int(round(10 * scale))),
            master_seed=19_000,
        )
        # Allow generous sampling slack below the floor; a real break
        # would sit near zero like E18's.
        within = result.agreement_rate >= 0.5 - 0.2
        ok = ok and within
        rows.append([
            label, result.evaluations, round(result.history[0], 3),
            round(result.agreement_rate, 3), 0.5, within,
        ])
    return ExperimentTable(
        "E19",
        f"Adversarial schedule search (n={n}): hill-climbing over oblivious "
        "schedules cannot break the 1-eps floor (the theorems quantify "
        "over every fixed schedule)",
        ["conciliator", "schedules evaluated", "round-robin rate",
         "worst-found rate", "floor", "holds"],
        rows,
        notes=f"{generations} generations of mutation hill-climb; "
              "worst-found rate re-evaluated on fresh seeds",
        shape_holds=ok,
    )


def e20_phase_distribution(scale: float = 1.0, n: int = 16) -> ExperimentTable:
    """The consensus framework's engine: geometric phase counts.

    Section 1.2: "on average, only a constant number of these objects are
    accessed by each process".  Each (conciliator, adopt-commit) phase
    succeeds independently with probability >= 1 - eps, so the number of
    phases is stochastically dominated by Geometric(1 - eps):
    ``P(phases > k) <= eps^k`` and ``E[phases] <= 1/(1-eps)``.
    """
    trials = _trials(150, scale)
    epsilon = 0.5
    phase_counts = []
    for trial in range(trials):
        seeds = SeedTree(20_000 + trial)
        protocol = register_consensus(n, value_domain=range(n))
        schedule = make_schedule("random", n, seeds.child("schedule"))
        from repro.core.consensus import run_consensus

        run_consensus(protocol, list(range(n)), schedule, seeds)
        phase_counts.append(max(protocol.phases_used.values()))
    mean_phases = sum(phase_counts) / trials
    rows = []
    ok = mean_phases <= 1.0 / (1.0 - epsilon) + 0.5
    max_k = max(phase_counts)
    for k in range(1, min(max_k, 5) + 1):
        measured_tail = sum(1 for count in phase_counts if count > k) / trials
        bound = epsilon ** k
        within = measured_tail <= bound + 0.08
        ok = ok and within
        rows.append([k, round(measured_tail, 3), round(bound, 3), within])
    return ExperimentTable(
        "E20",
        f"Consensus framework (n={n}, eps=1/2): phase count dominated by "
        f"Geometric(1/2) — measured mean {mean_phases:.2f} vs bound 2.0",
        ["k", "measured P(phases > k)", "geometric bound eps^k", "within"],
        rows,
        notes=f"{trials} trials; register-model id-consensus",
        shape_holds=ok,
    )


ALL_EXPERIMENTS: Sequence[Callable[..., ExperimentTable]] = (
    e1_snapshot_decay,
    e2_snapshot_conciliator,
    e3_sifting_decay,
    e4_sifting_conciliator,
    e5_cil_embedded,
    e6_snapshot_consensus,
    e7_register_consensus,
    e8_baseline_comparison,
    e9_priority_range_ablation,
    e10_p_schedule_ablation,
    e11_max_register_variant,
    e12_adopt_commit_cost,
    e13_one_round_scaling,
    e14_test_and_set,
    e15_emulated_snapshot_cost,
    e16_bounded_max_register,
    e17_register_width,
    e18_adversary_strength,
    e19_worst_schedule_search,
    e20_phase_distribution,
)

# Aliases matching the experiment ids.
e1 = e1_snapshot_decay
e2 = e2_snapshot_conciliator
e3 = e3_sifting_decay
e4 = e4_sifting_conciliator
e5 = e5_cil_embedded
e6 = e6_snapshot_consensus
e7 = e7_register_consensus
e8 = e8_baseline_comparison
e9 = e9_priority_range_ablation
e10 = e10_p_schedule_ablation
e11 = e11_max_register_variant
e12 = e12_adopt_commit_cost
e13 = e13_one_round_scaling
e14 = e14_test_and_set
e15 = e15_emulated_snapshot_cost
e16 = e16_bounded_max_register
e17 = e17_register_width
e18 = e18_adversary_strength
e19 = e19_worst_schedule_search
e20 = e20_phase_distribution
