"""Plain-text charts for terminals: sparklines and log-scale bar charts.

The repository has no plotting dependencies, but decay curves and scaling
series read much better as pictures than as digits.  These helpers render
compact ASCII/Unicode charts used by the CLI's ``decay`` command and the
examples.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["sparkline", "bar_chart", "series_plot"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence as a one-line sparkline.

    Values are scaled between the sequence min and max; a constant
    sequence renders at the lowest level.
    """
    if not values:
        raise ConfigurationError("sparkline of empty sequence")
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """Render horizontal bars with right-aligned labels and values.

    ``log_scale=True`` sizes bars by log10(1 + value), which keeps multiple
    orders of magnitude readable (e.g. E15's emulation ratios).
    """
    if len(labels) != len(values):
        raise ConfigurationError(
            f"{len(labels)} labels for {len(values)} values"
        )
    if not labels:
        raise ConfigurationError("bar chart of empty data")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    if any(value < 0 for value in values):
        raise ConfigurationError("bar chart values must be non-negative")

    def magnitude(value: float) -> float:
        return math.log10(1.0 + value) if log_scale else value

    scale_max = max(magnitude(value) for value in values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar_length = int(round(magnitude(value) / scale_max * width))
        bar = "█" * bar_length if bar_length else "▏"
        lines.append(
            f"{label.rjust(label_width)} | {bar} {value:g}{unit}"
        )
    return "\n".join(lines)


def series_plot(
    series: Sequence[Tuple[str, Sequence[float]]],
    *,
    height: int = 10,
    y_label: str = "",
) -> str:
    """Render one or more numeric series as a small scatter grid.

    Each series gets a marker (``*``, ``o``, ``x``, ``+``); points share the
    x axis by index.  Intended for decay curves (measured vs bound).
    """
    if not series:
        raise ConfigurationError("series plot of empty data")
    markers = "*ox+#@"
    length = max(len(values) for _, values in series)
    if length == 0:
        raise ConfigurationError("series plot needs at least one point")
    all_values = [value for _, values in series for value in values]
    low, high = min(all_values), max(all_values)
    if high == low:
        high = low + 1.0
    grid = [[" "] * length for _ in range(height)]
    for series_index, (_, values) in enumerate(series):
        marker = markers[series_index % len(markers)]
        for x, value in enumerate(values):
            row = int((high - value) / (high - low) * (height - 1))
            row = min(max(row, 0), height - 1)
            if grid[row][x] == " ":
                grid[row][x] = marker
            elif grid[row][x] != marker:
                grid[row][x] = "&"  # overlapping series
    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{high:8.2f} ┤"
        elif row_index == height - 1:
            prefix = f"{low:8.2f} ┤"
        else:
            prefix = " " * 8 + " │"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "└" + "─" * length)
    legend = "  ".join(
        f"{markers[i % len(markers)]} {name}" for i, (name, _) in enumerate(series)
    )
    if y_label:
        legend = f"{legend}   (y: {y_label})"
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
