"""Million-process growth curves: the paper's separation as a gated artifact.

The headline of the paper is asymptotic: Algorithm 1 finishes in
``O(log* n)`` rounds, Algorithm 2 in ``O(log log n)`` rounds, while the
``DoublingCIL`` baseline pays ``O(log n)``.  At the ``n <= 64`` of the rest
of the experiment suite those classes are numerically indistinguishable;
this runner sweeps ``n`` over decades up to :math:`10^6` and emits a
versioned, *deterministic* plot-data artifact (``GROWTH_curves.json``)
whose curves are checked, point by point, against the
:mod:`repro.analysis.theory` closed forms — the same envelope grading the
PR 5 attribution machinery applies to single traces.

Three measurements per decade:

- **Ensemble work** (all three algorithms): mean/max per-process charged
  steps over seeded trials on the vectorized backend under the
  ``permuted`` lockstep family.  Algorithms 1-2 have fixed-length
  programs, so observed work must *equal* the closed form
  (``relation = "exact"``); the baseline must stay under its bound.
- **Solo work** (the baseline only): the leader's run under the
  front-runner adversary's solo prefix — one process of a
  ``DoublingCILConciliator(n)`` executed alone on the generator backend.
  A solo writer climbs the whole doubling ladder, so this realizes the
  baseline's ``Theta(log n)`` wait-free bound.  Under a benign lockstep
  ensemble the baseline is O(1) per process (somebody writes within a
  pass or two and everyone adopts), which is itself worth pinning: the
  ``log n`` class is an *adversarial* cost, and the fast algorithms'
  flat curves hold under **every** schedule because their program
  lengths are fixed.
- **Sparse-state probe** (the largest decade): one sifting-style round
  driven end to end through the million-process machinery — an
  O(1)-memory :class:`~repro.runtime.streaming.StreamingPermutedSchedule`
  sampling pids into a lazily allocated
  :class:`~repro.memory.register_array.RegisterArray` and an
  auto-sparse :class:`~repro.memory.snapshot.SnapshotObject` — proving
  inside the artifact that the shared-state cost follows the touched
  cells, not ``n``.

Two honesty notes, encoded in the artifact rather than papered over.
First, ``log* n`` and ``log log n`` cannot be separated empirically:
``log*(10^6) = ceil(log log 10^6) = 5`` — they only part ways beyond
``n ~ 2^65536``.  What *is* visible, and what the checks gate, is the
two-group separation — both fast classes flat-ish and within their exact
envelopes, the baseline's solo curve climbing logarithmically away from
them — plus per-curve monotonicity.  Second, with the repo's constants
(``epsilon = 1/2``) Algorithm 1's step count (``2 log* n + 4``) sits at
or *below* Algorithm 2's (``ceil(log log n) + 10``) at every feasible
``n``, so the observed ordering is ``snapshot <= sifting < baseline``,
not the naive "sifting < snapshot < baseline"; the constants dominate
exactly as the paper's asymptotic statement allows.

At ``n = 10^6`` the snapshot conciliator's default priority range
(``ceil(R n^2 / eps) ~ 1.4e13``) no longer fits the vectorized kernel's
packed int64 adoption keys, so the runner caps it to the largest safe
range (still ``>= n^2``, keeping duplicate priorities as improbable as
the paper's tuning requires); the cap is recorded per point as
``priority_range_capped``.  Step counts are unaffected — Algorithm 1
takes exactly ``2R`` steps no matter the range.

Determinism contract (the ``scale-smoke`` CI gate): the report is a pure
function of ``(seed, max_n, epsilon)`` — no wall clock, no git SHA, no
host fingerprint — so :func:`deterministic_view` (everything but the
``label``) byte-compares against the committed
``benchmarks/GROWTH_baseline.json`` on any runner, mirroring the SLO
baseline contract.
"""

from __future__ import annotations

import json
import os
import statistics
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.analysis.theory import doubling_cil_step_bound, predicted_attribution
from repro.errors import ConfigurationError
from repro.runtime.rng import derive_seed

__all__ = [
    "GROWTH_SCHEMA_VERSION",
    "DEFAULT_MAX_N",
    "QUICK_MAX_N",
    "GROWTH_ALGORITHMS",
    "compare_growth",
    "decades",
    "deterministic_view",
    "growth_filename",
    "load_growth_json",
    "run_growth_experiment",
    "sparse_round_probe",
    "trials_for",
    "write_growth_json",
]

#: Version stamped on every growth report; bump on incompatible change.
GROWTH_SCHEMA_VERSION = 1

#: The full sweep's largest decade — the million-process regime.
DEFAULT_MAX_N = 10**6

#: The CI smoke sweep's largest decade (quick mode).
QUICK_MAX_N = 10**5

#: Curve keys, in report order: the two fast classes then the baseline.
GROWTH_ALGORITHMS = ("snapshot", "sifting", "doubling-cil")

#: Asymptotic class labels keyed like :data:`GROWTH_ALGORITHMS`.
_CLASSES = {
    "snapshot": "O(log* n)",
    "sifting": "O(log log n)",
    "doubling-cil": "O(log n)",
}

#: Solo-run trials per decade for the baseline ladder (generator backend;
#: each trial is O(log n) steps, so this is cheap at every n).
_SOLO_TRIALS = 32

#: Minimum ratio of the baseline's end-to-end observed growth (solo mean,
#: first decade to last) over the fastest-growing fast-class curve.  The
#: log-n ladder gains ~3.3 steps per decade against log*'s ~1, so the
#: sweep produces ~3-4x; 2x leaves room for solo-trial noise without ever
#: passing on a flat baseline.
_MIN_SEPARATION = 2.0


def decades(max_n: int) -> List[int]:
    """The sweep sizes: powers of ten from 10 up to ``max_n`` inclusive."""
    if max_n < 10:
        raise ConfigurationError(f"max_n must be >= 10, got {max_n}")
    sizes = []
    n = 10
    while n <= max_n:
        sizes.append(n)
        n *= 10
    return sizes


def trials_for(n: int) -> int:
    """Ensemble trials at size ``n``: fixed total work across decades.

    ``~2^21`` scheduled process-slots per point keeps every decade at
    roughly the same wall cost, with floors/caps so small ``n`` stays
    statistically useful and ``10^6`` stays inside CI memory.
    """
    return max(4, min(512, (1 << 21) // n))


def _max_safe_priority_range(n: int) -> int:
    """Largest priority range the vectorized kernel can pack with origins.

    Mirrors the guard in ``repro.runtime.vectorized._plan_for``:
    ``priority_range * mult + n < 2**63`` with ``mult`` the next power of
    two at or above ``n``.
    """
    mult = 1 << (n - 1).bit_length() if n > 1 else 2
    return (2**63 - n) // mult - 1


def _ensemble_factory(algorithm: str, n: int, epsilon: float) -> Tuple[
    Callable[[], Any], bool
]:
    """(conciliator factory, priority_range_capped) for one curve point."""
    if algorithm == "snapshot":
        from repro.core.rounds import snapshot_priority_range, snapshot_rounds
        from repro.core.snapshot_conciliator import SnapshotConciliator

        rounds = snapshot_rounds(n, epsilon)
        wanted = snapshot_priority_range(n, epsilon, rounds)
        safe = _max_safe_priority_range(n)
        capped = wanted > safe
        chosen = min(wanted, safe)
        if capped and chosen < n * n:  # pragma: no cover - n ~ 2^21+
            raise ConfigurationError(
                f"cannot cap priority range below n^2 at n={n}; "
                "the duplicate-priority bound would no longer hold"
            )
        return (
            lambda: SnapshotConciliator(n, epsilon, priority_range=chosen),
            capped,
        )
    if algorithm == "sifting":
        from repro.core.sifting_conciliator import SiftingConciliator

        return (lambda: SiftingConciliator(n, epsilon)), False
    if algorithm == "doubling-cil":
        from repro.baselines.doubling_cil import DoublingCILConciliator

        return (lambda: DoublingCILConciliator(n)), False
    raise ConfigurationError(
        f"unknown growth algorithm {algorithm!r}; choose from "
        f"{GROWTH_ALGORITHMS}"
    )


def _predicted(algorithm: str, n: int, epsilon: float) -> Dict[str, Any]:
    """Closed-form envelope for one curve point."""
    if algorithm == "doubling-cil":
        return {
            "individual_steps": doubling_cil_step_bound(n),
            "relation": "upper-bound",
        }
    prediction = predicted_attribution(algorithm, n, epsilon)
    return {
        "individual_steps": prediction["individual_steps"],
        "relation": prediction["relation"],
    }


def _round6(value: float) -> float:
    """Canonical float rounding: keeps the JSON byte-stable and readable."""
    return round(float(value), 6)


def _ensemble_point(
    algorithm: str, n: int, epsilon: float, seed: int, family: str
) -> Dict[str, Any]:
    """One (algorithm, n) ensemble measurement on the vectorized backend."""
    from repro.runtime.vectorized import run_vectorized_sweep

    factory, capped = _ensemble_factory(algorithm, n, epsilon)
    trials = trials_for(n)
    master_seed = derive_seed(seed, "growth", algorithm, f"n-{n}")
    sweep = run_vectorized_sweep(
        factory,
        [pid % 2 for pid in range(n)],
        schedule_family=family,
        trials=trials,
        master_seed=master_seed,
        workers=1,
    )
    prediction = _predicted(algorithm, n, epsilon)
    observed_mean = statistics.fmean(sweep.individual_steps)
    observed_max = max(sweep.individual_steps)
    bound = prediction["individual_steps"]
    if prediction["relation"] == "exact":
        within = observed_max == bound and observed_mean == bound
    else:
        within = observed_max <= bound
    point: Dict[str, Any] = {
        "n": n,
        "trials": trials,
        "observed_mean_steps": _round6(observed_mean),
        "observed_max_steps": _round6(observed_max),
        "mean_total_steps_per_process": _round6(
            statistics.fmean(sweep.total_steps) / n
        ),
        "agreement_rate": _round6(sweep.agreement_count / trials),
        "predicted_steps": bound,
        "relation": prediction["relation"],
        "within_envelope": bool(within),
    }
    if capped:
        point["priority_range_capped"] = True
    return point


def _solo_ladder_point(n: int, seed: int) -> Dict[str, Any]:
    """The baseline's solo-run work at size ``n`` (generator backend).

    Runs the pid-0 program of a ``DoublingCILConciliator(n)`` alone — the
    front-runner adversary's solo prefix, where the register starts empty
    and stays empty until the leader's own coin succeeds, so the leader
    climbs the doubling ladder: ``Theta(log n)`` charged steps.
    """
    from repro.analysis.experiments import trial_seed_tree
    from repro.baselines.doubling_cil import DoublingCILConciliator
    from repro.runtime.scheduler import RoundRobinSchedule
    from repro.runtime.simulator import run_programs

    master_seed = derive_seed(seed, "growth", "cil-solo", f"n-{n}")
    steps: List[int] = []
    for trial in range(_SOLO_TRIALS):
        seeds = trial_seed_tree(master_seed, trial)
        conciliator = DoublingCILConciliator(n)
        result = run_programs(
            [conciliator.program],
            RoundRobinSchedule(1),
            seeds,
            inputs=[0],
        )
        steps.append(result.max_individual_steps)
    bound = doubling_cil_step_bound(n)
    observed_max = max(steps)
    return {
        "trials": _SOLO_TRIALS,
        "observed_mean_steps": _round6(statistics.fmean(steps)),
        "observed_max_steps": _round6(observed_max),
        "predicted_steps": bound,
        "relation": "upper-bound",
        "within_envelope": bool(observed_max <= bound),
    }


def sparse_round_probe(
    n: int, seed: int, slots: Optional[int] = None
) -> Dict[str, Any]:
    """One sifting-style round at scale through the sparse/streaming stack.

    Samples ``slots`` pids (default: one full pass, ``n``) from an
    O(1)-memory :class:`~repro.runtime.streaming.StreamingPermutedSchedule`;
    each scheduled pid performs its single round-1 operation — a seeded
    coin picks write or read — on a lazily allocated
    :class:`~repro.memory.register_array.RegisterArray`, and a strided
    subset additionally updates an auto-sparse
    :class:`~repro.memory.snapshot.SnapshotObject` that is scanned once at
    the end.  Returns deterministic allocation accounting: the point is
    that a million-process round touches a *constant* number of shared
    cells plus one snapshot component per actual writer.

    (Objects are driven through ``apply`` directly rather than the
    ``Simulator`` — the probe measures the shared-state layer, not the
    process machinery, which the ensemble sweep already covers.)
    """
    from repro.memory.register_array import RegisterArray
    from repro.memory.snapshot import SnapshotObject
    from repro.runtime.operations import Read, Scan, Update, Write
    from repro.runtime.streaming import StreamingPermutedSchedule, _mix64

    if slots is None:
        slots = n
    schedule = StreamingPermutedSchedule(n, derive_seed(seed, "probe"))
    registers = RegisterArray(name="growth-r")
    snapshot = SnapshotObject(n, "growth-A")
    round_register = registers[1]
    snapshot_stride = max(1, n // 64)
    writes = reads = updates = 0
    for step in range(slots):
        pid = schedule.pid_at(step)
        if _mix64(seed ^ (pid << 1)) & 1:
            round_register.apply(Write(round_register, pid), pid)
            writes += 1
        else:
            round_register.apply(Read(round_register), pid)
            reads += 1
        if pid % snapshot_stride == 0:
            snapshot.apply(Update(snapshot, pid), pid)
            updates += 1
    view = snapshot.apply(Scan(snapshot), 0)
    return {
        "n": n,
        "slots": slots,
        "writes": writes,
        "reads": reads,
        "snapshot_updates": updates,
        "registers_allocated": len(registers),
        "snapshot_sparse": snapshot.sparse,
        "snapshot_components_touched": snapshot.touched_components,
        "scan_view_touched": sum(1 for entry in view if entry is not None),
    }


def _checks(curves: Dict[str, List[Dict[str, Any]]],
            solo: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The gateable verdicts: envelopes, monotonicity, separation."""
    within = all(
        point["within_envelope"]
        for points in curves.values() for point in points
    ) and all(point["within_envelope"] for point in solo)
    monotone = all(
        points[i]["observed_max_steps"] <= points[i + 1]["observed_max_steps"]
        for name, points in curves.items() if name != "doubling-cil"
        for i in range(len(points) - 1)
    ) and all(
        solo[i]["observed_mean_steps"] <= solo[i + 1]["observed_mean_steps"]
        for i in range(len(solo) - 1)
    )
    top = {
        name: points[-1]["observed_max_steps"]
        for name, points in curves.items()
    }
    fast_group_max = max(top["snapshot"], top["sifting"])
    baseline_solo_mean = solo[-1]["observed_mean_steps"]
    # Separation is a statement about *growth*: the baseline's solo curve
    # must climb decades at >= _MIN_SEPARATION times the rate of the
    # fastest-growing fast-class curve, and must have crossed above the
    # fast group by the largest decade.  (A plain end-value ratio cannot
    # work here: eps-tail constants put the fast group near 15 steps while
    # log2(2n) only reaches ~21 at n = 10^6 — the classes separate in
    # slope long before they separate in magnitude.)
    fast_growth = max(
        curves[name][-1]["observed_max_steps"]
        - curves[name][0]["observed_max_steps"]
        for name in ("snapshot", "sifting")
    )
    baseline_growth = (
        solo[-1]["observed_mean_steps"] - solo[0]["observed_mean_steps"]
    )
    ratio = baseline_growth / max(fast_growth, 1.0)
    crossed = baseline_solo_mean > fast_group_max
    separated = ratio >= _MIN_SEPARATION and crossed
    ordering = sorted(
        GROWTH_ALGORITHMS,
        key=lambda name: (
            baseline_solo_mean if name == "doubling-cil" else top[name]
        ),
    )
    return {
        "within_envelope": bool(within),
        "monotone": bool(monotone),
        "fast_group_max_steps": _round6(fast_group_max),
        "baseline_solo_mean_steps": _round6(baseline_solo_mean),
        "fast_group_growth_steps": _round6(fast_growth),
        "baseline_solo_growth_steps": _round6(baseline_growth),
        "growth_ratio": _round6(ratio),
        "crossed_at_max_n": bool(crossed),
        "separated": bool(separated),
        "observed_ordering": ordering,
        "ok": bool(within and monotone and separated),
    }


def run_growth_experiment(
    *,
    label: str = "local",
    seed: int = 2012,
    epsilon: float = 0.5,
    max_n: int = DEFAULT_MAX_N,
    schedule_family: str = "permuted",
    probe_slots: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the full growth sweep and return the versioned report.

    Requires NumPy (the ensemble sweep runs on the vectorized backend);
    raises :class:`ConfigurationError` with the usual install hint when it
    is absent.  ``probe_slots`` caps the sparse probe's slot count (the
    default walks one full pass of the largest decade).
    """
    from repro.runtime.vectorized import numpy_available

    if not numpy_available():
        raise ConfigurationError(
            "the growth experiment's ensemble sweep needs the vectorized "
            "backend; install NumPy with `pip install numpy`"
        )
    emit = log or (lambda message: None)
    sizes = decades(max_n)
    curves: Dict[str, List[Dict[str, Any]]] = {}
    for algorithm in GROWTH_ALGORITHMS:
        points = []
        for n in sizes:
            emit(f"growth: {algorithm} n={n} "
                 f"(trials={trials_for(n)}, vectorized)...")
            points.append(
                _ensemble_point(algorithm, n, epsilon, seed, schedule_family)
            )
        curves[algorithm] = points
    solo = []
    for n in sizes:
        emit(f"growth: doubling-cil solo ladder n={n} "
             f"(trials={_SOLO_TRIALS}, generator)...")
        solo.append({"n": n, **_solo_ladder_point(n, seed)})
    emit(f"growth: sparse round probe n={sizes[-1]}...")
    probe = sparse_round_probe(sizes[-1], seed, slots=probe_slots)
    checks = _checks(curves, solo)
    emit(
        "growth: checks "
        + ("ok" if checks["ok"] else "FAILED")
        + f" (growth ratio {checks['growth_ratio']}x, "
        f"ordering {' <= '.join(checks['observed_ordering'])})"
    )
    return {
        "v": GROWTH_SCHEMA_VERSION,
        "label": label,
        "seed": seed,
        "epsilon": epsilon,
        "max_n": max_n,
        "schedule_family": schedule_family,
        "backend": "vectorized+generator-solo",
        "classes": dict(_CLASSES),
        "note": (
            "log* n and ceil(log log n) are numerically equal up to n=10^6 "
            "(they separate only beyond n ~ 2^65536); the gated separation "
            "is the fast group (snapshot, sifting; flat, exact envelopes) "
            "vs the baseline's solo-run log n ladder. With epsilon=1/2 "
            "constants, snapshot <= sifting at every feasible n."
        ),
        "curves": curves,
        "baseline_solo": solo,
        "sparse_probe": probe,
        "checks": checks,
    }


# ----- serialization and the baseline gate -----------------------------------


def growth_filename(label: str) -> str:
    """Canonical on-disk name for a labeled report."""
    return f"GROWTH_{label}.json"


def write_growth_json(
    report: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Write a report canonically (sorted keys, trailing newline).

    Directory targets (existing, or spelled with a trailing slash) get the
    canonical ``GROWTH_<label>.json`` name, like the bench reports.
    """
    wants_dir = str(path).endswith(("/", os.sep))
    path = Path(path)
    if path.is_dir() or wants_dir:
        path = path / growth_filename(str(report.get("label", "local")))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_growth_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a report, rejecting foreign schema versions."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigurationError(
            f"growth file {str(path)!r} cannot be read: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"growth file {str(path)!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(data, dict) or data.get("v") != GROWTH_SCHEMA_VERSION:
        version = data.get("v") if isinstance(data, dict) else None
        raise ConfigurationError(
            f"unsupported growth schema version {version!r} in "
            f"{str(path)!r}; this build reads version {GROWTH_SCHEMA_VERSION}"
        )
    return data


def deterministic_view(report: Dict[str, Any]) -> Dict[str, Any]:
    """The byte-comparable projection: everything except the label.

    The growth report carries no wall clock, git SHA, or host fingerprint
    by design, so two runs with equal ``(seed, epsilon, max_n)`` agree on
    this view byte for byte on any machine.
    """
    return {key: value for key, value in report.items() if key != "label"}


def compare_growth(
    old: Dict[str, Any], new: Dict[str, Any]
) -> Tuple[bool, str]:
    """Byte-compare two reports' deterministic views.

    Returns ``(ok, message)``; on mismatch the message names the first
    divergent top-level key so CI logs point somewhere useful.
    """
    old_view = deterministic_view(old)
    new_view = deterministic_view(new)
    old_bytes = json.dumps(old_view, indent=2, sort_keys=True)
    new_bytes = json.dumps(new_view, indent=2, sort_keys=True)
    if old_bytes == new_bytes:
        return True, "growth report matches the baseline byte for byte"
    for key in sorted(set(old_view) | set(new_view)):
        if json.dumps(old_view.get(key), sort_keys=True) != json.dumps(
            new_view.get(key), sort_keys=True
        ):
            return False, (
                f"growth report diverges from the baseline at key {key!r}"
            )
    return False, "growth reports differ"  # pragma: no cover - unreachable
