"""The robustness probe: agreement rate vs model strength, tabulated.

``repro probe`` answers the ROADMAP's "where do the guarantees bend?"
question with one deterministic report spanning both ladder axes:

- **Adversary rungs** (strength ordering ``oblivious < noisy < late-δ <
  adaptive``): the same conciliator, same ``(n, ε)``, swept under each
  rung at fixed trial count.  The paper proves the ``1 - ε`` floor only
  for the oblivious endpoint; the probe measures how agreement degrades
  as the adversary is allowed to see more.
- **Register models** (``atomic``, ``regular``, ``safe``): Algorithms 1-2
  re-run with weakened read resolution.  Agreement may sag, but validity
  must never fail and every process must still terminate — the hard
  oracles stay hard under a declared weakening.

Every number is a pure function of ``(seed, n, trials, parameters)``, so
the committed ``benchmarks/PROBE_ladder.json`` regenerates byte-identically
(modulo the wall-clock stamp, which is excluded from the payload).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.experiments import run_conciliator_trials
from repro.analysis.tables import render_table
from repro.core.conciliator import Conciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.memory.semantics import REGISTER_MODEL_KINDS, RegisterModel
from repro.runtime.adaptive import ADAPTIVE_FAMILIES, AdaptiveSpec
from repro.runtime.adversary import ADVERSARY_LADDER, AdversarySpec

__all__ = ["PROBE_ALGORITHMS", "ProbeReport", "run_probe"]

#: Conciliators the probe can sweep (Algorithm 2 and Algorithm 1's core).
PROBE_ALGORITHMS: Dict[str, Callable[[int], Conciliator]] = {
    "sifting": lambda n: SiftingConciliator(n),
    "snapshot": lambda n: SnapshotConciliator(n),
}


@dataclass
class ProbeReport:
    """One probe sweep: ladder rungs × algorithms plus the register leg."""

    seed: int
    n: int
    trials: int
    inner: str
    noise: float
    delay: int
    #: Per-algorithm rung measurements, in ladder order (weakest first):
    #: ``{algorithm: [{rung, adversary, agreement_rate, ...}, ...]}``.
    ladder: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    #: Register-model leg: ``[{algorithm, model, agreement_rate,
    #: validity_failures, ...}, ...]``.
    register_models: List[Dict[str, Any]] = field(default_factory=list)

    _JSON_VERSION = 1

    @property
    def monotone(self) -> Dict[str, bool]:
        """Whether each algorithm's agreement degrades monotonically
        (weakly) from the oblivious rung down to the adaptive one."""
        verdicts: Dict[str, bool] = {}
        for algorithm, rows in self.ladder.items():
            rates = [row["agreement_rate"] for row in rows]
            verdicts[algorithm] = all(
                earlier >= later for earlier, later in zip(rates, rates[1:])
            )
        return verdicts

    @property
    def hard_oracles_hold(self) -> bool:
        """No validity failure anywhere, under any model or rung."""
        rung_rows = [row for rows in self.ladder.values() for row in rows]
        return all(
            row["validity_failures"] == 0
            for row in rung_rows + self.register_models
        )

    @property
    def ok(self) -> bool:
        return self.hard_oracles_hold and all(self.monotone.values())

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self._JSON_VERSION,
            "seed": self.seed,
            "n": self.n,
            "trials": self.trials,
            "inner": self.inner,
            "noise": self.noise,
            "delay": self.delay,
            "ladder": self.ladder,
            "register_models": self.register_models,
            "monotone": self.monotone,
            "hard_oracles_hold": self.hard_oracles_hold,
            "ok": self.ok,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ProbeReport":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"probe report JSON must be an object, got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported probe report version {data.get('version')!r}; "
                f"this build reads version {cls._JSON_VERSION}"
            )
        return cls(
            seed=int(data["seed"]),
            n=int(data["n"]),
            trials=int(data["trials"]),
            inner=str(data["inner"]),
            noise=float(data["noise"]),
            delay=int(data["delay"]),
            ladder={
                str(algorithm): list(rows)
                for algorithm, rows in data.get("ladder", {}).items()
            },
            register_models=list(data.get("register_models", [])),
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Write the canonical JSON report to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    def render(self) -> str:
        """Human-oriented tables: one per algorithm plus the register leg."""
        sections: List[str] = []
        for algorithm in sorted(self.ladder):
            rows = [
                [
                    row["rung"],
                    row["adversary"],
                    f"{row['agreement_rate']:.3f}",
                    row["validity_failures"],
                ]
                for row in self.ladder[algorithm]
            ]
            verdict = "monotone" if self.monotone[algorithm] else "NOT MONOTONE"
            sections.append(render_table(
                ["rung", "adversary", "agreement", "validity failures"],
                rows,
                title=(
                    f"adversary ladder: {algorithm}, n={self.n}, "
                    f"{self.trials} trials ({verdict})"
                ),
            ))
        if self.register_models:
            rows = [
                [
                    row["algorithm"],
                    row["model"],
                    f"{row['agreement_rate']:.3f}",
                    row["validity_failures"],
                ]
                for row in self.register_models
            ]
            sections.append(render_table(
                ["algorithm", "register model", "agreement",
                 "validity failures"],
                rows,
                title=(
                    f"register models: n={self.n}, {self.trials} trials "
                    "(hard oracles must hold)"
                ),
            ))
        return "\n\n".join(sections)


def _ladder_specs(
    inner: str, noise: float, delay: int
) -> List[Tuple[str, str, Optional[Any]]]:
    """The rungs in ladder order: (rung, label, adversary spec or None)."""
    noisy = AdversarySpec("noisy", inner=inner, noise=noise)
    late = AdversarySpec("late", inner=inner, delay=delay)
    adaptive = AdaptiveSpec(inner)
    return [
        ("oblivious", "random schedule", None),
        ("noisy", noisy.describe(), noisy),
        ("late", late.describe(), late),
        ("adaptive", f"adaptive-{inner}", adaptive),
    ]


def run_probe(
    *,
    n: int = 8,
    trials: int = 400,
    seed: int = 2012,
    algorithms: Sequence[str] = ("sifting",),
    inner: str = "pending-reads",
    noise: float = 0.8,
    delay: int = 1,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> ProbeReport:
    """Sweep the adversary ladder and the register models; tabulate.

    ``inner`` names the adaptive strategy wrapped by the noisy/late rungs
    and used as the adaptive endpoint (``pending-reads`` is the default:
    the documented Algorithm 2 killer, whose staleness sensitivity makes
    the ladder separation visible).  ``noise``/``delay`` set the rung
    strengths.  The register-model leg always runs both Algorithms 1-2
    (sifting and snapshot), regardless of ``algorithms``.
    """
    if inner not in ADAPTIVE_FAMILIES:
        raise ConfigurationError(
            f"unknown inner adaptive strategy {inner!r}; choose from "
            f"{ADAPTIVE_FAMILIES}"
        )
    for algorithm in algorithms:
        if algorithm not in PROBE_ALGORITHMS:
            raise ConfigurationError(
                f"unknown probe algorithm {algorithm!r}; choose from "
                f"{tuple(PROBE_ALGORITHMS)}"
            )
    emit = log or (lambda message: None)
    report = ProbeReport(
        seed=seed, n=n, trials=trials, inner=inner, noise=noise, delay=delay,
    )
    rungs = _ladder_specs(inner, noise, delay)
    assert tuple(rung for rung, _, _ in rungs) == ADVERSARY_LADDER
    for algorithm in algorithms:
        factory = PROBE_ALGORITHMS[algorithm]
        rows: List[Dict[str, Any]] = []
        for rung, label, spec in rungs:
            emit(f"probe: {algorithm} / {rung} ({label})...")
            stats = run_conciliator_trials(
                lambda: factory(n),
                list(range(n)),
                schedule_family="random",
                trials=trials,
                master_seed=seed,
                adversary=spec,
                workers=workers,
                chunk_size=chunk_size,
            )
            low, high = stats.agreement_interval
            rows.append({
                "rung": rung,
                "adversary": label,
                "agreement_rate": stats.agreement_rate,
                "agreement_interval": [low, high],
                "validity_failures": stats.validity_failures,
                "mean_total_steps": stats.total_steps.mean,
            })
        report.ladder[algorithm] = rows
    for algorithm in sorted(PROBE_ALGORITHMS):
        factory = PROBE_ALGORITHMS[algorithm]
        for kind in REGISTER_MODEL_KINDS:
            emit(f"probe: {algorithm} / {kind} registers...")
            model = None if kind == "atomic" else RegisterModel(kind)
            stats = run_conciliator_trials(
                lambda: factory(n),
                list(range(n)),
                schedule_family="random",
                trials=trials,
                master_seed=seed,
                register_model=model,
                workers=workers,
                chunk_size=chunk_size,
            )
            report.register_models.append({
                "algorithm": algorithm,
                "model": kind,
                "agreement_rate": stats.agreement_rate,
                "validity_failures": stats.validity_failures,
                "mean_total_steps": stats.total_steps.mean,
            })
    return report
