"""Analysis: the paper's predicted curves, statistics, and sweep runners."""

from repro.analysis.stats import (
    SampleSummary,
    mean,
    sample_std,
    summarize,
    wilson_interval,
)
from repro.analysis.tables import format_float, render_table
from repro.analysis.theory import (
    cil_total_steps_bound,
    doubling_cil_step_bound,
    harmonic,
    markov_disagreement_bound,
    sifting_decay_bound,
    sifting_step_count,
    snapshot_decay_bound,
    snapshot_step_count,
)
from repro.analysis.experiments import (
    ConciliatorTrialStats,
    ConsensusTrialStats,
    decay_series,
    merge_conciliator_stats,
    merge_consensus_stats,
    run_conciliator_trials,
    run_consensus_trials,
    trial_seed_tree,
)

__all__ = [
    "SampleSummary",
    "mean",
    "sample_std",
    "summarize",
    "wilson_interval",
    "render_table",
    "format_float",
    "harmonic",
    "snapshot_decay_bound",
    "sifting_decay_bound",
    "snapshot_step_count",
    "sifting_step_count",
    "doubling_cil_step_bound",
    "cil_total_steps_bound",
    "markov_disagreement_bound",
    "ConciliatorTrialStats",
    "ConsensusTrialStats",
    "merge_conciliator_stats",
    "merge_consensus_stats",
    "run_conciliator_trials",
    "run_consensus_trials",
    "decay_series",
    "trial_seed_tree",
]
