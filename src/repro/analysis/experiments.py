"""Generic experiment sweeps: repeated trials with fresh seeds/adversaries.

Every benchmark and most integration tests funnel through these runners,
which enforce the experimental hygiene the model requires:

- each trial gets its own branch of the master seed tree;
- the adversary's schedule is drawn from the ``"schedule"`` branch and the
  algorithm from the ``"algorithm"`` branch, so they stay independent;
- a *fresh* protocol instance is built per trial (shared objects are
  one-shot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import SampleSummary, summarize, wilson_interval
from repro.core.conciliator import Conciliator, run_conciliator
from repro.core.consensus import ConsensusProtocol, run_consensus
from repro.errors import ConfigurationError
from repro.runtime.results import RunResult
from repro.runtime.rng import SeedTree
from repro.workloads.schedules import make_schedule

__all__ = [
    "ConciliatorTrialStats",
    "ConsensusTrialStats",
    "run_conciliator_trials",
    "run_consensus_trials",
    "decay_series",
]


@dataclass(frozen=True)
class ConciliatorTrialStats:
    """Aggregates over repeated conciliator executions."""

    n: int
    trials: int
    agreement_count: int
    individual_steps: SampleSummary
    total_steps: SampleSummary
    validity_failures: int

    @property
    def agreement_rate(self) -> float:
        return self.agreement_count / self.trials

    @property
    def agreement_interval(self) -> Tuple[float, float]:
        """95% Wilson interval for the agreement probability."""
        return wilson_interval(self.agreement_count, self.trials)


@dataclass(frozen=True)
class ConsensusTrialStats:
    """Aggregates over repeated consensus executions."""

    n: int
    trials: int
    agreement_failures: int
    validity_failures: int
    individual_steps: SampleSummary
    total_steps: SampleSummary
    phases: SampleSummary

    @property
    def all_safe(self) -> bool:
        """Consensus must *never* violate agreement or validity."""
        return self.agreement_failures == 0 and self.validity_failures == 0


def _trial_schedule(family: str, n: int, trial_seeds: SeedTree):
    return make_schedule(family, n, trial_seeds.child("schedule"))


def run_conciliator_trials(
    factory: Callable[[], Conciliator],
    inputs: Sequence[Any],
    *,
    schedule_family: str = "random",
    trials: int = 100,
    master_seed: int = 0,
    allow_partial: Optional[bool] = None,
) -> ConciliatorTrialStats:
    """Run ``trials`` independent executions of a conciliator.

    ``allow_partial`` defaults to True exactly for the crash adversary (its
    victims never finish); agreement and validity are then judged on the
    finished processes, as the wait-free model demands.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if allow_partial is None:
        allow_partial = schedule_family == "crash-half"
    seeds = SeedTree(master_seed)
    input_map = dict(enumerate(inputs))
    agreement_count = 0
    validity_failures = 0
    individual: List[float] = []
    total: List[float] = []
    for trial in range(trials):
        trial_seeds = seeds.child(f"trial-{trial}")
        conciliator = factory()
        schedule = _trial_schedule(schedule_family, conciliator.n, trial_seeds)
        result = _run_one_conciliator(
            conciliator, inputs, schedule, trial_seeds, allow_partial
        )
        agreement_count += result.agreement
        validity_failures += not result.validity_holds(input_map)
        individual.append(float(result.max_individual_steps))
        total.append(float(result.total_steps))
    return ConciliatorTrialStats(
        n=len(inputs),
        trials=trials,
        agreement_count=agreement_count,
        individual_steps=summarize(individual),
        total_steps=summarize(total),
        validity_failures=validity_failures,
    )


def _run_one_conciliator(
    conciliator: Conciliator,
    inputs: Sequence[Any],
    schedule,
    trial_seeds: SeedTree,
    allow_partial: bool,
) -> RunResult:
    from repro.runtime.simulator import run_programs

    programs = [conciliator.program] * len(inputs)
    return run_programs(
        programs,
        schedule,
        trial_seeds,
        inputs=list(inputs),
        allow_partial=allow_partial,
    )


def run_consensus_trials(
    factory: Callable[[], ConsensusProtocol],
    inputs: Sequence[Any],
    *,
    schedule_family: str = "random",
    trials: int = 50,
    master_seed: int = 0,
    allow_partial: Optional[bool] = None,
) -> ConsensusTrialStats:
    """Run ``trials`` independent consensus executions and check safety."""
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if allow_partial is None:
        allow_partial = schedule_family == "crash-half"
    seeds = SeedTree(master_seed)
    input_map = dict(enumerate(inputs))
    agreement_failures = 0
    validity_failures = 0
    individual: List[float] = []
    total: List[float] = []
    phases: List[float] = []
    for trial in range(trials):
        trial_seeds = seeds.child(f"trial-{trial}")
        protocol = factory()
        schedule = _trial_schedule(schedule_family, protocol.n, trial_seeds)
        from repro.runtime.simulator import run_programs

        programs = [protocol.program] * protocol.n
        result = run_programs(
            programs,
            schedule,
            trial_seeds,
            inputs=list(inputs),
            allow_partial=allow_partial,
        )
        agreement_failures += not result.agreement
        validity_failures += not result.validity_holds(input_map)
        individual.append(float(result.max_individual_steps))
        total.append(float(result.total_steps))
        if protocol.phases_used:
            phases.append(float(max(protocol.phases_used.values())))
    return ConsensusTrialStats(
        n=len(inputs),
        trials=trials,
        agreement_failures=agreement_failures,
        validity_failures=validity_failures,
        individual_steps=summarize(individual),
        total_steps=summarize(total),
        phases=summarize(phases if phases else [0.0]),
    )


def decay_series(
    factory: Callable[[], Conciliator],
    inputs: Sequence[Any],
    *,
    schedule_family: str = "random",
    trials: int = 50,
    master_seed: int = 0,
) -> List[float]:
    """Mean distinct-survivor counts ``Y_i`` per round across trials.

    Entry ``i`` is the average, over trials, of the number of distinct
    personae held by processes after completing round ``i+1`` — the measured
    counterpart of the decay bounds in Lemmas 1 and 3/4.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    seeds = SeedTree(master_seed)
    sums: Dict[int, float] = {}
    rounds_seen = 0
    for trial in range(trials):
        trial_seeds = seeds.child(f"trial-{trial}")
        conciliator = factory()
        schedule = _trial_schedule(schedule_family, conciliator.n, trial_seeds)
        run_conciliator(conciliator, inputs, schedule, trial_seeds)
        series = conciliator.survivor_series()
        rounds_seen = max(rounds_seen, len(series))
        for index, count in enumerate(series):
            sums[index] = sums.get(index, 0.0) + count
    return [sums.get(index, 0.0) / trials for index in range(rounds_seen)]
