"""Generic experiment sweeps: repeated trials with fresh seeds/adversaries.

Every benchmark and most integration tests funnel through these runners,
which enforce the experimental hygiene the model requires:

- each trial gets its own branch of the master seed tree, derived from the
  **trial index** (never from worker or chunk order), so a sweep is a pure
  function of ``(master_seed, trial)``;
- the adversary's schedule is drawn from the ``"schedule"`` branch and the
  algorithm from the ``"algorithm"`` branch, so they stay independent;
- a *fresh* protocol instance is built per trial (shared objects are
  one-shot).

Because trials are independent and index-seeded, the runners shard them
across processes via :mod:`repro.runtime.parallel` when asked
(``workers > 1``).  Per-trial outcomes are reassembled in trial order before
aggregation, so a parallel sweep is **bit-identical** to the serial one —
the contract pinned down by ``tests/property/test_parallel_equivalence.py``.

Long sweeps are additionally *crash-safe*: pass ``checkpoint_path`` and
completed trial chunks are journaled durably as they finish; re-running the
same sweep with ``resume=True`` replays the journal and executes only the
remainder, producing statistics bit-identical to an uninterrupted run (the
contract pinned down by ``tests/property/test_checkpoint_resume.py``).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.stats import SampleSummary, summarize, wilson_interval
from repro.core.conciliator import Conciliator, run_conciliator
from repro.core.consensus import ConsensusProtocol
from repro.errors import CheckpointError, ConfigurationError
from repro.memory.semantics import RegisterModel, SemanticsInjector
from repro.obs.metrics import MetricsRegistry, get_default_registry
from repro.runtime.adaptive import AdaptiveSpec, run_adaptive_programs
from repro.runtime.adversary import AdversarySpec
from repro.runtime.parallel import run_indexed_trials
from repro.runtime.results import RunResult
from repro.runtime.rng import SeedTree
from repro.runtime.vectorized import (
    BACKENDS,
    VECTOR_BACKENDS,
    run_vectorized_sweep,
)
from repro.workloads.schedules import make_schedule

__all__ = [
    "ConciliatorTrialStats",
    "ConsensusTrialStats",
    "merge_conciliator_stats",
    "merge_consensus_stats",
    "model_overrides",
    "run_conciliator_trials",
    "run_consensus_trials",
    "decay_series",
    "trial_seed_tree",
]

#: Either endpoint spec that builds a step-by-step choosing adversary: a
#: ladder rung (:class:`AdversarySpec`) or the fully adaptive endpoint
#: (:class:`AdaptiveSpec`).  Both are versioned JSON values with ``seed``
#: fields and ``build()`` methods, which is all the sweeps need.
AdversaryLike = Union[AdversarySpec, AdaptiveSpec]


@dataclass(frozen=True)
class ConciliatorTrialStats:
    """Aggregates over repeated conciliator executions.

    ``kind`` records which conciliator produced the sweep (the instance's
    ``name``); :func:`merge_conciliator_stats` refuses to pool sweeps of
    different kinds, since a blend of, say, sifting and snapshot trials
    estimates nothing.
    """

    n: int
    trials: int
    agreement_count: int
    individual_steps: SampleSummary
    total_steps: SampleSummary
    validity_failures: int
    kind: str = ""

    @property
    def agreement_rate(self) -> float:
        return self.agreement_count / self.trials

    @property
    def agreement_interval(self) -> Tuple[float, float]:
        """95% Wilson interval for the agreement probability."""
        return wilson_interval(self.agreement_count, self.trials)


@dataclass(frozen=True)
class ConsensusTrialStats:
    """Aggregates over repeated consensus executions."""

    n: int
    trials: int
    agreement_failures: int
    validity_failures: int
    individual_steps: SampleSummary
    total_steps: SampleSummary
    phases: SampleSummary
    kind: str = ""

    @property
    def all_safe(self) -> bool:
        """Consensus must *never* violate agreement or validity."""
        return self.agreement_failures == 0 and self.validity_failures == 0


def merge_conciliator_stats(
    first: ConciliatorTrialStats, second: ConciliatorTrialStats
) -> ConciliatorTrialStats:
    """Pool two disjoint sweeps (e.g. different seed shards or machines).

    Counts combine exactly; the step summaries combine through
    :meth:`SampleSummary.merge`, i.e. without re-walking raw samples.  Use
    distinct master seeds (or disjoint trial ranges) per shard so the pooled
    trials stay independent.  Sweeps with different ``n`` or different
    conciliator kinds are incompatible and are rejected with
    :class:`ConfigurationError` — pooling them would silently fabricate a
    distribution no protocol configuration ever produced.
    """
    _check_mergeable("conciliator", first, second)
    return ConciliatorTrialStats(
        n=first.n,
        trials=first.trials + second.trials,
        agreement_count=first.agreement_count + second.agreement_count,
        individual_steps=first.individual_steps.merge(second.individual_steps),
        total_steps=first.total_steps.merge(second.total_steps),
        validity_failures=first.validity_failures + second.validity_failures,
        kind=first.kind or second.kind,
    )


def merge_consensus_stats(
    first: ConsensusTrialStats, second: ConsensusTrialStats
) -> ConsensusTrialStats:
    """Pool two disjoint consensus sweeps; see :func:`merge_conciliator_stats`."""
    _check_mergeable("consensus", first, second)
    return ConsensusTrialStats(
        n=first.n,
        trials=first.trials + second.trials,
        agreement_failures=first.agreement_failures + second.agreement_failures,
        validity_failures=first.validity_failures + second.validity_failures,
        individual_steps=first.individual_steps.merge(second.individual_steps),
        total_steps=first.total_steps.merge(second.total_steps),
        phases=first.phases.merge(second.phases),
        kind=first.kind or second.kind,
    )


def _check_mergeable(what: str, first: Any, second: Any) -> None:
    """Reject pooling sweeps that were run under different configurations."""
    if first.n != second.n:
        raise ConfigurationError(
            f"cannot merge {what} stats for different n: "
            f"{first.n} vs {second.n}"
        )
    if first.kind and second.kind and first.kind != second.kind:
        raise ConfigurationError(
            f"cannot merge {what} stats for different protocol kinds: "
            f"{first.kind!r} vs {second.kind!r}"
        )


def trial_seed_tree(master_seed: int, trial: int) -> SeedTree:
    """The seed branch for one trial of a sweep.

    Derivation is by trial *index* only — the same trial gets the same
    seeds whether it runs serially, in any worker, or in any chunk.  Both
    the serial and the sharded execution paths call exactly this function.
    """
    return SeedTree(master_seed).child(f"trial-{trial}")


def _validate_sweep(trials: int, n: int) -> None:
    """Common fail-fast checks for every sweep entry point."""
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if n <= 1:
        raise ConfigurationError(
            f"a sweep needs at least 2 processes (inputs), got {n}"
        )


def _trial_schedule(family: str, n: int, trial_seeds: SeedTree):
    return make_schedule(family, n, trial_seeds.child("schedule"))


def _resolve_backend(
    backend: str,
    *,
    what: str,
    allow_partial: Optional[bool],
    metrics: Optional[MetricsRegistry],
) -> bool:
    """Validate a sweep's ``backend`` choice; True when it is vectorized.

    The vectorized backends batch whole trials as array programs, so the
    per-event knobs of the generator simulator do not exist there: partial
    (starved) executions cannot arise under lockstep families, and there is
    no per-event instrumentation for a :class:`MetricsRegistry` to observe.
    Both are rejected loudly rather than silently ignored.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if backend not in VECTOR_BACKENDS:
        return False
    if allow_partial:
        raise ConfigurationError(
            f"backend {backend!r} runs every process to completion and "
            "cannot honour allow_partial=True; use the generator backend "
            "for partial (crash/starvation) executions"
        )
    if metrics is not None:
        raise ConfigurationError(
            f"backend {backend!r} executes batched kernels with no "
            "per-event metrics hooks; collect metrics on the generator "
            "backend instead"
        )
    if what == "consensus":
        raise ConfigurationError(
            f"backend {backend!r} only supports conciliator sweeps; "
            "consensus protocols interleave coin-dependent phases that "
            "have no fixed per-process op sequence"
        )
    return True


def _protocol_kind(instance: Any) -> str:
    """Stable identity of the protocol a sweep exercises."""
    return getattr(instance, "name", None) or type(instance).__name__


def _resolve_checkpoint(checkpoint_path: Optional[str], resume: bool) -> None:
    """Fail fast on ambiguous checkpoint requests.

    An existing journal is only consumed when the caller explicitly asked to
    resume; otherwise a stale file from an earlier sweep would silently
    masquerade as fresh progress.
    """
    if checkpoint_path is None:
        if resume:
            raise ConfigurationError(
                "resume=True requires checkpoint_path to name the journal"
            )
        return
    if os.path.exists(checkpoint_path) and not resume:
        raise CheckpointError(
            f"checkpoint journal {checkpoint_path!r} already exists; pass "
            "resume=True (--resume) to continue it, or remove the file to "
            "start over"
        )


class _ConciliatorOutcome(NamedTuple):
    """Per-trial record shipped back from workers (must stay picklable)."""

    agreement: int
    validity_failure: int
    individual_steps: float
    total_steps: float
    metrics: Optional[Dict[str, Any]] = None


class _ConsensusOutcome(NamedTuple):
    agreement_failure: int
    validity_failure: int
    individual_steps: float
    total_steps: float
    phases: Optional[float]
    metrics: Optional[Dict[str, Any]] = None


class _DecayOutcome(NamedTuple):
    series: List[int]
    metrics: Optional[Dict[str, Any]] = None


def _resolve_metrics(metrics: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """The registry a sweep aggregates into: explicit, else session default.

    Collection stays strictly opt-in: with no explicit registry and no
    session default (:func:`repro.obs.metrics.collecting`), trials run with
    the simulator's no-hook fast path and pay nothing.
    """
    return metrics if metrics is not None else get_default_registry()


_MODEL_OVERRIDES = threading.local()


@contextmanager
def model_overrides(
    *,
    register_model: Optional[RegisterModel] = None,
    adversary: Optional[AdversaryLike] = None,
) -> Iterator[None]:
    """Session-level model ladder overrides for every sweep in the block.

    The :func:`~repro.runtime.parallel.parallelism` analogue for the model
    axes: sweeps that were not given an explicit ``register_model=`` /
    ``adversary=`` pick up these defaults, so ``repro experiments
    --register-model regular`` can regenerate every table under a weakened
    model without threading parameters through each experiment builder.
    Explicit arguments still win over the session default.
    """
    previous = (
        getattr(_MODEL_OVERRIDES, "register_model", None),
        getattr(_MODEL_OVERRIDES, "adversary", None),
    )
    _MODEL_OVERRIDES.register_model = register_model
    _MODEL_OVERRIDES.adversary = adversary
    try:
        yield
    finally:
        _MODEL_OVERRIDES.register_model = previous[0]
        _MODEL_OVERRIDES.adversary = previous[1]


def _resolve_model(
    register_model: Optional[RegisterModel],
    adversary: Optional[AdversaryLike],
) -> Tuple[Optional[RegisterModel], Optional[AdversaryLike]]:
    """Explicit sweep arguments, else the session overrides; atomic → None."""
    if register_model is None:
        register_model = getattr(_MODEL_OVERRIDES, "register_model", None)
    if adversary is None:
        adversary = getattr(_MODEL_OVERRIDES, "adversary", None)
    if register_model is not None and register_model.is_atomic:
        register_model = None
    return register_model, adversary


def _reject_vectorized_model(
    backend: str,
    register_model: Optional[RegisterModel],
    adversary: Optional[AdversaryLike],
) -> None:
    """The vectorized kernels bake in atomic lockstep semantics."""
    if register_model is not None:
        raise ConfigurationError(
            f"backend {backend!r} executes batched atomic-register kernels "
            "and cannot apply a weakened register model; use the generator "
            "backend for regular/safe semantics"
        )
    if adversary is not None:
        raise ConfigurationError(
            f"backend {backend!r} only runs fixed lockstep schedules; "
            "adaptive/ladder adversaries need the generator backend"
        )


def _model_run_key_suffix(
    register_model: Optional[RegisterModel],
    adversary: Optional[AdversaryLike],
) -> str:
    """Checkpoint-key segments, present only when the axes are active, so
    journals from sweeps minted before the ladder keep their keys."""
    suffix = ""
    if register_model is not None:
        suffix += (
            f"|model={register_model.kind}:{register_model.seed}"
            f":{register_model.p_old}:{register_model.window}"
        )
    if adversary is not None:
        describe = getattr(adversary, "describe", None)
        label = describe() if describe else f"adaptive-{adversary.name}"
        suffix += f"|adversary={label}:{adversary.seed}"
    return suffix


def _trial_model_hooks(
    register_model: Optional[RegisterModel],
    trial_seeds: SeedTree,
    metrics: Optional[MetricsRegistry],
) -> List[Any]:
    """Per-trial step hooks for a declared weak register model."""
    if register_model is None:
        return []
    reseeded = replace(
        register_model,
        seed=trial_seeds.child("register-model").rng().randrange(2**32),
    )
    if metrics is not None:
        metrics.counter(
            "sweep.register_model", kind=register_model.kind
        ).inc()
    return [SemanticsInjector(reseeded)]


def _trial_adversary(
    adversary: AdversaryLike, trial_seeds: SeedTree
) -> Any:
    """A fresh, per-trial-seeded adversary instance (wrappers are stateful)."""
    reseeded = replace(
        adversary,
        seed=trial_seeds.child("adversary").rng().randrange(2**32),
    )
    return reseeded.build()


def _fold_trial_metrics(
    target: Optional[MetricsRegistry], outcomes: Sequence[Any]
) -> None:
    """Merge per-trial metric snapshots into ``target`` in trial order.

    Each trial records into a fresh registry inside its (possibly forked)
    worker and ships back a JSON snapshot; folding the snapshots by trial
    index — never by worker or completion order — keeps the aggregate
    registry bit-identical across all worker counts, matching the parallel
    contract the sweep statistics already obey.
    """
    if target is None:
        return
    for outcome in outcomes:
        if outcome.metrics is not None:
            target.merge_snapshot(outcome.metrics)


def run_conciliator_trials(
    factory: Callable[[], Conciliator],
    inputs: Sequence[Any],
    *,
    schedule_family: str = "random",
    trials: int = 100,
    master_seed: int = 0,
    allow_partial: Optional[bool] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    backend: str = "generator",
    register_model: Optional[RegisterModel] = None,
    adversary: Optional[AdversaryLike] = None,
) -> ConciliatorTrialStats:
    """Run ``trials`` independent executions of a conciliator.

    ``allow_partial`` defaults to True exactly for the crash adversary (its
    victims never finish); agreement and validity are then judged on the
    finished processes, as the wait-free model demands.

    ``register_model`` declares weakened register semantics
    (:class:`~repro.memory.semantics.RegisterModel`) and ``adversary``
    replaces the oblivious ``schedule_family`` with a choosing adversary —
    a ladder rung (:class:`~repro.runtime.adversary.AdversarySpec`) or the
    adaptive endpoint (:class:`~repro.runtime.adaptive.AdaptiveSpec`).
    Each trial reseeds the spec from its own seed branch, keeping sweeps
    pure functions of ``(master_seed, trial)``.  Both default to the
    session overrides installed by :func:`model_overrides`; the vectorized
    backends reject either axis loudly.

    ``backend`` selects the execution engine.  ``"generator"`` (default)
    steps every trial through the event-level simulator.  ``"vectorized"``
    batches thousands of trials as NumPy array programs — orders of
    magnitude faster, restricted to lockstep schedule families (see
    :func:`repro.runtime.vectorized.supported_families`) and drawing its
    randomness from per-block streams rather than per-trial generator
    streams.  ``"vectorized-oracle"`` replays the generator's exact
    per-trial streams through the same kernels, so its stats are
    bit-identical to the generator backend (this is the differential-test
    mode; it is not faster than the fast mode).  Vectorized backends reject
    ``allow_partial=True`` and explicit ``metrics``.

    ``workers``/``chunk_size`` shard the sweep across processes (see
    :mod:`repro.runtime.parallel`); ``None`` defers to the session default.
    Results are bit-identical across all worker counts and chunk sizes.
    ``factory`` must build a fresh, deterministic instance on every call —
    it runs once per trial, possibly in a forked worker.

    ``checkpoint_path`` journals completed trial chunks durably; a killed
    sweep re-run with ``resume=True`` replays the journal and continues,
    with stats bit-identical to an uninterrupted run.

    ``metrics`` optionally names a
    :class:`~repro.obs.metrics.MetricsRegistry` that aggregates per-trial
    simulator metrics (folded in trial order, so the aggregate is
    bit-identical across worker counts).  With no explicit registry the
    sweep falls back to the session default installed by
    :func:`repro.obs.metrics.collecting`, and collects nothing otherwise.
    """
    _validate_sweep(trials, len(inputs))
    _resolve_checkpoint(checkpoint_path, resume)
    register_model, adversary = _resolve_model(register_model, adversary)
    vectorized = _resolve_backend(
        backend, what="conciliator", allow_partial=allow_partial,
        metrics=metrics,
    )
    if vectorized:
        _reject_vectorized_model(backend, register_model, adversary)
        kind = _protocol_kind(factory())
        run_key = (
            f"conciliator|backend={backend}|kind={kind}|n={len(inputs)}"
            f"|trials={trials}|seed={master_seed}|schedule={schedule_family}"
        )
        sweep = run_vectorized_sweep(
            factory,
            inputs,
            schedule_family=schedule_family,
            trials=trials,
            master_seed=master_seed,
            oracle=backend == "vectorized-oracle",
            workers=workers,
            chunk_size=chunk_size,
            checkpoint_path=checkpoint_path,
            run_key=run_key,
        )
        return sweep.stats()
    if allow_partial is None:
        allow_partial = schedule_family == "crash-half"
    inputs = list(inputs)
    input_map = dict(enumerate(inputs))
    kind = _protocol_kind(factory())
    registry = _resolve_metrics(metrics)
    collect = registry is not None
    run_key = (
        f"conciliator|kind={kind}|n={len(inputs)}|trials={trials}"
        f"|seed={master_seed}|schedule={schedule_family}"
        f"|partial={int(allow_partial)}"
        + ("|metrics=1" if collect else "")
        + _model_run_key_suffix(register_model, adversary)
    )

    def task(trial: int) -> _ConciliatorOutcome:
        trial_seeds = trial_seed_tree(master_seed, trial)
        conciliator = factory()
        trial_registry = MetricsRegistry() if collect else None
        hooks = _trial_model_hooks(
            register_model, trial_seeds, trial_registry
        )
        if adversary is not None:
            if trial_registry is not None:
                from repro.obs.metrics import MetricsHook

                hooks = hooks + [MetricsHook(trial_registry)]
            result = run_adaptive_programs(
                [conciliator.program] * len(inputs),
                _trial_adversary(adversary, trial_seeds),
                trial_seeds,
                inputs=list(inputs),
                hooks=hooks,
            )
        else:
            schedule = _trial_schedule(
                schedule_family, conciliator.n, trial_seeds
            )
            result = _run_one_conciliator(
                conciliator, inputs, schedule, trial_seeds, allow_partial,
                metrics=trial_registry, hooks=hooks,
            )
        return _ConciliatorOutcome(
            agreement=int(result.agreement),
            validity_failure=int(not result.validity_holds(input_map)),
            individual_steps=float(result.max_individual_steps),
            total_steps=float(result.total_steps),
            metrics=None if trial_registry is None else trial_registry.to_json(),
        )

    outcomes = run_indexed_trials(
        task,
        trials,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_path=checkpoint_path,
        run_key=run_key,
    )
    _fold_trial_metrics(registry, outcomes)
    return ConciliatorTrialStats(
        n=len(inputs),
        trials=trials,
        agreement_count=sum(o.agreement for o in outcomes),
        individual_steps=summarize([o.individual_steps for o in outcomes]),
        total_steps=summarize([o.total_steps for o in outcomes]),
        validity_failures=sum(o.validity_failure for o in outcomes),
        kind=kind,
    )


def _run_one_conciliator(
    conciliator: Conciliator,
    inputs: Sequence[Any],
    schedule,
    trial_seeds: SeedTree,
    allow_partial: bool,
    metrics: Optional[MetricsRegistry] = None,
    hooks: Sequence[Any] = (),
) -> RunResult:
    from repro.runtime.simulator import run_programs

    programs = [conciliator.program] * len(inputs)
    return run_programs(
        programs,
        schedule,
        trial_seeds,
        inputs=list(inputs),
        allow_partial=allow_partial,
        metrics=metrics,
        hooks=list(hooks),
    )


def run_consensus_trials(
    factory: Callable[[], ConsensusProtocol],
    inputs: Sequence[Any],
    *,
    schedule_family: str = "random",
    trials: int = 50,
    master_seed: int = 0,
    allow_partial: Optional[bool] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    backend: str = "generator",
    register_model: Optional[RegisterModel] = None,
    adversary: Optional[AdversaryLike] = None,
) -> ConsensusTrialStats:
    """Run ``trials`` independent consensus executions and check safety.

    Accepts the same ``workers``/``chunk_size`` sharding,
    ``checkpoint_path``/``resume`` crash-safety, ``metrics`` aggregation,
    and ``register_model``/``adversary`` model-ladder knobs as
    :func:`run_conciliator_trials`, with the same bit-identical
    guarantees.  Only the ``"generator"`` backend applies: a consensus
    protocol's op sequence depends on its coin flips, so the
    occurrence-time factorization the vectorized kernels exploit does not
    exist (the vectorized backends are rejected with a clear error).
    """
    _validate_sweep(trials, len(inputs))
    _resolve_checkpoint(checkpoint_path, resume)
    register_model, adversary = _resolve_model(register_model, adversary)
    _resolve_backend(
        backend, what="consensus", allow_partial=allow_partial,
        metrics=metrics,
    )
    if allow_partial is None:
        allow_partial = schedule_family == "crash-half"
    inputs = list(inputs)
    input_map = dict(enumerate(inputs))
    kind = _protocol_kind(factory())
    registry = _resolve_metrics(metrics)
    collect = registry is not None
    run_key = (
        f"consensus|kind={kind}|n={len(inputs)}|trials={trials}"
        f"|seed={master_seed}|schedule={schedule_family}"
        f"|partial={int(allow_partial)}"
        + ("|metrics=1" if collect else "")
        + _model_run_key_suffix(register_model, adversary)
    )

    def task(trial: int) -> _ConsensusOutcome:
        from repro.runtime.simulator import run_programs

        trial_seeds = trial_seed_tree(master_seed, trial)
        protocol = factory()
        programs = [protocol.program] * protocol.n
        trial_registry = MetricsRegistry() if collect else None
        hooks = _trial_model_hooks(
            register_model, trial_seeds, trial_registry
        )
        if adversary is not None:
            if trial_registry is not None:
                from repro.obs.metrics import MetricsHook

                hooks = hooks + [MetricsHook(trial_registry)]
            result = run_adaptive_programs(
                programs,
                _trial_adversary(adversary, trial_seeds),
                trial_seeds,
                inputs=list(inputs),
                hooks=hooks,
            )
        else:
            schedule = _trial_schedule(
                schedule_family, protocol.n, trial_seeds
            )
            result = run_programs(
                programs,
                schedule,
                trial_seeds,
                inputs=list(inputs),
                allow_partial=allow_partial,
                metrics=trial_registry,
                hooks=hooks,
            )
        phases: Optional[float] = None
        if protocol.phases_used:
            phases = float(max(protocol.phases_used.values()))
        if trial_registry is not None and phases is not None:
            trial_registry.histogram("consensus.phases").observe(phases)
        return _ConsensusOutcome(
            agreement_failure=int(not result.agreement),
            validity_failure=int(not result.validity_holds(input_map)),
            individual_steps=float(result.max_individual_steps),
            total_steps=float(result.total_steps),
            phases=phases,
            metrics=None if trial_registry is None else trial_registry.to_json(),
        )

    outcomes = run_indexed_trials(
        task,
        trials,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_path=checkpoint_path,
        run_key=run_key,
    )
    _fold_trial_metrics(registry, outcomes)
    phase_samples = [o.phases for o in outcomes if o.phases is not None]
    return ConsensusTrialStats(
        n=len(inputs),
        trials=trials,
        agreement_failures=sum(o.agreement_failure for o in outcomes),
        validity_failures=sum(o.validity_failure for o in outcomes),
        individual_steps=summarize([o.individual_steps for o in outcomes]),
        total_steps=summarize([o.total_steps for o in outcomes]),
        phases=summarize(phase_samples if phase_samples else [0.0]),
        kind=kind,
    )


def decay_series(
    factory: Callable[[], Conciliator],
    inputs: Sequence[Any],
    *,
    schedule_family: str = "random",
    trials: int = 50,
    master_seed: int = 0,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    backend: str = "generator",
) -> List[float]:
    """Mean distinct-survivor counts ``Y_i`` per round across trials.

    Entry ``i`` is the average, over trials, of the number of distinct
    personae held by processes after completing round ``i+1`` — the measured
    counterpart of the decay bounds in Lemmas 1 and 3/4.  ``metrics``
    aggregates per-trial simulator metrics exactly as in
    :func:`run_conciliator_trials`, and ``backend`` selects the execution
    engine under the same rules (the vectorized kernels track per-round
    survivor rows, so the folded series has the same shape; in oracle mode
    it is bit-identical to the generator's).
    """
    _validate_sweep(trials, len(inputs))
    _resolve_checkpoint(checkpoint_path, resume)
    vectorized = _resolve_backend(
        backend, what="decay", allow_partial=None, metrics=metrics,
    )
    if vectorized:
        kind = _protocol_kind(factory())
        run_key = (
            f"decay|backend={backend}|kind={kind}|n={len(inputs)}"
            f"|trials={trials}|seed={master_seed}|schedule={schedule_family}"
        )
        sweep = run_vectorized_sweep(
            factory,
            inputs,
            schedule_family=schedule_family,
            trials=trials,
            master_seed=master_seed,
            oracle=backend == "vectorized-oracle",
            workers=workers,
            chunk_size=chunk_size,
            checkpoint_path=checkpoint_path,
            run_key=run_key,
            collect_survivors=True,
        )
        return sweep.decay_series()
    inputs = list(inputs)
    kind = _protocol_kind(factory())
    registry = _resolve_metrics(metrics)
    collect = registry is not None
    run_key = (
        f"decay|kind={kind}|n={len(inputs)}|trials={trials}"
        f"|seed={master_seed}|schedule={schedule_family}"
        + ("|metrics=1" if collect else "")
    )

    def task(trial: int) -> _DecayOutcome:
        trial_seeds = trial_seed_tree(master_seed, trial)
        conciliator = factory()
        schedule = _trial_schedule(schedule_family, conciliator.n, trial_seeds)
        trial_registry = MetricsRegistry() if collect else None
        run_conciliator(
            conciliator, inputs, schedule, trial_seeds, metrics=trial_registry
        )
        series = list(conciliator.survivor_series())
        if trial_registry is not None:
            trial_registry.histogram("conciliator.rounds").observe(len(series))
        return _DecayOutcome(
            series=series,
            metrics=None if trial_registry is None else trial_registry.to_json(),
        )

    outcomes = run_indexed_trials(
        task,
        trials,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_path=checkpoint_path,
        run_key=run_key,
    )
    _fold_trial_metrics(registry, outcomes)
    sums: Dict[int, float] = {}
    rounds_seen = 0
    for outcome in outcomes:
        series = outcome.series
        rounds_seen = max(rounds_seen, len(series))
        for index, count in enumerate(series):
            sums[index] = sums.get(index, 0.0) + count
    return [sums.get(index, 0.0) / trials for index in range(rounds_seen)]
