"""The paper's predicted quantities, as executable formulas.

Every experiment in EXPERIMENTS.md prints a "paper" column next to the
measured one; this module is where those columns come from.  Nothing here
runs a simulation — these are the closed forms proved in the paper (and the
introduction's comparison curves).
"""

from __future__ import annotations

import math
from typing import List

from typing import Any, Dict

from repro.core.probabilities import (
    SIFT_TAIL_FACTOR,
    iterate_snapshot_f,
    sift_x,
)
from repro.core.rounds import (
    sifting_rounds,
    sifting_switch_round,
    snapshot_rounds,
)
from repro.errors import ConfigurationError

__all__ = [
    "harmonic",
    "snapshot_decay_bound",
    "sifting_decay_bound",
    "snapshot_step_count",
    "sifting_step_count",
    "doubling_cil_step_bound",
    "cil_total_steps_bound",
    "cil_inner_rounds",
    "cil_individual_step_bound",
    "markov_disagreement_bound",
    "ATTRIBUTION_ALGORITHMS",
    "predicted_attribution",
]


def harmonic(m: int) -> float:
    """The harmonic number ``H_m``: the exact per-round survivor bound in
    Lemma 1's proof (``E[Y_{i+1} | Y_i = m] <= H_m``)."""
    if m < 0:
        raise ConfigurationError(f"harmonic number needs m >= 0, got {m}")
    return sum(1.0 / k for k in range(1, m + 1))


def snapshot_decay_bound(n: int, rounds: int) -> List[float]:
    """Theorem 1's excess-persona bound per round: ``E[X_i] <= f^(i)(n-1)``.

    Entry ``i`` (0-based) is the bound after round ``i+1``.  The iteration
    starts from ``X_0 = n - 1`` (id-consensus worst case).
    """
    return [iterate_snapshot_f(n - 1, i + 1) for i in range(rounds)]


def sifting_decay_bound(n: int, rounds: int) -> List[float]:
    """Lemmas 3 and 4: ``E[X_i] <= x_i`` up to the switch, then ``*(3/4)``.

    Entry ``i`` (0-based) is the bound after round ``i+1``.
    """
    switch = sifting_switch_round(n)
    bounds: List[float] = []
    for round_number in range(1, rounds + 1):
        if round_number <= switch:
            bounds.append(sift_x(round_number, n))
        else:
            at_switch = sift_x(switch, n) if switch > 0 else float(n - 1)
            bounds.append(at_switch * SIFT_TAIL_FACTOR ** (round_number - switch))
    return bounds


def snapshot_step_count(n: int, epsilon: float) -> int:
    """Exact individual steps of Algorithm 1: 2 per round (update + scan)."""
    return 2 * snapshot_rounds(n, epsilon)


def sifting_step_count(n: int, epsilon: float) -> int:
    """Exact individual steps of Algorithm 2: 1 per round."""
    return sifting_rounds(n, epsilon)


def doubling_cil_step_bound(n: int) -> int:
    """Worst-case individual steps of the O(log n) baseline conciliator."""
    return 2 * max(1, math.ceil(math.log2(2 * n)) + 1)


def cil_total_steps_bound(n: int) -> float:
    """Theorem 3's expected-total-steps budget for the main loop.

    Each loop iteration independently writes ``proposal`` with probability
    ``1/(4n)``, so the expected number of iterations across all processes
    before the first write is at most ``4n``, each costing at most 2 steps
    (``8n``).  After the first write, every process finishes its current
    iteration and exits at its next read (at most one more iteration, ``2n``
    total), and the combine stage costs at most 7 steps per process
    (``7n``).  Explicit budget: ``8n + 2n + 7n = 17n``; we report ``20n``
    in EXPERIMENTS.md to absorb the variance of the geometric first-write
    time in finite samples.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return 20.0 * n


def cil_inner_rounds(n: int) -> int:
    """Rounds of Algorithm 3's embedded sifter, run with ``eps = 1/4``.

    Theorem 3 fixes the inner conciliator's disagreement budget at 1/4
    (``INNER_EPSILON`` in :mod:`repro.core.cil_embedded`), so the inner
    round count is ``sifting_rounds(n, 1/4)`` regardless of any outer
    epsilon.
    """
    return sifting_rounds(n, 0.25)


def cil_individual_step_bound(n: int) -> int:
    """Worst-case individual steps of Algorithm 3's full program.

    Mirrors :func:`repro.fuzz.stacks.conciliator_budget`: each main-loop
    iteration costs one proposal read plus one inner-sifter step
    (``2 * inner``), plus three loop-exit operations, plus the combine
    stage — a binary adopt-commit (``1 + 2 + 2 = 5`` steps) bracketed by
    one ``out[side]`` write and one ``out[chosen]`` read.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    binary_ac_steps = 5
    return 2 * cil_inner_rounds(n) + 3 + binary_ac_steps + 2


#: Algorithm families the attribution report has closed-form predictions for.
ATTRIBUTION_ALGORITHMS = ("snapshot", "sifting", "cil-embedded")


def predicted_attribution(
    algorithm: str, n: int, epsilon: float = 0.5
) -> Dict[str, Any]:
    """Closed-form per-round predictions for one algorithm family.

    Returns a plain dict consumed by
    :func:`repro.obs.analyze.attribute_steps`:

    - ``rounds``: predicted round count (exact for Algorithms 1-2; for
      Algorithm 3 the inner sifter's round count, an upper bound on how
      many inner rounds any process executes before exiting via the CIL
      proposal);
    - ``steps_per_round``: shared-memory operations per round per process
      (2 for Algorithm 1's update+scan, 1 for Algorithm 2's single
      read-or-write, 1 for Algorithm 3's inner sifter);
    - ``individual_steps``: per-process step prediction over the whole
      protocol (exact for Algorithms 1-2, the worst-case bound for 3);
    - ``relation``: ``"exact"`` when observed values must equal the
      prediction on a completed run, ``"upper-bound"`` when observed
      values must not exceed it.

    For Algorithm 3 the ``epsilon`` argument is ignored: Theorem 3 pins
    the inner conciliator at ``eps = 1/4``, and the returned ``epsilon``
    field records that effective value.
    """
    if algorithm == "snapshot":
        rounds = snapshot_rounds(n, epsilon)
        return {
            "algorithm": algorithm, "n": n, "epsilon": epsilon,
            "rounds": rounds, "steps_per_round": 2,
            "individual_steps": 2 * rounds, "relation": "exact",
        }
    if algorithm == "sifting":
        rounds = sifting_rounds(n, epsilon)
        return {
            "algorithm": algorithm, "n": n, "epsilon": epsilon,
            "rounds": rounds, "steps_per_round": 1,
            "individual_steps": rounds, "relation": "exact",
        }
    if algorithm == "cil-embedded":
        rounds = cil_inner_rounds(n)
        return {
            "algorithm": algorithm, "n": n, "epsilon": 0.25,
            "rounds": rounds, "steps_per_round": 1,
            "individual_steps": cil_individual_step_bound(n),
            "relation": "upper-bound",
        }
    raise ConfigurationError(
        f"no attribution prediction for algorithm {algorithm!r}; "
        f"choose from {ATTRIBUTION_ALGORITHMS}"
    )


def markov_disagreement_bound(expected_excess: float) -> float:
    """Markov's inequality step used in Theorems 1 and 2:
    ``Pr[X > 0] <= E[X]`` for integer-valued ``X >= 0``."""
    if expected_excess < 0:
        raise ConfigurationError("expected excess must be non-negative")
    return min(1.0, expected_excess)
