"""Aligned-text table rendering for benchmark and example output.

The benchmark harness reproduces the paper's claims as printed tables
("paper" column vs "measured" column); this module keeps that formatting in
one place so every experiment reads the same way.
"""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["render_table", "format_float"]


def format_float(value: Any, digits: int = 3) -> str:
    """Format numbers compactly; pass other values through as str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
    digits: int = 3,
) -> str:
    """Render an aligned monospace table with optional title."""
    text_rows: List[List[str]] = [
        [format_float(cell, digits) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
