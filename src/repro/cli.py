"""Command-line interface: run protocols and experiments from a shell.

Installed as ``python -m repro``.  Subcommands:

- ``consensus``    run one consensus execution and print the outcome
- ``conciliator``  estimate a conciliator's agreement rate and step counts
- ``decay``        print a survivor-decay table against the paper's bound
- ``tas``          run test-and-set trials and report the winner statistics
- ``experiments``  regenerate the paper's experiment tables (E1-E12)
- ``probe``        tabulate agreement vs adversary-ladder rung and
  register model (oblivious < noisy < late-δ < adaptive; atomic/regular/safe)
- ``fuzz``         chaos-fuzz random protocol/schedule/fault scenarios
- ``replay``       re-run the regression corpus and report reproduction
- ``explain``      replay one corpus case under a full trace and print
  its persona-lineage / disagreement / step-attribution analysis
- ``timeline``     render a per-process ASCII (or HTML) timeline of a
  corpus case or a saved trace JSONL
- ``bench``        run the curated perf suite, write ``BENCH_<label>.json``
- ``bench compare`` gate one bench report against another (CI perf gate)
- ``bench trend``  summarize the append-only BENCH_history.jsonl ledger
- ``growth``       sweep n over decades to 10^6 and emit the deterministic
  asymptotic separation curves (``GROWTH_<label>.json``); ``--baseline``
  byte-gates the result against a committed report (CI scale-smoke)
- ``serve``        expose consensus rounds as sessions over a JSON-lines
  TCP endpoint (the consensus-as-a-service front end)
- ``loadtest``     replay a seeded open-loop traffic profile against the
  service on a virtual-time loop and emit a deterministic SLO report
  (``--spans DIR`` persists every session's span tree)
- ``slo trend``    summarize the append-only SLO_history.jsonl ledger
- ``slo waterfall`` render one session's span tree as an ASCII or HTML
  waterfall chart from a ``loadtest --spans`` file

Every command takes ``--seed`` and is fully reproducible; schedules come
from the named adversary families in ``repro.workloads.schedules``.  Trial
sweeps accept ``--workers``/``--chunk-size`` to shard trials across
processes — results are bit-identical to a serial run for any worker count
(``--workers 0`` uses every available CPU).  Long sweeps accept
``--checkpoint PATH`` to journal finished trial chunks and ``--resume`` to
continue a killed sweep from that journal with bit-identical statistics.
The ``conciliator`` and ``decay`` sweeps additionally accept
``--backend vectorized`` to run trials on the NumPy mass-trial backend
(orders of magnitude faster; lockstep ``--schedule`` families only) and
``--backend vectorized-oracle`` for the generator-stream replay mode used
by the differential test suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.experiments import decay_series, run_conciliator_trials
from repro.analysis.tables import render_table
from repro.analysis.theory import sifting_decay_bound, snapshot_decay_bound
from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.consensus import (
    register_consensus,
    run_consensus,
    snapshot_consensus,
)
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ReproError
from repro.fuzz.stacks import service_chaos_names
from repro.runtime.adaptive import ADAPTIVE_FAMILIES
from repro.runtime.parallel import parallelism
from repro.runtime.rng import SeedTree
from repro.runtime.simulator import run_programs
from repro.runtime.vectorized import BACKENDS
from repro.service.loadgen import PROFILES
from repro.workloads.inputs import standard_input_gallery
from repro.workloads.schedules import (
    ALL_SCHEDULE_FAMILIES,
    SCHEDULE_FAMILIES,
    make_schedule,
)
from repro.workloads.search import SEARCH_STRATEGIES

__all__ = ["main", "build_parser"]

CONCILIATORS = {
    "snapshot": lambda n: SnapshotConciliator(n),
    "snapshot-maxreg": lambda n: SnapshotConciliator(n, use_max_registers=True),
    "sifting": lambda n: SiftingConciliator(n),
    "cil-embedded": lambda n: CILEmbeddedConciliator(n),
    "doubling-cil": lambda n: DoublingCILConciliator(n),
}


def _add_parallel_arguments(subparser: argparse.ArgumentParser) -> None:
    """Attach the trial-sharding knobs shared by sweep subcommands."""
    subparser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the trial sweep; 0 = all CPUs, "
             "1 = in-process (default). Results are identical either way.",
    )
    subparser.add_argument(
        "--chunk-size", type=int, default=None,
        help="trials dispatched per work unit (default: auto). "
             "Affects scheduling only, never results.",
    )


def _add_model_arguments(
    subparser: argparse.ArgumentParser, *, adversary_kinds: Sequence[str]
) -> None:
    """Attach the model-ladder knobs shared by sweep subcommands."""
    subparser.add_argument(
        "--register-model", choices=["atomic", "regular", "safe"],
        default=None, metavar="KIND",
        help="declared register semantics: atomic (default), regular, or "
             "safe; weakened reads are resolved by a seeded deterministic "
             "policy (generator backend only)",
    )
    subparser.add_argument(
        "--adversary", choices=list(adversary_kinds), default=None,
        help="replace the oblivious schedule with a choosing adversary: a "
             "ladder rung (noisy, late) or a fully adaptive strategy "
             "(generator backend only)",
    )
    subparser.add_argument(
        "--inner", type=str, default="sift-killer", metavar="STRATEGY",
        help="adaptive strategy wrapped by the noisy/late rungs "
             "(default: sift-killer)",
    )
    subparser.add_argument(
        "--delay", type=int, default=4, metavar="D",
        help="late adversary: decisions lag the run by D choices "
             "(default: 4)",
    )
    subparser.add_argument(
        "--noise", type=float, default=0.5, metavar="S",
        help="noisy adversary: probability each slot is a uniform random "
             "runnable process instead of the inner pick (default: 0.5)",
    )


def _parse_model_arguments(args: argparse.Namespace):
    """The (register_model, adversary) pair an argparse namespace pins."""
    from repro.memory.semantics import RegisterModel
    from repro.runtime.adaptive import ADAPTIVE_FAMILIES, AdaptiveSpec
    from repro.runtime.adversary import AdversarySpec

    model = None
    if args.register_model is not None and args.register_model != "atomic":
        model = RegisterModel(args.register_model, seed=args.seed)
    adversary = None
    if args.adversary is not None:
        if args.adversary in ADAPTIVE_FAMILIES:
            adversary = AdaptiveSpec(args.adversary, seed=args.seed)
        else:
            adversary = AdversarySpec(
                args.adversary, inner=args.inner, seed=args.seed,
                delay=args.delay, noise=args.noise,
            )
    return model, adversary


def _add_checkpoint_arguments(subparser: argparse.ArgumentParser) -> None:
    """Attach the crash-safety knobs shared by long sweep subcommands."""
    subparser.add_argument(
        "--checkpoint", type=str, default=None, metavar="PATH",
        help="journal completed trial chunks to PATH so a killed sweep "
             "can be resumed. Never changes results.",
    )
    subparser.add_argument(
        "--resume", action="store_true",
        help="replay an existing --checkpoint journal and run only the "
             "remaining trials; stats are bit-identical to an "
             "uninterrupted run.",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Randomized consensus with an oblivious adversary "
                    "(Aspnes, PODC 2012) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    consensus = sub.add_parser("consensus", help="run one consensus execution")
    consensus.add_argument("--model", choices=["register", "snapshot", "linear"],
                           default="register")
    consensus.add_argument("--n", type=int, default=16)
    consensus.add_argument("--workload",
                           choices=["distinct", "binary", "four-valued",
                                    "skewed", "unanimous"],
                           default="distinct")
    consensus.add_argument("--schedule", choices=list(ALL_SCHEDULE_FAMILIES),
                           default="random")
    consensus.add_argument("--seed", type=int, default=2012)

    conciliator = sub.add_parser(
        "conciliator", help="estimate agreement rate over repeated trials"
    )
    conciliator.add_argument("--algorithm", choices=list(CONCILIATORS),
                             default="sifting")
    conciliator.add_argument("--n", type=int, default=16)
    conciliator.add_argument("--trials", type=int, default=100)
    conciliator.add_argument("--schedule", choices=list(ALL_SCHEDULE_FAMILIES),
                             default="random")
    conciliator.add_argument("--seed", type=int, default=2012)
    conciliator.add_argument(
        "--backend", choices=list(BACKENDS), default="generator",
        help="execution engine: the event-level generator simulator "
             "(default), the NumPy mass-trial backend (vectorized; "
             "lockstep schedule families only), or the generator-stream "
             "replay used by the differential tests (vectorized-oracle)",
    )
    _add_model_arguments(
        conciliator,
        adversary_kinds=["noisy", "late"] + sorted(ADAPTIVE_FAMILIES),
    )
    _add_parallel_arguments(conciliator)
    _add_checkpoint_arguments(conciliator)

    decay = sub.add_parser("decay", help="survivor decay vs the paper bound")
    decay.add_argument("--algorithm", choices=["snapshot", "sifting"],
                       default="sifting")
    decay.add_argument("--n", type=int, default=64)
    decay.add_argument("--trials", type=int, default=40)
    decay.add_argument("--schedule", choices=list(ALL_SCHEDULE_FAMILIES),
                       default="random")
    decay.add_argument("--seed", type=int, default=2012)
    decay.add_argument(
        "--backend", choices=list(BACKENDS), default="generator",
        help="execution engine (see `repro conciliator --help`); the "
             "vectorized backends require a lockstep --schedule such as "
             "permuted or interleaved",
    )
    decay.add_argument("--plot", action="store_true",
                       help="also render an ASCII chart of the curves")
    _add_parallel_arguments(decay)
    _add_checkpoint_arguments(decay)

    search = sub.add_parser(
        "search", help="search for the worst oblivious schedule"
    )
    search.add_argument("--algorithm", choices=["snapshot", "sifting"],
                        default="sifting")
    search.add_argument("--n", type=int, default=8)
    search.add_argument("--generations", type=int, default=20)
    search.add_argument("--trials", type=int, default=8)
    search.add_argument("--seed", type=int, default=2012)
    search.add_argument(
        "--strategy", choices=list(SEARCH_STRATEGIES), default="hill-climb",
        help="candidate proposal strategy: mutation hill-climb (default) "
             "or a UCB1 bandit over the schedule families",
    )
    search.add_argument("--metrics", action="store_true",
                        help="print the search telemetry counters")

    tas = sub.add_parser("tas", help="test-and-set trials (E14 machinery)")
    tas.add_argument("--n", type=int, default=16)
    tas.add_argument("--trials", type=int, default=50)
    tas.add_argument("--seed", type=int, default=2012)

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's experiment tables"
    )
    experiments.add_argument("--scale", type=float, default=0.25)
    experiments.add_argument("--only", type=str, default="",
                             help="comma-separated ids, e.g. E1,E5")
    experiments.add_argument("--seed", type=int, default=2012,
                             help="seed for any --register-model/--adversary "
                                  "override specs")
    _add_model_arguments(
        experiments,
        adversary_kinds=["noisy", "late"] + sorted(ADAPTIVE_FAMILIES),
    )
    _add_parallel_arguments(experiments)

    probe = sub.add_parser(
        "probe",
        help="tabulate agreement rate vs adversary-ladder rung "
             "(oblivious < noisy < late < adaptive) and register model "
             "(atomic/regular/safe) at fixed (n, trials)",
    )
    probe.add_argument("--n", type=int, default=8)
    probe.add_argument("--trials", type=int, default=400)
    probe.add_argument("--seed", type=int, default=2012)
    probe.add_argument(
        "--algorithms", type=str, default="sifting",
        help="comma-separated conciliators to sweep along the ladder "
             "(default: sifting; the register-model leg always runs both)",
    )
    probe.add_argument(
        "--inner", type=str, default="pending-reads", metavar="STRATEGY",
        help="adaptive strategy wrapped by the noisy/late rungs and used "
             "as the adaptive endpoint (default: pending-reads)",
    )
    probe.add_argument("--noise", type=float, default=0.8, metavar="S",
                       help="noisy rung strength (default: 0.8)")
    probe.add_argument("--delay", type=int, default=1, metavar="D",
                       help="late rung view delay (default: 1)")
    probe.add_argument("--json", action="store_true",
                       help="print the full report as JSON")
    probe.add_argument("--out", type=str, default=None, metavar="PATH",
                       help="also write the report JSON to PATH "
                            "(e.g. benchmarks/PROBE_ladder.json)")
    _add_parallel_arguments(probe)

    fuzz = sub.add_parser(
        "fuzz",
        help="chaos-fuzz random protocol/schedule/fault scenarios under "
             "the full oracle suite",
    )
    # Not required=True: --list-stacks works without a sizing mode; the
    # handler enforces exactly-one-of otherwise.
    sizing = fuzz.add_mutually_exclusive_group()
    sizing.add_argument(
        "--trials", type=int, default=None,
        help="run exactly this many scenarios (supports --checkpoint)",
    )
    sizing.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="keep launching scenario waves until this wall-clock budget "
             "expires",
    )
    fuzz.add_argument("--seed", type=int, default=2012,
                      help="master seed; the scenario sequence is a pure "
                           "function of (seed, config)")
    fuzz.add_argument(
        "--stacks", type=str, default="",
        help="comma-separated stack names to fuzz (default: every honest "
             "stack); see --list-stacks",
    )
    fuzz.add_argument("--list-stacks", action="store_true",
                      help="print the registered stack names and exit")
    fuzz.add_argument(
        "--corpus", type=str, default=None, metavar="DIR",
        help="write minimized reproducers for oracle violations into DIR "
             "(e.g. tests/corpus)",
    )
    shrink_group = fuzz.add_mutually_exclusive_group()
    shrink_group.add_argument(
        "--shrink", dest="shrink", action="store_true", default=True,
        help="delta-debug violations down to minimal reproducers (default)",
    )
    shrink_group.add_argument(
        "--no-shrink", dest="shrink", action="store_false",
        help="record violating scenarios verbatim, skipping minimization",
    )
    fuzz.add_argument(
        "--allow-out-of-model", action="store_true",
        help="also inject out-of-model register faults (lossy writes, "
             "stale reads); safety oracles other than validity/termination "
             "are demoted to degradations for those scenarios",
    )
    fuzz.add_argument("--min-n", type=int, default=2)
    fuzz.add_argument("--max-n", type=int, default=5)
    fuzz.add_argument(
        "--no-adaptive", dest="include_adaptive", action="store_false",
        default=True,
        help="draw only oblivious schedule families, no adaptive adversaries",
    )
    fuzz.add_argument(
        "--trial-wall-clock", type=float, default=None, metavar="SECONDS",
        help="per-trial wall-clock safety valve (default: 30)",
    )
    _add_model_arguments(fuzz, adversary_kinds=["noisy", "late"])
    fuzz.add_argument("--json", action="store_true",
                      help="print the full campaign report as JSON")
    fuzz.add_argument(
        "--metrics", action="store_true",
        help="collect the metrics registry across all trials and include "
             "the aggregate snapshot in the campaign report",
    )
    fuzz.add_argument(
        "--explain", action="store_true",
        help="write a <case>.explain.json trace-analytics explanation "
             "next to every corpus case saved (requires --corpus)",
    )
    _add_parallel_arguments(fuzz)
    _add_checkpoint_arguments(fuzz)

    replay = sub.add_parser(
        "replay", help="re-run the regression corpus and check each case "
                       "still fires its recorded oracles",
    )
    replay.add_argument("--corpus", type=str, default="tests/corpus",
                        metavar="DIR", help="corpus directory to replay")
    replay.add_argument("--json", action="store_true",
                        help="print per-case verdicts as JSON")
    replay.add_argument(
        "--explain", action="store_true",
        help="also replay each case under a full trace and summarize its "
             "disagreement / attribution analysis",
    )
    replay.add_argument(
        "--explain-dir", type=str, default=None, metavar="DIR",
        help="with --explain: write <case>.explain.json and "
             "<case>.trace.jsonl artifacts into DIR",
    )

    explain = sub.add_parser(
        "explain",
        help="replay one corpus case under a full (unsampled) trace and "
             "print its persona-lineage, disagreement, and "
             "step-attribution analysis",
    )
    explain.add_argument("case", help="corpus case file (case-*.json)")
    explain.add_argument("--json", action="store_true",
                         help="print the full explanation as canonical JSON")
    explain.add_argument("--out", type=str, default=None, metavar="PATH",
                         help="also write the explanation JSON to PATH")
    explain.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="also write the replay's trace events as JSONL to PATH",
    )

    timeline = sub.add_parser(
        "timeline",
        help="render a deterministic per-process timeline of a corpus "
             "case (replayed under a full trace) or a saved trace JSONL",
    )
    timeline_source = timeline.add_mutually_exclusive_group(required=True)
    timeline_source.add_argument(
        "--case", type=str, default=None, metavar="FILE",
        help="corpus case file to replay and render",
    )
    timeline_source.add_argument(
        "--trace", type=str, default=None, metavar="FILE",
        help="trace JSONL file to render directly",
    )
    timeline.add_argument("--width", type=int, default=100,
                          help="maximum line width (default: 100)")
    timeline.add_argument(
        "--html", type=str, default=None, metavar="PATH",
        help="also write a static HTML rendering to PATH",
    )

    from repro.obs.bench import DEFAULT_THRESHOLD, SUITE_NAMES

    bench = sub.add_parser(
        "bench",
        help="run the curated perf suite and emit a machine-readable "
             "BENCH_<label>.json report",
    )
    bench.add_argument("--quick", action="store_true",
                       help="CI-sized suite (seconds instead of tens of "
                            "seconds); results are labeled as quick and "
                            "only comparable to other quick runs")
    bench.add_argument("--label", type=str, default="local",
                       help="report label; names the output file "
                            "BENCH_<label>.json (default: local)")
    bench.add_argument("--seed", type=int, default=2012)
    bench.add_argument("--suite", type=str, default="",
                       help="comma-separated case names to run "
                            f"(default: all of {', '.join(SUITE_NAMES)})")
    bench.add_argument("--out", type=str, default=None, metavar="PATH",
                       help="write the report to PATH (a directory gets "
                            "the canonical BENCH_<label>.json name)")
    bench.add_argument("--json", action="store_true",
                       help="print the full report as JSON on stdout")
    bench.add_argument(
        "--history", type=str, nargs="?", default=None,
        const="benchmarks/BENCH_history.jsonl", metavar="PATH",
        help="append this run's steps/sec (plus git SHA) to the bench "
             "trend ledger at PATH (default when the flag is given "
             "without a value: benchmarks/BENCH_history.jsonl)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command")
    bench_compare = bench_sub.add_parser(
        "compare",
        help="compare a new bench report against a baseline (per-case "
             "percent deltas; exit 0/1/2, see --help)",
        description="Compare a candidate bench report against a baseline, "
                    "printing per-case percent deltas.",
        epilog="Exit codes: 0 = every case within the threshold; "
               "1 = at least one case's steps/sec regressed past the "
               "threshold (or a baseline case is missing from the "
               "candidate); 2 = usage or configuration error (unreadable "
               "report, foreign schema version, bad threshold).",
    )
    bench_compare.add_argument("old", help="baseline BENCH_*.json")
    bench_compare.add_argument("new", help="candidate BENCH_*.json")
    bench_compare.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed fractional steps/sec drop per case before the gate "
             f"fails (default: {DEFAULT_THRESHOLD})",
    )
    bench_compare.add_argument("--json", action="store_true",
                               help="print the comparison as JSON")
    bench_trend = bench_sub.add_parser(
        "trend",
        help="summarize per-case steps/sec deltas across the append-only "
             "BENCH_history.jsonl ledger",
    )
    bench_trend.add_argument(
        "--history", type=str, default="benchmarks/BENCH_history.jsonl",
        metavar="PATH", help="ledger file to summarize "
                             "(default: benchmarks/BENCH_history.jsonl)",
    )
    bench_trend.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only summarize the newest N ledger entries",
    )
    bench_trend.add_argument("--json", action="store_true",
                             help="print the trend summary as JSON")

    from repro.analysis.growth import DEFAULT_MAX_N, QUICK_MAX_N

    growth = sub.add_parser(
        "growth",
        help="sweep n over decades to the million-process regime and emit "
             "the deterministic GROWTH_<label>.json separation curves",
        description="Run the asymptotic growth-curve experiment: ensemble "
                    "per-process work for the snapshot/sifting conciliators "
                    "and the DoublingCIL baseline on the vectorized backend, "
                    "the baseline's solo-run log-n ladder on the generator "
                    "backend, and a sparse/streaming shared-state probe at "
                    "the largest decade.  The report is a pure function of "
                    "(seed, epsilon, max-n) — no wall clock or git SHA — so "
                    "CI byte-compares it against a committed baseline.",
        epilog="Exit codes: 0 = curves computed and self-checks passed "
               "(and the baseline matched, when --baseline is given); "
               "1 = self-checks failed or the baseline diverged; "
               "2 = usage or configuration error.",
    )
    growth.add_argument("--quick", action="store_true",
                        help=f"stop the sweep at n={QUICK_MAX_N:,} (the CI "
                             "scale-smoke size) instead of "
                             f"n={DEFAULT_MAX_N:,}")
    growth.add_argument("--max-n", type=int, default=None, metavar="N",
                        help="override the largest decade explicitly "
                             "(wins over --quick)")
    growth.add_argument("--label", type=str, default="local",
                        help="report label; names the output file "
                             "GROWTH_<label>.json (default: local)")
    growth.add_argument("--seed", type=int, default=2012)
    growth.add_argument("--epsilon", type=float, default=0.5)
    growth.add_argument("--out", type=str, default=None, metavar="PATH",
                        help="write the report to PATH (a directory gets "
                             "the canonical GROWTH_<label>.json name)")
    growth.add_argument("--baseline", type=str, default=None, metavar="PATH",
                        help="byte-compare this run's deterministic view "
                             "against the committed report at PATH and fail "
                             "on any divergence (the scale-smoke gate)")
    growth.add_argument("--json", action="store_true",
                        help="print the full report as JSON on stdout")

    serve = sub.add_parser(
        "serve",
        help="serve consensus rounds as sessions over JSON-lines TCP",
        description="Bind the consensus service to a TCP endpoint: one "
                    "SessionRequest JSON object per line in, one "
                    "SessionResponse JSON line out.  Runs the same "
                    "service code as 'loadtest', on the real clock.",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8737,
                       help="TCP port (0 = pick a free one; default 8737)")
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--workers-per-shard", type=int, default=2)
    serve.add_argument("--queue-capacity", type=int, default=16,
                       help="max concurrent admitted sessions per shard; "
                            "the rest are rejected with queue-full")
    serve.add_argument("--seed", type=int, default=0,
                       help="service-side randomness seed (retry jitter)")
    serve.add_argument("--chaos", type=str, default=None, metavar="NAME",
                       help="inject a named service chaos stack "
                            f"({', '.join(service_chaos_names())})")
    serve.add_argument(
        "--stats-interval", type=float, default=None, metavar="SECONDS",
        help="periodically print the service's health summary (the same "
             "document the {\"cmd\": \"health\"} control verb returns) to "
             "stderr every SECONDS seconds",
    )
    serve.add_argument(
        "--span-capacity", type=int, default=1024, metavar="N",
        help="ring-buffer size for retained session span trees (the "
             "{\"cmd\": \"stats\"} verb reports retention); default 1024 "
             "— a long-lived server must bound this, unlike a loadtest",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="replay seeded open-loop traffic and emit an SLO report",
        description="Drive the consensus service with a deterministic "
                    "seeded arrival process on a virtual-time event loop. "
                    "Completes in wall-clock milliseconds regardless of "
                    "the traffic's virtual duration, and the SLO report "
                    "is byte-identical for a given seed (modulo the "
                    "wall_clock section).",
    )
    loadtest.add_argument(
        "--profile", choices=sorted(PROFILES), default="steady",
        help="arrival shape: steady Poisson, periodic bursts, "
             "slow-client stalls, or early client drops",
    )
    loadtest.add_argument("--sessions", type=int, default=1000,
                          help="total sessions to offer (default 1000)")
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--algorithm", choices=list(CONCILIATORS),
                          default="sifting")
    loadtest.add_argument("-n", type=int, default=8,
                          help="processes per simulated round")
    loadtest.add_argument("--schedule", type=str, default="permuted",
                          metavar="FAMILY",
                          help="schedule family for the rounds "
                               "(default: permuted)")
    loadtest.add_argument("--deadline", type=float, default=5.0,
                          help="per-session budget in virtual seconds")
    loadtest.add_argument("--chaos", type=str, default=None, metavar="NAME",
                          help="inject a named service chaos stack "
                               f"({', '.join(service_chaos_names())})")
    loadtest.add_argument("--shards", type=int, default=2)
    loadtest.add_argument("--workers-per-shard", type=int, default=2)
    loadtest.add_argument("--queue-capacity", type=int, default=16)
    loadtest.add_argument("--slo-target", type=float, default=1.0,
                          metavar="SECONDS",
                          help="latency target defining SLO attainment")
    loadtest.add_argument("--label", type=str, default="local",
                          help="report label (default: local)")
    loadtest.add_argument("--out", type=str, default=None, metavar="PATH",
                          help="write the SLO report JSON to PATH")
    loadtest.add_argument("--json", action="store_true",
                          help="print the full report as JSON on stdout")
    loadtest.add_argument(
        "--history", type=str, nargs="?", default=None,
        const="benchmarks/SLO_history.jsonl", metavar="PATH",
        help="append this run's tail latency/shed rate/goodput (plus git "
             "SHA) to the SLO trend ledger at PATH (default when the "
             "flag is given without a value: benchmarks/SLO_history.jsonl)",
    )
    loadtest.add_argument(
        "--verify-determinism", action="store_true",
        help="run the loadtest twice and fail unless the deterministic "
             "views of both reports are byte-identical",
    )
    loadtest.add_argument(
        "--spans", type=str, default=None, metavar="DIR",
        help="persist every session's span tree to "
             "DIR/SPANS_<label>.jsonl (one canonical JSON line per "
             "session; `repro slo waterfall` reads this file)",
    )

    slo = sub.add_parser(
        "slo",
        help="inspect SLO artifacts: trend ledger, per-session waterfalls",
        description="Tools over the service layer's SLO artifacts: "
                    "'trend' summarizes the append-only SLO_history.jsonl "
                    "ledger (the loadtest --history output), 'waterfall' "
                    "renders one session's span tree from a loadtest "
                    "--spans file as an ASCII or HTML waterfall chart.",
    )
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)
    slo_trend = slo_sub.add_parser(
        "trend",
        help="summarize tail latency/shed rate/goodput/attainment deltas "
             "across the append-only SLO_history.jsonl ledger",
    )
    slo_trend.add_argument(
        "--history", type=str, default="benchmarks/SLO_history.jsonl",
        metavar="PATH", help="ledger file to summarize "
                             "(default: benchmarks/SLO_history.jsonl)",
    )
    slo_trend.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only summarize the newest N ledger entries",
    )
    slo_trend.add_argument("--json", action="store_true",
                           help="print the trend summary as JSON")
    slo_waterfall = slo_sub.add_parser(
        "waterfall",
        help="render one session's span tree as a waterfall chart",
    )
    slo_waterfall.add_argument(
        "spans", help="SPANS_*.jsonl file written by loadtest --spans",
    )
    slo_waterfall.add_argument(
        "--session", type=int, required=True, metavar="ID",
        help="session id to render (the SLO report's latency_attribution "
             "percentile rows name interesting ones)",
    )
    slo_waterfall.add_argument("--width", type=int, default=100,
                               help="chart width in columns (default 100)")
    slo_waterfall.add_argument(
        "--html", action="store_true",
        help="emit a self-contained static HTML page instead of ASCII",
    )
    slo_waterfall.add_argument(
        "--out", type=str, default=None, metavar="PATH",
        help="write the rendering to PATH instead of stdout",
    )
    return parser


def _cmd_consensus(args: argparse.Namespace) -> int:
    inputs = standard_input_gallery(args.n, seed=args.seed)[args.workload]
    domain: List = []
    for value in inputs:
        if value not in domain:
            domain.append(value)
    if args.model == "snapshot":
        protocol = snapshot_consensus(args.n)
    elif args.model == "linear":
        protocol = register_consensus(args.n, value_domain=domain,
                                      linear_total_work=True)
    else:
        protocol = register_consensus(args.n, value_domain=domain)

    seeds = SeedTree(args.seed)
    schedule = make_schedule(args.schedule, args.n, seeds.child("schedule"))
    allow_partial = args.schedule == "crash-half"
    if allow_partial:
        programs = [protocol.program] * args.n
        result = run_programs(programs, schedule, seeds, inputs=list(inputs),
                              allow_partial=True)
    else:
        result = run_consensus(protocol, inputs, schedule, seeds)

    print(f"model={args.model} n={args.n} workload={args.workload} "
          f"adversary={args.schedule} seed={args.seed}")
    print(f"decided: {sorted(result.decided_values)!r}")
    print(f"agreement: {result.agreement}  "
          f"validity: {result.validity_holds(dict(enumerate(inputs)))}")
    print(f"total steps: {result.total_steps}  "
          f"max individual: {result.max_individual_steps}")
    if protocol.phases_used:
        print(f"phases used: {max(protocol.phases_used.values())}")
    return 0 if result.agreement else 1


def _cmd_conciliator(args: argparse.Namespace) -> int:
    factory = CONCILIATORS[args.algorithm]
    register_model, adversary = _parse_model_arguments(args)
    stats = run_conciliator_trials(
        lambda: factory(args.n),
        list(range(args.n)),
        schedule_family=args.schedule,
        trials=args.trials,
        master_seed=args.seed,
        workers=args.workers,
        chunk_size=args.chunk_size,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        backend=args.backend,
        register_model=register_model,
        adversary=adversary,
    )
    low, high = stats.agreement_interval
    adversary_label = args.adversary or args.schedule
    model_label = args.register_model or "atomic"
    print(f"algorithm={args.algorithm} n={args.n} "
          f"adversary={adversary_label} registers={model_label} "
          f"trials={args.trials} backend={args.backend}")
    print(f"agreement rate: {stats.agreement_rate:.3f} "
          f"(95% CI [{low:.3f}, {high:.3f}])")
    print(f"individual steps: {stats.individual_steps}")
    print(f"total steps: {stats.total_steps}")
    print(f"validity failures: {stats.validity_failures}")
    return 0 if stats.validity_failures == 0 else 1


def _cmd_decay(args: argparse.Namespace) -> int:
    if args.algorithm == "snapshot":
        factory = lambda: SnapshotConciliator(args.n)
        bound_fn = snapshot_decay_bound
    else:
        factory = lambda: SiftingConciliator(args.n)
        bound_fn = sifting_decay_bound
    series = decay_series(
        factory, list(range(args.n)), schedule_family=args.schedule,
        trials=args.trials,
        master_seed=args.seed, workers=args.workers,
        chunk_size=args.chunk_size, checkpoint_path=args.checkpoint,
        resume=args.resume, backend=args.backend,
    )
    bounds = bound_fn(args.n, len(series))
    rows = [
        [index + 1, round(survivors - 1, 3), round(bounds[index], 3)]
        for index, survivors in enumerate(series)
    ]
    print(render_table(
        ["round", "measured E[X_i]", "paper bound"],
        rows,
        title=f"{args.algorithm} decay, n={args.n}, {args.trials} trials",
    ))
    if args.plot:
        from repro.analysis.plots import series_plot

        measured = [survivors - 1 for survivors in series]
        print()
        print(series_plot(
            [("measured", measured), ("bound", bounds)],
            height=10,
            y_label="excess personae",
        ))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.workloads.search import search_worst_schedule

    if args.algorithm == "snapshot":
        factory = lambda: SnapshotConciliator(args.n)
        steps = SnapshotConciliator(args.n).step_bound()
    else:
        factory = lambda: SiftingConciliator(args.n)
        steps = SiftingConciliator(args.n).step_bound()
    registry = MetricsRegistry() if args.metrics else None
    result = search_worst_schedule(
        factory,
        list(range(args.n)),
        steps_per_process=steps,
        generations=args.generations,
        trials_per_eval=args.trials,
        master_seed=args.seed,
        strategy=args.strategy,
        metrics=registry,
    )
    print(f"algorithm={args.algorithm} n={args.n} "
          f"strategy={result.strategy} generations={args.generations}")
    print(f"schedules evaluated: {result.evaluations}")
    if result.family_pulls:
        pulls = " ".join(f"{arm}={count}"
                         for arm, count in result.family_pulls.items())
        print(f"proposal-arm pulls: {pulls}")
    if registry is not None:
        import json as _json

        print(_json.dumps(registry.to_json(), indent=2, sort_keys=True))
    print(f"starting (round-robin) agreement: {result.history[0]:.3f}")
    print(f"worst-found agreement (fresh seeds): {result.agreement_rate:.3f}")
    print("best-so-far per generation: "
          + " ".join(f"{rate:.2f}" for rate in result.history))
    print("the 1-eps floor holds for every oblivious schedule; the search")
    print("can approach it but not break it (see experiment E19).")
    return 0


def _cmd_tas(args: argparse.Namespace) -> int:
    from repro.tas.sifting_tas import SiftingTestAndSet

    unique_winner_failures = 0
    winner_steps = []
    loser_steps = []
    for trial in range(args.trials):
        seeds = SeedTree(args.seed * 10_000 + trial)
        tas = SiftingTestAndSet(args.n)
        schedule = make_schedule("random", args.n, seeds.child("schedule"))
        programs = [tas.program] * args.n
        result = run_programs(programs, schedule, seeds)
        winners = [pid for pid, out in result.outputs.items() if out == 0]
        if len(winners) != 1:
            unique_winner_failures += 1
            continue
        winner_steps.append(result.steps_by_pid[winners[0]])
        loser_steps.extend(
            result.steps_by_pid[pid] for pid in result.outputs
            if pid != winners[0]
        )
    print(f"n={args.n} trials={args.trials}")
    print(f"unique-winner violations: {unique_winner_failures}")
    if winner_steps:
        print(f"winner steps: mean {sum(winner_steps)/len(winner_steps):.1f}")
    if loser_steps:
        print(f"loser steps:  mean {sum(loser_steps)/len(loser_steps):.1f} "
              f"max {max(loser_steps)}")
    return 0 if unique_winner_failures == 0 else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import model_overrides
    from repro.analysis.paper import ALL_EXPERIMENTS

    wanted = {token.strip().upper() for token in args.only.split(",") if token}
    register_model, adversary = _parse_model_arguments(args)
    all_ok = True
    # The experiment builders call the trial runners with default sharding
    # and default model axes, so the session-level overrides parallelize
    # (and re-model) every table at once.
    with parallelism(workers=args.workers, chunk_size=args.chunk_size), \
            model_overrides(register_model=register_model,
                            adversary=adversary):
        for experiment in ALL_EXPERIMENTS:
            table = experiment(scale=args.scale)
            if wanted and table.experiment_id.upper() not in wanted:
                continue
            print(table.render())
            print()
            all_ok = all_ok and table.shape_holds
    return 0 if all_ok else 1


def _cmd_probe(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis.probe import run_probe

    algorithms = tuple(
        token.strip() for token in args.algorithms.split(",") if token.strip()
    )
    report = run_probe(
        n=args.n,
        trials=args.trials,
        seed=args.seed,
        algorithms=algorithms or ("sifting",),
        inner=args.inner,
        noise=args.noise,
        delay=args.delay,
        workers=args.workers,
        chunk_size=args.chunk_size,
        log=lambda message: print(message, file=sys.stderr),
    )
    if args.out is not None:
        path = report.write(args.out)
        print(f"wrote {path}", file=sys.stderr)
    if args.json:
        print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
        monotone = all(report.monotone.values())
        print()
        print(f"ladder monotone: {monotone}  "
              f"hard oracles hold: {report.hard_oracles_hold}")
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.fuzz import FuzzConfig, run_fuzz_campaign, stack_names

    if args.list_stacks:
        for name in stack_names(include_planted=True):
            print(name)
        return 0
    stacks = tuple(
        token.strip() for token in args.stacks.split(",") if token.strip()
    )
    register_model, adversary = _parse_model_arguments(args)
    config = FuzzConfig(
        stacks=stacks,
        min_n=args.min_n,
        max_n=args.max_n,
        include_adaptive=args.include_adaptive,
        allow_out_of_model=args.allow_out_of_model,
        register_model=register_model,
        adversary=adversary,
    )
    trial_wall_clock = args.trial_wall_clock
    corpus_dir = Path(args.corpus) if args.corpus else None
    if args.explain and corpus_dir is None:
        print("error: --explain requires --corpus (explanations are "
              "written next to the saved cases)", file=sys.stderr)
        return 2
    report = run_fuzz_campaign(
        args.seed,
        config,
        trials=args.trials,
        time_budget=args.time_budget,
        corpus_dir=corpus_dir,
        shrink=args.shrink,
        **({} if trial_wall_clock is None
           else {"trial_wall_clock": trial_wall_clock}),
        workers=args.workers,
        chunk_size=args.chunk_size,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        collect_metrics=True if args.metrics else None,
        explain_dir=corpus_dir if args.explain else None,
        log=lambda message: print(message, file=sys.stderr),
    )
    if args.json:
        import json as _json

        print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        statuses = " ".join(
            f"{name}={count}"
            for name, count in sorted(report.statuses.items())
        )
        print(f"seed={report.master_seed} trials={report.trials} "
              f"stopped-by={report.stopped_by} "
              f"elapsed={report.elapsed_seconds:.1f}s")
        print(f"statuses: {statuses or '(none)'}")
        for finding in report.findings:
            oracles = ", ".join(finding.oracles)
            where = finding.corpus_file or "(not saved)"
            print(f"  trial {finding.trial}: {finding.status} [{oracles}] "
                  f"stack={finding.scenario.stack} "
                  f"shrunk-to n={finding.shrunk.n} -> {where}")
        if report.corpus_files:
            print(f"corpus: {len(report.corpus_files)} file(s) written")
        print("ok" if report.ok else "VIOLATIONS FOUND")
    return 0 if report.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.fuzz import load_corpus, replay_case

    explain_requested = getattr(args, "explain", False)
    explain_dir = getattr(args, "explain_dir", None)
    if explain_dir is not None and not explain_requested:
        print("error: --explain-dir requires --explain", file=sys.stderr)
        return 2

    cases = load_corpus(Path(args.corpus))
    if not cases:
        print(f"no corpus cases under {args.corpus}")
        return 0
    reports = []
    explanations = {}
    failures = 0
    for path, case in cases:
        verdict = replay_case(case, wall_clock_seconds=60.0)
        reports.append((path, verdict))
        if not verdict.reproduced:
            failures += 1
        if explain_requested:
            from repro.fuzz.explain import explain_case
            from repro.obs.events import write_trace_jsonl

            explanation = explain_case(case, wall_clock_seconds=60.0)
            explanations[path.name] = explanation
            if explain_dir is not None:
                stem = path.name.rsplit(".", 1)[0]
                out_dir = Path(explain_dir)
                explanation.write(out_dir / f"{stem}.explain.json")
                out_dir.mkdir(parents=True, exist_ok=True)
                write_trace_jsonl(
                    explanation.events, out_dir / f"{stem}.trace.jsonl"
                )
    if args.json:
        import json as _json

        print(_json.dumps([
            {
                "file": path.name,
                "reproduced": verdict.reproduced,
                "matched": list(verdict.matched),
                "missing": list(verdict.missing),
                "status": verdict.outcome.status,
                **(
                    {"explanation": explanations[path.name].to_json()}
                    if path.name in explanations else {}
                ),
            }
            for path, verdict in reports
        ], indent=2, sort_keys=True))
    else:
        for path, verdict in reports:
            mark = "ok " if verdict.reproduced else "FAIL"
            print(f"{mark} {path.name}: matched={list(verdict.matched)} "
                  f"missing={list(verdict.missing)}")
            explanation = explanations.get(path.name)
            if explanation is not None:
                disagreement = explanation.disagreement
                if disagreement is not None and disagreement.diverged:
                    values = ", ".join(
                        repr(value) for value in disagreement.final_values
                    )
                    print(f"     disagreement: diverged at round "
                          f"{disagreement.divergence_round}; "
                          f"surviving values: {values}")
                attribution = explanation.attribution
                if attribution is not None:
                    verdict_text = ("within tolerance"
                                    if attribution.within_tolerance
                                    else "OUT OF TOLERANCE")
                    print(f"     attribution: {attribution.observed_rounds} "
                          f"round(s) observed vs "
                          f"{attribution.predicted['rounds']} predicted "
                          f"({verdict_text})")
        if explain_dir is not None:
            print(f"explanations written under {explain_dir}")
        print(f"{len(reports)} case(s), {failures} failed to reproduce")
    return 0 if failures == 0 else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.fuzz.corpus import load_case
    from repro.fuzz.explain import explain_case
    from repro.obs.events import write_trace_jsonl

    case_path = Path(args.case)
    if not case_path.is_file():
        print(f"error: corpus case {case_path} cannot be read",
              file=sys.stderr)
        return 2
    case = load_case(case_path)
    explanation = explain_case(case, wall_clock_seconds=60.0)
    if args.out is not None:
        path = explanation.write(args.out)
        print(f"wrote {path}", file=sys.stderr)
    if args.trace is not None:
        count = write_trace_jsonl(explanation.events, args.trace)
        print(f"wrote {count} trace event(s) to {args.trace}",
              file=sys.stderr)
    if args.json:
        print(_json.dumps(explanation.to_json(), indent=2, sort_keys=True))
    else:
        print(explanation.render())
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.timeline import render_timeline, render_timeline_html

    if args.case is not None:
        from repro.fuzz.corpus import load_case
        from repro.fuzz.explain import explain_case

        case_path = Path(args.case)
        if not case_path.is_file():
            print(f"error: corpus case {case_path} cannot be read",
                  file=sys.stderr)
            return 2
        explanation = explain_case(
            load_case(case_path), wall_clock_seconds=60.0
        )
        events = list(explanation.events)
        title = f"repro timeline: {case_path.name}"
    else:
        trace_path = Path(args.trace)
        if not trace_path.is_file():
            print(f"error: trace file {trace_path} cannot be read",
                  file=sys.stderr)
            return 2
        from repro.obs.events import read_trace_jsonl

        events = read_trace_jsonl(trace_path)
        title = f"repro timeline: {trace_path.name}"
    if args.html is not None:
        html_path = Path(args.html)
        html_path.parent.mkdir(parents=True, exist_ok=True)
        html_path.write_text(
            render_timeline_html(events, title=title), encoding="utf-8"
        )
        print(f"wrote {html_path}", file=sys.stderr)
    print(render_timeline(events, width=args.width), end="")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.bench import (
        compare_bench,
        load_bench_json,
        run_bench_suite,
        write_bench_json,
    )

    if getattr(args, "bench_command", None) == "compare":
        comparison = compare_bench(
            load_bench_json(args.old),
            load_bench_json(args.new),
            threshold=args.threshold,
        )
        if args.json:
            print(_json.dumps(comparison.to_json(), indent=2, sort_keys=True))
        else:
            print(comparison.render())
        return 0 if comparison.ok else 1

    if getattr(args, "bench_command", None) == "trend":
        from repro.obs.trend import load_history, render_trend, summarize_trend

        entries = load_history(args.history)
        if args.json:
            trends = summarize_trend(entries, last=args.last)
            print(_json.dumps({
                "history": args.history,
                "entries": len(entries),
                "cases": [
                    {
                        "name": trend.name,
                        "points": trend.points,
                        "first_steps_per_sec": trend.first_steps_per_sec,
                        "last_steps_per_sec": trend.last_steps_per_sec,
                        "latest_change": trend.latest_change,
                        "overall_change": trend.overall_change,
                    }
                    for trend in trends
                ],
            }, indent=2, sort_keys=True))
        else:
            print(render_trend(entries, last=args.last))
        return 0

    suites = tuple(
        token.strip() for token in args.suite.split(",") if token.strip()
    )
    report = run_bench_suite(
        label=args.label,
        quick=args.quick,
        seed=args.seed,
        suites=suites or None,
        log=lambda message: print(message, file=sys.stderr),
    )
    if args.out is not None:
        path = write_bench_json(report, args.out)
        print(f"wrote {path}", file=sys.stderr)
    if args.history is not None:
        from repro.obs.trend import append_history

        append_history(report, args.history)
        print(f"appended history entry to {args.history}", file=sys.stderr)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        mode = "quick" if report["quick"] else "full"
        print(f"label={report['label']} mode={mode} seed={report['seed']} "
              f"git={report['git_sha'][:12]} "
              f"elapsed={report['elapsed_seconds']:.1f}s")
        for name in sorted(report["cases"]):
            case = report["cases"][name]
            print(f"  {name:22s} n={case['n']:3d} trials={case['trials']:4d} "
                  f"{case['steps_per_sec']:12.0f} steps/s "
                  f"p50={case['latency_p50_s'] * 1e3:.2f}ms "
                  f"p95={case['latency_p95_s'] * 1e3:.2f}ms")
    return 0


def _service_config(args: argparse.Namespace) -> "ServiceConfig":
    from repro.service import ServiceConfig

    return ServiceConfig(
        shards=args.shards,
        workers_per_shard=args.workers_per_shard,
        queue_capacity=args.queue_capacity,
        seed=args.seed,
        span_capacity=getattr(args, "span_capacity", None),
    )


def _resolve_chaos(name: Optional[str]):
    from repro.fuzz.stacks import get_service_chaos

    return None if name is None else get_service_chaos(name)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json as json_module

    from repro.errors import ConfigurationError
    from repro.service import ServiceServer
    from repro.service.server import health_summary

    if args.stats_interval is not None and args.stats_interval <= 0:
        raise ConfigurationError(
            f"--stats-interval must be > 0, got {args.stats_interval}"
        )
    server = ServiceServer(
        _service_config(args), chaos=_resolve_chaos(args.chaos)
    )

    async def self_report(interval: float) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            print(
                json_module.dumps(
                    health_summary(server.service.snapshot(loop.time())),
                    sort_keys=True,
                ),
                file=sys.stderr,
            )

    async def run() -> None:
        await server.start(args.host, args.port)
        print(f"serving consensus sessions on {args.host}:{server.port} "
              f"(shards={args.shards}, "
              f"queue={args.queue_capacity}/shard"
              + (f", chaos={args.chaos}" if args.chaos else "") + ")")
        print("protocol: one SessionRequest JSON object per line "
              "({\"cmd\": \"stats\"} / {\"cmd\": \"health\"} for live "
              "introspection); Ctrl-C to stop")
        reporter = (
            asyncio.ensure_future(self_report(args.stats_interval))
            if args.stats_interval is not None else None
        )
        try:
            await server.serve_forever()
        finally:
            if reporter is not None:
                reporter.cancel()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("stopped")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.service import build_report, render_report, run_loadtest
    from repro.service.loadgen import PROFILES as _profiles  # noqa: F401
    from repro.service.slo import (
        append_slo_history,
        deterministic_view,
        write_report,
    )

    def one_run():
        result = run_loadtest(
            profile=args.profile,
            sessions=args.sessions,
            seed=args.seed,
            config=_service_config(args),
            chaos=_resolve_chaos(args.chaos),
            algorithm=args.algorithm,
            n=args.n,
            schedule_family=args.schedule,
            deadline=args.deadline,
        )
        report = build_report(
            result,
            label=args.label,
            slo_target_latency=args.slo_target,
            chaos_stack=args.chaos,
        )
        return report, result

    report, result = one_run()
    if args.verify_determinism:
        second, _ = one_run()
        first_view = json_module.dumps(
            deterministic_view(report), sort_keys=True
        )
        second_view = json_module.dumps(
            deterministic_view(second), sort_keys=True
        )
        if first_view != second_view:
            print("error: loadtest is not deterministic — two runs with "
                  "the same seed produced different reports",
                  file=sys.stderr)
            return 1
        print("determinism verified: two runs, identical reports")
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    if args.spans:
        import os

        from repro.service.spans import write_spans_jsonl

        os.makedirs(args.spans, exist_ok=True)
        spans_path = os.path.join(args.spans, f"SPANS_{args.label}.jsonl")
        write_spans_jsonl(result.spans, spans_path)
        print(f"wrote {len(result.spans)} span tree(s) to {spans_path}")
    if args.history:
        entry = append_slo_history(report, args.history)
        print(f"appended p99={entry['p99']:.4f}s "
              f"shed={entry['shed_rate']:.3f} to {args.history}")
    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 0 if report["sessions"]["unexpected_errors"] == 0 else 1


def _cmd_slo(args: argparse.Namespace) -> int:
    import json as json_module

    if args.slo_command == "trend":
        from dataclasses import asdict

        from repro.service.slo import (
            load_slo_history,
            render_slo_trend,
            summarize_slo_trend,
        )

        entries = load_slo_history(args.history)
        if args.json:
            print(json_module.dumps(
                [asdict(trend)
                 for trend in summarize_slo_trend(entries, last=args.last)],
                indent=2, sort_keys=True,
            ))
        else:
            print(render_slo_trend(entries, last=args.last))
        return 0

    # waterfall
    from repro.obs.timeline import render_waterfall, render_waterfall_html
    from repro.service.spans import read_spans_jsonl, tree_to_json

    roots = read_spans_jsonl(args.spans)
    match = next(
        (root for root in roots
         if root.attrs.get("session_id") == args.session),
        None,
    )
    if match is None:
        print(f"error: no session {args.session} in {args.spans} "
              f"({len(roots)} tree(s) read)", file=sys.stderr)
        return 1
    tree = tree_to_json(match)
    if args.html:
        rendering = render_waterfall_html(
            tree, title=f"session {args.session} waterfall",
        )
    else:
        rendering = render_waterfall(tree, width=args.width)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendering)
        print(f"wrote {args.out}")
    else:
        print(rendering, end="")
    return 0


def _cmd_growth(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis.growth import (
        DEFAULT_MAX_N,
        QUICK_MAX_N,
        compare_growth,
        load_growth_json,
        run_growth_experiment,
        write_growth_json,
    )

    if args.max_n is not None:
        max_n = args.max_n
    elif args.quick:
        max_n = QUICK_MAX_N
    else:
        max_n = DEFAULT_MAX_N
    report = run_growth_experiment(
        label=args.label,
        seed=args.seed,
        epsilon=args.epsilon,
        max_n=max_n,
        log=lambda message: print(message, file=sys.stderr),
    )
    if args.out is not None:
        path = write_growth_json(report, args.out)
        print(f"wrote {path}", file=sys.stderr)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        checks = report["checks"]
        print(f"label={report['label']} seed={report['seed']} "
              f"max_n={report['max_n']} "
              f"ordering={' <= '.join(checks['observed_ordering'])} "
              f"growth_ratio={checks['growth_ratio']}x "
              f"checks={'ok' if checks['ok'] else 'FAILED'}")
    ok = bool(report["checks"]["ok"])
    if args.baseline is not None:
        matches, message = compare_growth(
            load_growth_json(args.baseline), report
        )
        print(message, file=sys.stderr)
        ok = ok and matches
    return 0 if ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "consensus": _cmd_consensus,
        "conciliator": _cmd_conciliator,
        "decay": _cmd_decay,
        "search": _cmd_search,
        "tas": _cmd_tas,
        "experiments": _cmd_experiments,
        "probe": _cmd_probe,
        "fuzz": _cmd_fuzz,
        "replay": _cmd_replay,
        "explain": _cmd_explain,
        "timeline": _cmd_timeline,
        "bench": _cmd_bench,
        "growth": _cmd_growth,
        "serve": _cmd_serve,
        "loadtest": _cmd_loadtest,
        "slo": _cmd_slo,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
