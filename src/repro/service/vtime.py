"""A deterministic virtual-time asyncio event loop for traffic replay.

The loadtest's acceptance bar is *byte-identical SLO reports from the same
seed* — on any machine, at any load.  A real event loop cannot deliver
that: wall-clock timer expiry interleaves with CPU speed, so two runs of
the same seeded arrival process admit and time out sessions in different
orders.  The fix is the classic discrete-event trick, applied to asyncio
itself: run a single-threaded selector loop whose clock is a plain float
that *jumps* to the next scheduled timer whenever the ready queue drains.

Concretely, :class:`VirtualTimeEventLoop` subclasses
:class:`asyncio.SelectorEventLoop` and overrides two methods:

- :meth:`time` returns the virtual clock instead of ``time.monotonic()``;
- :meth:`_run_once` advances the virtual clock to the earliest pending
  timer deadline when no callback is ready, then defers to the stock
  implementation (which now sees that timer as already due).

Every ``await asyncio.sleep(dt)`` therefore completes in zero wall-clock
time but exactly ``dt`` virtual seconds, and because the loop is single
threaded with no real I/O, callback order is a pure function of the
program — timers with equal deadlines keep their scheduling order
(``heapq`` plus ``TimerHandle``'s tiebreaker are stable).  The service
code does not know which loop it is on: ``repro loadtest`` runs it here,
``repro serve`` runs the same coroutines on the standard real-time loop.

The two private attributes this relies on (``_ready``, ``_scheduled`` and
the ``TimerHandle._when``/``_cancelled`` fields) have been stable across
every CPython 3.x asyncio release; a guard in ``__init__`` fails loudly if
a future interpreter renames them.
"""

from __future__ import annotations

import asyncio
import heapq
import selectors
from typing import Any, Coroutine, TypeVar

__all__ = ["VirtualTimeEventLoop", "run_virtual"]

T = TypeVar("T")


class VirtualTimeEventLoop(asyncio.SelectorEventLoop):
    """A selector event loop whose clock jumps between timer deadlines."""

    def __init__(self) -> None:
        # A plain SelectSelector: never polled with a timeout (we pass 0 by
        # keeping something due), and portable everywhere.
        super().__init__(selectors.SelectSelector())
        self._virtual_time = 0.0
        if (
            not hasattr(self, "_scheduled")
            or not hasattr(self, "_ready")
            or not hasattr(self, "_timer_cancelled_count")
        ):
            raise RuntimeError(
                "asyncio internals changed; VirtualTimeEventLoop needs "
                "_scheduled/_ready/_timer_cancelled_count to drive "
                "virtual time"
            )

    def time(self) -> float:
        """The virtual clock, in seconds since the loop was created."""
        return self._virtual_time

    def _run_once(self) -> None:
        # With nothing ready to run, real loops block in select() until the
        # earliest timer is due.  We instead teleport the clock to that
        # deadline, so the base implementation pops the timer immediately
        # and select() is only ever called with a zero timeout.  Cancelled
        # timers at the heap top are discarded first — jumping to a dead
        # deadline would charge virtual seconds nothing actually waited for.
        # The private asyncio attributes below are absent from typeshed,
        # hence the attr-defined ignores; the __init__ guard vouches for
        # them at runtime.
        if not self._ready:  # type: ignore[attr-defined]
            scheduled = self._scheduled  # type: ignore[attr-defined]
            while scheduled and scheduled[0]._cancelled:
                handle = heapq.heappop(scheduled)
                handle._scheduled = False
                # Mirror BaseEventLoop._run_once: each cancelled handle
                # popped here is one the base loop no longer needs to
                # count toward its heap-rebuild heuristic.
                self._timer_cancelled_count = max(
                    0,
                    self._timer_cancelled_count - 1,  # type: ignore[attr-defined]
                )
            if scheduled:
                when = scheduled[0]._when
                if when > self._virtual_time:
                    self._virtual_time = when
        super()._run_once()  # type: ignore[misc]


def run_virtual(coro: Coroutine[Any, Any, T]) -> T:
    """Run ``coro`` to completion on a fresh virtual-time loop.

    The virtual-time analogue of :func:`asyncio.run`: creates the loop,
    runs the coroutine, and closes the loop — but completes instantly in
    wall-clock terms no matter how much virtual time the coroutine sleeps.
    """
    loop = VirtualTimeEventLoop()
    try:
        return loop.run_until_complete(coro)
    finally:
        try:
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()
