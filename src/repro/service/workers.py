"""Simulator workers behind the consensus service.

The service does not reimplement any protocol: a worker attempt is one
seeded round pushed through the PR 1 generator engine
(:func:`repro.runtime.simulator.run_programs`) or, when the service has
degraded under overload, the PR 6 vectorized backend
(:func:`repro.runtime.vectorized.run_vectorized_sweep` with a single
trial).  :data:`ALGORITHMS` mirrors the CLI's conciliator catalog so a
session can name any algorithm the sweeps can.

Simulated rounds are CPU work, not I/O: under the deterministic loadtest
they run inline on the event loop (blocking is fine — the virtual clock
only moves on timers), and their *service time* is modelled separately by
the cost model in :mod:`repro.service.service` from the round's charged
step count.  That split is what lets the loadtest stay a pure function of
its seed: the simulated execution is seeded, the cost model is
deterministic arithmetic, and no wall-clock measurement ever enters the
report.

Degradation eligibility is conservative: an algorithm/family pair falls
back to the vectorized kernel only when the kernel provably accepts it
(:func:`repro.runtime.vectorized.supported_families`) and NumPy is
importable; otherwise the service keeps paying generator prices and sheds
harder — a correct answer slowly beats a wrong answer fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.runtime.rng import SeedTree, derive_seed
from repro.runtime.simulator import run_programs
from repro.runtime.vectorized import (
    numpy_available,
    run_vectorized_sweep,
    supported_families,
)
from repro.service.session import SessionRequest
from repro.workloads.schedules import make_schedule

__all__ = [
    "ALGORITHMS",
    "WorkOutcome",
    "execute_session",
    "vectorized_eligible",
]

#: Session-visible algorithm catalog (name -> factory taking ``n``).
ALGORITHMS: Dict[str, Callable[[int], Any]] = {
    "snapshot": lambda n: SnapshotConciliator(n),
    "snapshot-maxreg": lambda n: SnapshotConciliator(
        n, use_max_registers=True
    ),
    "sifting": lambda n: SiftingConciliator(n),
    "cil-embedded": lambda n: CILEmbeddedConciliator(n),
    "doubling-cil": lambda n: DoublingCILConciliator(n),
}

#: Catalog name -> vectorized kernel name, for the algorithms that have one.
_VECTOR_KERNELS = {
    "sifting": "sifting",
    "snapshot": "snapshot",
    "snapshot-maxreg": "snapshot",
    "doubling-cil": "cil",
}


@dataclass(frozen=True)
class WorkOutcome:
    """One successful worker attempt, in service terms.

    ``steps`` is the round's total charged step count — the unit the
    service's cost model converts into virtual service seconds — and
    ``agreement`` is the paper's per-trial success flag (did every process
    leave with the same preference).
    """

    agreement: bool
    steps: float
    max_individual_steps: float
    backend: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "agreement": self.agreement,
            "steps": self.steps,
            "max_individual_steps": self.max_individual_steps,
            "backend": self.backend,
        }


def vectorized_eligible(request: SessionRequest) -> bool:
    """May this session degrade to the vectorized backend?

    True only when the algorithm has a kernel, the kernel supports the
    requested schedule family in fast (non-oracle) mode, and NumPy is
    present.  Ineligible sessions simply stay on the generator path.
    """
    kernel = _VECTOR_KERNELS.get(request.algorithm)
    if kernel is None:
        return False
    if request.schedule_family not in supported_families(kernel, False):
        return False
    return numpy_available()


def _session_inputs(request: SessionRequest) -> list:
    """The round's input vector: alternating binary preferences."""
    return [index % 2 for index in range(request.n)]


def _session_seed(request: SessionRequest) -> int:
    """Master seed for the round, namespaced per session."""
    return derive_seed(request.seed, "service-session", str(request.session_id))


def execute_session(
    request: SessionRequest, *, backend: str = "generator"
) -> WorkOutcome:
    """Run one session's round to completion, inline.

    Deterministic in ``(request, backend)``: the simulated execution is a
    pure function of the session's derived seed.  Raises
    :class:`~repro.errors.ConfigurationError` on an unknown algorithm or a
    family/backend mismatch — configuration errors, not transient worker
    failures, so the service reports them instead of retrying.
    """
    factory = ALGORITHMS.get(request.algorithm)
    if factory is None:
        raise ConfigurationError(
            f"unknown algorithm {request.algorithm!r}; "
            f"choose from {tuple(sorted(ALGORITHMS))}"
        )
    if backend == "vectorized":
        return _execute_vectorized(request, factory)
    if backend != "generator":
        raise ConfigurationError(
            f"unknown worker backend {backend!r}; "
            f"choose 'generator' or 'vectorized'"
        )
    return _execute_generator(request, factory)


def _execute_generator(
    request: SessionRequest, factory: Callable[[int], Any]
) -> WorkOutcome:
    seeds = SeedTree(_session_seed(request))
    conciliator = factory(request.n)
    schedule = make_schedule(
        request.schedule_family, request.n, seeds.child("schedule")
    )
    result = run_programs(
        [conciliator.program] * request.n,
        schedule,
        seeds,
        inputs=_session_inputs(request),
    )
    return WorkOutcome(
        agreement=bool(result.agreement),
        steps=float(result.total_steps),
        max_individual_steps=float(result.max_individual_steps),
        backend="generator",
    )


def _execute_vectorized(
    request: SessionRequest, factory: Callable[[int], Any]
) -> WorkOutcome:
    if not vectorized_eligible(request):
        raise ConfigurationError(
            f"session {request.session_id} "
            f"(algorithm={request.algorithm!r}, "
            f"family={request.schedule_family!r}) is not eligible for the "
            f"vectorized backend"
        )
    sweep = run_vectorized_sweep(
        lambda: factory(request.n),
        _session_inputs(request),
        schedule_family=request.schedule_family,
        trials=1,
        master_seed=_session_seed(request),
        oracle=False,
        workers=1,
    )
    stats = sweep.stats()
    return WorkOutcome(
        agreement=stats.agreement_count == 1,
        steps=float(stats.total_steps.mean),
        max_individual_steps=float(stats.individual_steps.mean),
        backend="vectorized",
    )
