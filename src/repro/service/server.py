"""A JSON-lines TCP front end for the consensus service.

``repro serve`` binds this server to a host/port and answers one
:class:`~repro.service.session.SessionRequest` JSON object per line with
one :class:`~repro.service.session.SessionResponse` JSON line.  The
protocol is deliberately primitive — newline-delimited JSON over TCP, no
framing negotiation, no TLS — because the server's job is to demonstrate
the *service* semantics (admission, deadlines, breakers, degradation) on
a real event loop, not to be a production transport.

Malformed lines get an error object (``{"error": ...}``) rather than a
dropped connection: a load generator mid-run should see its own bug, not
a mysterious reset.  The server runs the same :class:`ConsensusService`
code the virtual-time loadtest drives, so behaviour differences between
``repro serve`` and ``repro loadtest`` reduce to the clock.

Control verbs share the session stream: a line whose JSON object carries
a ``"cmd"`` key is introspection, not traffic.  ``{"cmd": "stats"}``
returns the full :meth:`ConsensusService.snapshot` (occupancy, breaker
states and timelines, degradation, shed counters, span recorder totals)
and ``{"cmd": "health"}`` a one-line liveness summary.  Both are computed
synchronously between reads — they never await — so asking for stats
cannot reorder or perturb in-flight sessions on the same or any other
connection.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.runtime.faults import ServiceFaultPlan
from repro.service.service import ConsensusService, ServiceConfig
from repro.service.session import SessionRequest

__all__ = ["ServiceServer", "health_summary", "serve"]


def health_summary(snapshot: dict) -> dict:
    """Distill a :meth:`ConsensusService.snapshot` to the health document.

    Shared by the ``{"cmd": "health"}`` control verb and ``repro serve
    --stats-interval``, so the periodic self-report and the on-demand
    probe are the same bytes for the same snapshot.
    """
    return {
        "cmd": "health",
        "status": (
            "degraded" if snapshot["degraded_mode"]["active"] else "ok"
        ),
        "breakers": {
            shard: breaker["state"]
            for shard, breaker in snapshot["breakers"].items()
        },
        "occupancy": snapshot["occupancy"]["total"],
    }


class ServiceServer:
    """One bound TCP endpoint wrapping a :class:`ConsensusService`."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        chaos: Optional[ServiceFaultPlan] = None,
    ):
        self.service = ConsensusService(
            config, metrics=metrics, chaos=chaos
        )
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (useful when started on port 0)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError,
                        asyncio.IncompleteReadError):
                    # A line over the StreamReader limit (64 KiB by
                    # default) raises instead of returning; the buffer was
                    # flushed mid-line so framing is lost — report the
                    # protocol error and close rather than guess where the
                    # next request starts.
                    writer.write(json.dumps(
                        {"error": "request line too long"}, sort_keys=True,
                    ).encode("utf-8") + b"\n")
                    await writer.drain()
                    if writer.can_write_eof():
                        writer.write_eof()
                    # Swallow the rest of the oversized line: closing with
                    # unread inbound bytes would RST the socket and race
                    # the error reply to the client.
                    while await reader.read(65536):
                        pass
                    break
                if not line:
                    break
                response = await self._answer(line)
                writer.write(response.encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client hung up mid-line; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _answer(self, line: bytes) -> str:
        try:
            payload = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            return json.dumps(
                {"error": f"malformed request line: {error}"},
                sort_keys=True,
            )
        if isinstance(payload, dict) and "cmd" in payload:
            return self._control(payload)
        try:
            request = SessionRequest.from_json(payload)
        except (ReproError, KeyError, TypeError, ValueError) as error:
            return json.dumps(
                {"error": f"invalid session request: {error}"},
                sort_keys=True,
            )
        try:
            response = await self.service.submit(request)
        except ReproError as error:
            # Configuration errors (unknown algorithm, bad family) are the
            # client's fault; report them without killing the connection.
            return json.dumps(
                {
                    "error": str(error),
                    "session_id": request.session_id,
                },
                sort_keys=True,
            )
        return json.dumps(response.to_json(), sort_keys=True)

    def _control(self, payload: dict) -> str:
        """Answer one control verb (a ``{"cmd": ...}`` line), synchronously.

        ``stats`` returns :meth:`ConsensusService.snapshot` verbatim, so
        a TCP client and an in-process caller see the same document.
        ``health`` is the cheap liveness probe: overall status (degraded
        or ok), per-shard breaker states, and total queue occupancy.
        Unknown or non-string verbs get an ``{"error": ...}`` naming the
        supported set — same contract as malformed session lines.
        """
        cmd = payload.get("cmd")
        if not isinstance(cmd, str):
            return json.dumps(
                {"error": f"control cmd must be a string, got {cmd!r}"},
                sort_keys=True,
            )
        now = asyncio.get_running_loop().time()
        if cmd == "stats":
            return json.dumps(self.service.snapshot(now), sort_keys=True)
        if cmd == "health":
            return json.dumps(
                health_summary(self.service.snapshot(now)), sort_keys=True,
            )
        return json.dumps(
            {"error": f"unknown control cmd {cmd!r}; "
                      f"supported: health, stats"},
            sort_keys=True,
        )


async def serve(
    host: str = "127.0.0.1",
    port: int = 8737,
    *,
    config: Optional[ServiceConfig] = None,
    chaos: Optional[ServiceFaultPlan] = None,
) -> None:
    """Bind and serve until cancelled (the ``repro serve`` entry point)."""
    server = ServiceServer(config, chaos=chaos)
    await server.start(host, port)
    try:
        await server.serve_forever()
    finally:
        await server.stop()
