"""SLO report: one loadtest run reduced to a versioned JSON artifact.

The report is the service layer's analogue of the sweep records in
:mod:`repro.analysis.records`: a self-describing, schema-versioned JSON
document that CI can gate on and the trend ledger can track.  Its
determinism contract is explicit: every field except the ``wall_clock``
section is a pure function of the loadtest's seeded inputs, so
:func:`deterministic_view` (the report minus ``wall_clock``) must be
byte-identical across runs and machines — the committed
``benchmarks/SLO_baseline.json`` is diffed exactly that way in CI.

Latency percentiles are computed here from the full response list with
the nearest-rank rule (not from the decimated
:class:`~repro.obs.metrics.Histogram`), because the committed baseline
should pin exact values; the metrics snapshot rides along for the trend
ledger and for operators who want the full registry.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.service.loadgen import LoadtestResult
from repro.service.session import (
    COMPLETED,
    FAILED,
    FAILURE_CODES,
    REJECTED,
    REJECTION_CODES,
)

__all__ = [
    "SLO_SCHEMA_VERSION",
    "append_slo_history",
    "build_report",
    "deterministic_view",
    "load_report",
    "render_report",
    "slo_history_entry",
    "write_report",
]

SLO_SCHEMA_VERSION = 1

_HISTORY_KIND = "repro-slo-history"

#: Fields excluded from the determinism contract (and the CI byte-diff).
_NONDETERMINISTIC_KEYS = ("wall_clock",)


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def build_report(
    result: LoadtestResult,
    *,
    label: str = "",
    slo_target_latency: float = 1.0,
    chaos_stack: Optional[str] = None,
) -> Dict[str, Any]:
    """Reduce one :class:`~repro.service.loadgen.LoadtestResult` to JSON.

    ``slo_target_latency`` defines attainment: the fraction of *offered*
    sessions that completed within the target — rejected and failed
    sessions count against the SLO, which is the point of measuring it
    under overload.
    """
    if slo_target_latency <= 0:
        raise ConfigurationError(
            f"slo_target_latency must be > 0, got {slo_target_latency}"
        )
    offered = result.sessions
    completed = [r for r in result.responses if r.status == COMPLETED]
    rejected = [r for r in result.responses if r.status == REJECTED]
    failed = [r for r in result.responses if r.status == FAILED]
    latencies = sorted(r.latency for r in completed)
    within = sum(1 for value in latencies if value <= slo_target_latency)
    config = result.config
    report = {
        "v": SLO_SCHEMA_VERSION,
        "label": label,
        "seed": result.seed,
        "profile": result.profile,
        "chaos_stack": chaos_stack,
        "config": {
            "shards": config.shards,
            "workers_per_shard": config.workers_per_shard,
            "queue_capacity": config.queue_capacity,
            "worker_steps_per_sec": config.worker_steps_per_sec,
            "vectorized_speedup": config.vectorized_speedup,
            "attempt_timeout": config.attempt_timeout,
            "max_attempts": config.max_attempts,
            "degrade_watermark": config.degrade_watermark,
        },
        "sessions": {
            "offered": offered,
            # Admitted counts only *observed* admitted outcomes; sessions
            # with no response at all (submit() raised, or a response slot
            # stayed None) land in "missing" instead of being silently
            # presumed admitted, so offered == admitted + rejected +
            # missing always holds.
            "admitted": len(completed) + len(failed),
            "missing": offered - len(result.responses),
            "completed": len(completed),
            "rejected": {
                code: sum(1 for r in rejected if r.code == code)
                for code in REJECTION_CODES
            },
            "failed": {
                code: sum(1 for r in failed if r.code == code)
                for code in FAILURE_CODES
            },
            "degraded": sum(1 for r in completed if r.degraded),
            "unexpected_errors": result.unexpected_errors,
        },
        "latency": {
            "p50": _quantile(latencies, 0.50),
            "p95": _quantile(latencies, 0.95),
            "p99": _quantile(latencies, 0.99),
            "mean": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "max": latencies[-1] if latencies else 0.0,
        },
        "duration_virtual_seconds": result.duration,
        "goodput_per_sec": (
            len(completed) / result.duration if result.duration > 0 else 0.0
        ),
        "shed_rate": len(rejected) / offered if offered else 0.0,
        "slo": {
            "target_latency": slo_target_latency,
            "attainment": within / offered if offered else 0.0,
        },
        "breakers": result.service_snapshot["breakers"],
        "degraded_mode": result.service_snapshot["degraded_mode"],
        "metrics": result.metrics.to_json(),
        "wall_clock": {
            "generated_unix": time.time(),
        },
    }
    return report


def deterministic_view(report: Dict[str, Any]) -> Dict[str, Any]:
    """The report minus its wall-clock fields — the byte-diffable part."""
    return {
        key: value
        for key, value in report.items()
        if key not in _NONDETERMINISTIC_KEYS
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a report as canonical JSON (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Read a report back, refusing foreign schema versions."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or report.get("v") != SLO_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported SLO report version "
            f"{report.get('v') if isinstance(report, dict) else report!r}; "
            f"this build reads version {SLO_SCHEMA_VERSION}"
        )
    return report


def render_report(report: Dict[str, Any]) -> str:
    """A terminal-friendly summary of one SLO report."""
    sessions = report["sessions"]
    latency = report["latency"]
    lines = [
        f"SLO report{' ' + report['label'] if report['label'] else ''} "
        f"(profile={report['profile']}, seed={report['seed']})",
        f"  sessions   offered={sessions['offered']} "
        f"admitted={sessions['admitted']} "
        f"completed={sessions['completed']} "
        f"degraded={sessions['degraded']} "
        f"missing={sessions['missing']} "
        f"unexpected={sessions['unexpected_errors']}",
        f"  rejected   " + " ".join(
            f"{code}={count}"
            for code, count in sorted(sessions["rejected"].items())
        ),
        f"  failed     " + " ".join(
            f"{code}={count}"
            for code, count in sorted(sessions["failed"].items())
        ),
        f"  latency    p50={latency['p50']:.4f}s p95={latency['p95']:.4f}s "
        f"p99={latency['p99']:.4f}s max={latency['max']:.4f}s",
        f"  goodput    {report['goodput_per_sec']:.1f}/s over "
        f"{report['duration_virtual_seconds']:.2f} virtual seconds",
        f"  shed rate  {report['shed_rate']:.3f}",
        f"  slo        {report['slo']['attainment']:.3f} within "
        f"{report['slo']['target_latency']:.2f}s",
    ]
    for shard, breaker in sorted(report["breakers"].items()):
        lines.append(
            f"  breaker[{shard}] state={breaker['state']} "
            f"opened={breaker['opened']} "
            f"half_opened={breaker['half_opened']} "
            f"closed_again={breaker['closed_again']}"
        )
    degraded = report["degraded_mode"]
    lines.append(
        f"  degraded   entered={degraded['entered']} "
        f"virtual_seconds={degraded['virtual_seconds']:.3f}"
    )
    return "\n".join(lines)


def slo_history_entry(report: Dict[str, Any]) -> Dict[str, Any]:
    """Distill one SLO report to a trend-ledger line.

    The same append-only JSONL discipline as the bench ledger
    (:mod:`repro.obs.trend`): one compact line per run, carrying the
    handful of numbers worth trending (tail latency, shed rate, goodput,
    attainment) plus enough identity (seed, profile, git SHA) to explain
    a shift.
    """
    from repro.obs.bench import _git_sha

    if "sessions" not in report or "latency" not in report:
        raise ConfigurationError(
            "not an SLO report: missing 'sessions'/'latency'; build one "
            "with build_report"
        )
    return {
        "v": SLO_SCHEMA_VERSION,
        "kind": _HISTORY_KIND,
        "label": report.get("label", ""),
        "seed": report.get("seed"),
        "profile": report.get("profile"),
        "chaos_stack": report.get("chaos_stack"),
        "git_sha": _git_sha(),
        "created_unix": report.get("wall_clock", {}).get("generated_unix"),
        "p50": report["latency"]["p50"],
        "p99": report["latency"]["p99"],
        "shed_rate": report["shed_rate"],
        "goodput_per_sec": report["goodput_per_sec"],
        "attainment": report["slo"]["attainment"],
        "unexpected_errors": report["sessions"]["unexpected_errors"],
    }


def append_slo_history(report: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Append one report's ledger line to ``path``; returns the entry."""
    import os

    entry = slo_history_entry(report)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True,
                                separators=(",", ":")))
        handle.write("\n")
    return entry
